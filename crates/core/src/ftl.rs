//! The SHARE FTL: page-mapping translation layer with explicit remapping.
//!
//! This is the paper's contribution (§3–§4): a page-mapping FTL whose L2P
//! table the host can rewrite through the `share` command. The write path,
//! garbage collection, delta logging and checkpointing follow §4.2:
//!
//! * host writes go to an open data block; the mapping change is recorded
//!   as a Delta and becomes durable when its log page is programmed,
//! * `share(dest, src)` points `dest` at `src`'s physical page and logs all
//!   deltas of the batch in **one** log page, making the batch atomic,
//! * greedy GC picks the closed block with the fewest valid pages, copies
//!   the valid ones to a dedicated copyback write point (relocating *all*
//!   logical references, shared ones included), flushes the delta log and
//!   only then erases the victim.

use crate::ckpt;
use crate::config::FtlConfig;
use crate::delta::{Delta, DeltaLog};
use crate::device::BlockDevice;
use crate::error::FtlError;
use crate::health::{HealthReport, DEFAULT_ENDURANCE_CYCLES};
use crate::mapping::MappingTable;
use crate::monitor::{EpochSample, FlightRecorder, FlightSnapshot};
use crate::pool::{BlockPool, WritePoint};
use crate::queue::{CmdOutput, CmdTag, Completion, QueuedCmd};
use crate::snapshot::{self, SnapDelta, SnapshotInfo, SnapshotTable};
use crate::stats::DeviceStats;
use crate::types::{Lpn, Ppn, SharePair};
use crate::config::{PlacementConfig, CLASS_DEFAULT};
use nand_sim::{FaultHandle, NandArray, SimClock, UNTAGGED};
use share_telemetry::{
    apportion, AlertSeverity, BlameKind, Layer, OpClass, PlacementClassGauge, PlacementGauges,
    QueueGauges, Snapshot, SnapshotGauges, SpanId, Telemetry, Tracer, Track, UnitUtilization,
    STREAM_FTL,
};
use std::collections::HashSet;

/// Checkpoint when fewer than this many log-ring pages remain.
const CKPT_MIN_REMAINING_PAGES: u32 = 8;

/// A submitted-but-unreaped queued command. Its state transitions already
/// happened (at submission); only the completion — time, outcome, read
/// payload — waits here for the host to reap it.
#[derive(Debug)]
struct PendingCmd {
    tag: CmdTag,
    submit_ns: u64,
    complete_ns: u64,
    result: Result<CmdOutput, FtlError>,
    /// Data-pool blocks this command allocated into, pinned against GC
    /// until the completion is reaped.
    blocks: Vec<u32>,
}

/// Erase-count distribution over the data pool (wear-leveling quality).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WearStats {
    /// Least-erased data block.
    pub min_erases: u32,
    /// Most-erased data block.
    pub max_erases: u32,
    /// Mean erase count.
    pub mean_erases: f64,
    /// Population standard deviation of the per-block erase counts.
    pub stddev_erases: f64,
}

impl WearStats {
    /// Summarize a sequence of per-block erase counts. An empty pool
    /// yields all-zero stats rather than `min == u32::MAX` and a NaN mean.
    pub fn from_counts(counts: impl IntoIterator<Item = u32>) -> WearStats {
        let mut min = u32::MAX;
        let mut max = 0u32;
        let mut sum = 0u64;
        let mut sumsq = 0u128;
        let mut n = 0u64;
        for e in counts {
            min = min.min(e);
            max = max.max(e);
            sum += e as u64;
            sumsq += (e as u128) * (e as u128);
            n += 1;
        }
        if n == 0 {
            return WearStats { min_erases: 0, max_erases: 0, mean_erases: 0.0, stddev_erases: 0.0 };
        }
        let mean = sum as f64 / n as f64;
        let var = (sumsq as f64 / n as f64 - mean * mean).max(0.0);
        WearStats {
            min_erases: min,
            max_erases: max,
            mean_erases: mean,
            stddev_erases: var.sqrt(),
        }
    }

    /// Wear-leveling skew: max/mean erase count. 1.0 is perfectly even
    /// wear, 0.0 a device that has never erased anything.
    pub fn skew(&self) -> f64 {
        if self.mean_erases == 0.0 {
            0.0
        } else {
            self.max_erases as f64 / self.mean_erases
        }
    }
}

/// Names for the NAND units in index order (`ch{c}:w{w}`, matching how
/// `telemetry_snapshot` decomposes a unit index into channel and way).
fn unit_labels(channels: u32, units: usize) -> Vec<String> {
    (0..units as u32).map(|u| format!("ch{}:w{}", u % channels, u / channels)).collect()
}

/// An in-progress incremental victim collection (background GC pipeline).
///
/// The job is created when `pick_victim` chooses a block and lives until
/// every candidate page has been examined; each step relocates at most a
/// budget of still-live pages. Pages the host invalidates while the job
/// is parked simply fail their `is_live` recheck and are skipped — late
/// invalidations shrink the copyback for free.
#[derive(Debug)]
struct GcJob {
    /// Victim block, pool-relative.
    rel: u32,
    /// Victim's lifetime class (survivors stay in it).
    class: u8,
    /// Victim's channel (survivors stay on it).
    channel: u32,
    /// Candidate PPNs not yet examined, in reverse page order (popped
    /// from the back, so relocation proceeds in page order).
    pending: Vec<Ppn>,
}

/// A flash device exposing the SHARE interface.
#[derive(Debug)]
pub struct Ftl {
    cfg: FtlConfig,
    nand: NandArray,
    map: MappingTable,
    log: DeltaLog,
    pool: BlockPool,
    stats: DeviceStats,
    last_ckpt_slot: u32,
    /// Generation the next checkpoint will carry (strictly increasing).
    next_ckpt_gen: u64,
    /// Per-op-class observability (counters, optional histograms/ring).
    /// Records clock *read-outs* only — never advances simulated time.
    telemetry: Telemetry,
    /// Causal span tracer (disabled unless `cfg.telemetry.trace`); the
    /// NAND array holds a clone and attaches leaf events to it.
    tracer: Tracer,
    /// Submitted-but-unreaped queued commands (bounded by
    /// `cfg.queue_depth`).
    pending: Vec<PendingCmd>,
    /// Next submission tag (monotonic for the device's lifetime).
    next_tag: u32,
    /// Queue counters for telemetry: total submitted, total reaped, and
    /// the high-water in-flight mark.
    q_submitted: u64,
    q_reaped: u64,
    q_max_inflight: u64,
    /// Stream of the host command currently executing, for attributing
    /// internal passes it triggers (None outside any host command).
    cmd_stream: Option<u32>,
    /// True while GC runs: log flushes it triggers stay FTL-attributed.
    in_gc: bool,
    /// In-progress incremental collection (background GC pipeline only).
    /// Persists across foreground commands until the victim is fully
    /// relocated, flushed, and erased.
    gc_job: Option<GcJob>,
    /// Lifetime class per interned stream id (indexed by stream id;
    /// unclassified streams — including HOST and FTL — are the default
    /// class). Populated by `stream_intern` via `cfg.placement.classify`.
    stream_class: Vec<u8>,
    /// WA ledger, GC axis: per data-pool block (relative index), how many
    /// pages each stream invalidated there. Settled into the telemetry
    /// blame ledger when the block is collected; cleared on erase.
    block_blame: Vec<Vec<u64>>,
    /// WA ledger, log axis: buffered (not yet flushed) deltas per stream.
    log_blame: Vec<u64>,
    /// WA ledger, checkpoint axis: deltas per stream since last checkpoint.
    ckpt_blame: Vec<u64>,
    /// Scratch buffers reused across SHARE commands so the hot path does
    /// not allocate for typical batch sizes (cleared, never shrunk).
    share_dests: Vec<Lpn>,
    share_srcs: Vec<Lpn>,
    share_incs: Vec<(Ppn, u32)>,
    share_src_ppns: Vec<Ppn>,
    share_deltas: Vec<Delta>,
    /// Device snapshot table: frozen alias namespaces whose entries pin
    /// physical pages against GC reclaim (relocation still allowed).
    /// Persisted whole in checkpoints (image v4) and incrementally via
    /// tagged delta-log records.
    snaps: SnapshotTable,
    /// Time-series flight recorder (None unless `telemetry.epoch_ns > 0`).
    /// Seals one epoch of counter deltas at the first command boundary at
    /// or after each epoch tick; only ever *reads* the clock.
    recorder: Option<FlightRecorder>,
}

impl Ftl {
    /// A freshly formatted device.
    pub fn new(cfg: FtlConfig) -> Self {
        cfg.validate();
        let nand = NandArray::with_timing(cfg.geometry, cfg.timing, SimClock::new());
        Self::format(cfg, nand)
    }

    /// Format `nand` (assumed erased) under `cfg`.
    pub fn format(cfg: FtlConfig, mut nand: NandArray) -> Self {
        let map = MappingTable::with_policy(cfg.geometry, cfg.logical_pages, cfg.revmap_capacity, cfg.revmap_policy);
        let log = DeltaLog::new(&cfg, 0);
        let pool = BlockPool::new(cfg.geometry, cfg.data_start(), cfg.data_blocks())
            .with_classes(cfg.placement.classes());
        let telemetry = Telemetry::new(cfg.telemetry);
        let tracer = if cfg.telemetry.trace { Tracer::enabled() } else { Tracer::disabled() };
        nand.set_tracer(tracer.clone());
        tracer.set_unit_labels(unit_labels(cfg.geometry.channels, nand.busy_ns().len()));
        let recorder = (cfg.telemetry.epoch_ns > 0).then(|| {
            FlightRecorder::new(cfg.telemetry.epoch_ns, cfg.telemetry.epoch_ring, cfg.slo, nand.now_ns())
        });
        let data_blocks = cfg.data_blocks() as usize;
        let mut ftl = Self {
            cfg,
            nand,
            map,
            log,
            pool,
            stats: DeviceStats::default(),
            last_ckpt_slot: 1,
            next_ckpt_gen: 0,
            telemetry,
            tracer,
            pending: Vec::new(),
            next_tag: 0,
            q_submitted: 0,
            q_reaped: 0,
            q_max_inflight: 0,
            cmd_stream: None,
            in_gc: false,
            gc_job: None,
            stream_class: Vec::new(),
            block_blame: vec![Vec::new(); data_blocks],
            log_blame: Vec::new(),
            ckpt_blame: Vec::new(),
            share_dests: Vec::new(),
            share_srcs: Vec::new(),
            share_incs: Vec::new(),
            share_src_ppns: Vec::new(),
            share_deltas: Vec::new(),
            snaps: SnapshotTable::new(),
            recorder,
        };
        ftl.checkpoint().expect("initial checkpoint on an erased device cannot fail");
        ftl
    }

    /// Recover a device from the flash image in `nand` (e.g. after a crash):
    /// latest checkpoint + intact delta-log pages, then reverse-state and
    /// block-state rebuild. Ends by taking a fresh checkpoint so the log
    /// ring restarts clean.
    pub fn open(cfg: FtlConfig, mut nand: NandArray) -> Result<Self, FtlError> {
        cfg.validate();
        nand.power_cycle();
        let nand_before = nand.stats();
        let recovery_t0 = nand.now_ns();

        let recovered = ckpt::read_latest(&cfg, &mut nand);
        let (next_seq0, base, slot, gen, snap_bytes) = match recovered {
            Some(c) => (c.next_delta_seq, Some(c.l2p), c.slot, c.generation + 1, c.snap),
            None => (0, None, 1, 0, Vec::new()),
        };
        let mut snaps = SnapshotTable::decode(&snap_bytes)?;

        let mut map = MappingTable::with_policy(cfg.geometry, cfg.logical_pages, cfg.revmap_capacity, cfg.revmap_policy);
        if let Some(base) = base {
            if base.len() as u64 != cfg.logical_pages {
                return Err(FtlError::RecoveryCorrupt(format!(
                    "checkpoint has {} entries, config expects {}",
                    base.len(),
                    cfg.logical_pages
                )));
            }
            for (i, &ppn) in base.iter().enumerate() {
                map.raw_set(Lpn(i as u64), ppn);
            }
        }

        let mut next_seq = next_seq0;
        for page in DeltaLog::recover(&cfg, &mut nand, next_seq0) {
            for d in &page.deltas {
                // Snapshot records travel the same log with a tag bit set;
                // they must never reach the live map (the tagged value is
                // far beyond the logical capacity).
                match snapshot::decode_snap_delta(d.lpn) {
                    Some(SnapDelta::Relocate { id, offset }) => {
                        snaps.replay_relocate(id, offset, d.new);
                    }
                    Some(SnapDelta::Tombstone { id }) => {
                        snaps.remove_by_id(id);
                    }
                    None => map.raw_set(d.lpn, d.new),
                }
            }
            next_seq = page.seq + 1;
        }
        map.rebuild_reverse();
        snaps.rebuild_rev();

        let mut pool = BlockPool::new(cfg.geometry, cfg.data_start(), cfg.data_blocks())
            .with_classes(cfg.placement.classes());
        pool.rebuild_from_nand(&nand);

        let log = DeltaLog::new(&cfg, next_seq);
        let telemetry = Telemetry::new(cfg.telemetry);
        let tracer = if cfg.telemetry.trace { Tracer::enabled() } else { Tracer::disabled() };
        nand.set_tracer(tracer.clone());
        tracer.set_unit_labels(unit_labels(cfg.geometry.channels, nand.busy_ns().len()));
        let recorder = (cfg.telemetry.epoch_ns > 0).then(|| {
            FlightRecorder::new(cfg.telemetry.epoch_ns, cfg.telemetry.epoch_ring, cfg.slo, nand.now_ns())
        });
        let recovery_span =
            tracer.begin(Layer::Ftl, "recovery", Track::Stream(STREAM_FTL), recovery_t0);
        let data_blocks = cfg.data_blocks() as usize;
        let mut ftl = Self {
            cfg,
            nand,
            map,
            log,
            pool,
            stats: DeviceStats::default(),
            last_ckpt_slot: slot,
            next_ckpt_gen: gen,
            telemetry,
            tracer,
            pending: Vec::new(),
            next_tag: 0,
            q_submitted: 0,
            q_reaped: 0,
            q_max_inflight: 0,
            cmd_stream: None,
            in_gc: false,
            gc_job: None,
            stream_class: Vec::new(),
            block_blame: vec![Vec::new(); data_blocks],
            log_blame: Vec::new(),
            ckpt_blame: Vec::new(),
            share_dests: Vec::new(),
            share_srcs: Vec::new(),
            share_incs: Vec::new(),
            share_src_ppns: Vec::new(),
            share_deltas: Vec::new(),
            snaps,
            recorder,
        };
        ftl.checkpoint()?;
        // Account what recovery itself cost (checkpoint scan, delta
        // replay, pool rebuild, and the closing checkpoint) so a reopened
        // device is not indistinguishable from a fresh one and crash
        // sweeps can bound recovery work.
        let spent = ftl.nand.stats().delta_since(&nand_before);
        ftl.stats.recoveries = 1;
        ftl.stats.recovery_page_reads = spent.page_reads;
        ftl.stats.recovery_page_writes = spent.page_programs;
        ftl.telemetry.record(
            OpClass::Recovery,
            0,
            spent.page_reads + spent.page_programs,
            recovery_t0,
            ftl.nand.now_ns(),
            true,
        );
        ftl.tracer.end(recovery_span, ftl.nand.now_ns(), spent.page_reads + spent.page_programs, true);
        Ok(ftl)
    }

    /// The configuration this device runs under.
    pub fn config(&self) -> &FtlConfig {
        &self.cfg
    }

    /// Fault-injection handle of the underlying NAND.
    pub fn fault_handle(&self) -> FaultHandle {
        self.nand.fault_handle()
    }

    /// Read-only view of the NAND medium (tests, benches).
    pub fn nand(&self) -> &NandArray {
        &self.nand
    }

    /// Consume the FTL and take the NAND medium out (crash-recovery tests
    /// re-open it with [`Ftl::open`]).
    pub fn into_nand(self) -> NandArray {
        self.nand
    }

    /// Current physical mapping of `lpn`, if any (introspection).
    pub fn mapping_of(&self, lpn: Lpn) -> Option<Ppn> {
        let p = self.map.lookup(lpn);
        p.is_valid().then_some(p)
    }

    /// Reference count of the physical page backing `lpn`.
    pub fn refcount_of(&self, lpn: Lpn) -> u16 {
        let p = self.map.lookup(lpn);
        if p.is_valid() {
            self.map.refcount(p)
        } else {
            0
        }
    }

    /// Occupancy of the shared-page reverse-mapping table.
    pub fn revmap_len(&self) -> usize {
        self.map.revmap().len()
    }

    /// Wear summary over the data pool: (min, max, mean) erase counts.
    /// A tight min/max spread indicates effective wear leveling.
    pub fn wear_stats(&self) -> WearStats {
        let n = self.pool.block_count();
        WearStats::from_counts((0..n).map(|rel| self.nand.erase_count(self.pool.abs(rel))))
    }

    /// Exhaustively check mapping invariants (test helper).
    pub fn check_invariants(&self) {
        self.map.check_invariants();
    }

    fn check_lpn(&self, lpn: Lpn) -> Result<(), FtlError> {
        if lpn.0 >= self.cfg.logical_pages {
            return Err(FtlError::LpnOutOfRange { lpn, capacity: self.cfg.logical_pages });
        }
        Ok(())
    }

    /// Stream to attribute an internal pass to: the host command that
    /// triggered it, unless GC is running (GC work stays FTL-attributed).
    fn bg_attr(&self) -> Option<u32> {
        if self.in_gc {
            None
        } else {
            self.cmd_stream
        }
    }

    /// Note a mapping delta created on behalf of `stream`: it weighs into
    /// the blame apportionment of the next log flush and checkpoint.
    fn note_delta(&mut self, stream: u32, n: u64) {
        let idx = stream as usize;
        if self.log_blame.len() <= idx {
            self.log_blame.resize(idx + 1, 0);
        }
        if self.ckpt_blame.len() <= idx {
            self.ckpt_blame.resize(idx + 1, 0);
        }
        self.log_blame[idx] += n;
        self.ckpt_blame[idx] += n;
    }

    /// Note that `old`'s physical page died: the stream running the
    /// current command turned a page in `old`'s block into garbage, so it
    /// is blamed for a share of that block's eventual GC copyback.
    fn note_invalidation(&mut self, old: &crate::mapping::Unmapped) {
        if !old.died {
            return;
        }
        let block = self.cfg.geometry.block_of(old.old_ppn);
        let Some(rel) = self.pool.rel(block) else { return };
        let stream = self.telemetry.current_stream() as usize;
        let blame = &mut self.block_blame[rel as usize];
        if blame.len() <= stream {
            blame.resize(stream + 1, 0);
        }
        blame[stream] += 1;
    }

    /// Settle `pages` background programs into the WA ledger, apportioned
    /// across per-stream `weights` (largest remainder, exact sum). With no
    /// weights recorded the pages fall to the reserved `ftl` stream.
    fn settle_blame(&mut self, kind: BlameKind, pages: u64, weights: &[u64]) {
        if pages == 0 {
            return;
        }
        if weights.iter().all(|&w| w == 0) {
            self.telemetry.blame(STREAM_FTL, kind, pages);
            return;
        }
        for (stream, share) in apportion(pages, weights).into_iter().enumerate() {
            if share > 0 {
                self.telemetry.blame(stream as u32, kind, share);
            }
        }
    }

    /// Settle a finished log flush: blame its pages and zero the weights
    /// (the buffered deltas they tracked are now on flash).
    fn settle_log_blame(&mut self, pages: u64) {
        let mut w = std::mem::take(&mut self.log_blame);
        self.settle_blame(BlameKind::LogFlush, pages, &w);
        w.iter_mut().for_each(|x| *x = 0);
        self.log_blame = w;
    }

    fn flush_log(&mut self) -> Result<(), FtlError> {
        let before = self.log.pages_written;
        let t0 = self.nand.now_ns();
        let span = self.begin_span("log_flush", STREAM_FTL, t0);
        let r = self.log.flush(&mut self.nand);
        let pages = self.log.pages_written - before;
        self.tracer.end(span, self.nand.now_ns(), pages, r.is_ok());
        if pages > 0 || r.is_err() {
            self.telemetry.record_as(
                OpClass::LogFlush,
                self.bg_attr(),
                0,
                pages,
                t0,
                self.nand.now_ns(),
                r.is_ok(),
            );
        }
        r?;
        self.stats.meta_page_writes += pages;
        self.settle_log_blame(pages);
        self.maybe_checkpoint()
    }

    /// Open an FTL-layer span (no-op when tracing is off).
    fn begin_span(&self, name: &str, stream: u32, start_ns: u64) -> SpanId {
        self.tracer.begin(Layer::Ftl, name, Track::Stream(stream), start_ns)
    }

    /// Enter a host command: remember its stream (internal passes it
    /// triggers inherit it) and open its span on the stream's track.
    fn begin_command(&mut self, name: &str) -> (u64, SpanId) {
        let t0 = self.nand.now_ns();
        let stream = self.telemetry.current_stream();
        self.cmd_stream = Some(stream);
        (t0, self.begin_span(name, stream, t0))
    }

    /// Leave a host command, closing its span. Every synchronous command
    /// exits through here, which makes it the flight recorder's sampling
    /// point: epochs seal lazily at the first command boundary at or after
    /// their clock tick (queued submissions hook `submit` directly).
    fn end_command(&mut self, span: SpanId, pages: u64, ok: bool) {
        self.tracer.end(span, self.nand.now_ns(), pages, ok);
        self.cmd_stream = None;
        self.epoch_tick();
    }

    /// Seal a flight-recorder epoch if the clock has crossed a boundary.
    /// Pure observation: reads the clock and counters, never advances
    /// simulated time or touches the medium — a monitored run stays
    /// bit-identical to an unmonitored one.
    fn epoch_tick(&mut self) {
        let now = self.nand.now_ns();
        if !self.recorder.as_ref().is_some_and(|r| r.due(now)) {
            return;
        }
        let wear = self.wear_stats();
        let remaining_life = if DEFAULT_ENDURANCE_CYCLES == 0 {
            0.0
        } else {
            (1.0 - wear.mean_erases / DEFAULT_ENDURANCE_CYCLES as f64).clamp(0.0, 1.0)
        };
        let (read_hist, write_hist) = self.telemetry.take_epoch_windows();
        let sample = EpochSample {
            now_ns: now,
            stats: self.stats(),
            wa: self.telemetry.wa_raw(),
            unit_busy_ns: self.nand.busy_ns().to_vec(),
            free_blocks: self.pool.free_count() as u64,
            inflight: self.pending.len() as u64,
            wear_skew: wear.skew(),
            remaining_life,
            read_hist,
            write_hist,
        };
        let outcome = self.recorder.as_mut().expect("checked above").seal(sample);
        self.tracer.push_unit_epoch(outcome.end_ns, &outcome.unit_busy_ns);
        // Fired alerts land on the command ring too, so the flight around
        // an SLO breach is visible in the same event stream as the I/O.
        for a in &outcome.alerts {
            self.telemetry.record_as(
                OpClass::Alert,
                Some(STREAM_FTL),
                a.kind.index() as u64,
                0,
                outcome.end_ns,
                outcome.end_ns,
                a.severity != AlertSeverity::Critical,
            );
        }
    }

    /// Device health report under the default rated endurance.
    pub fn health_report(&self) -> HealthReport {
        self.health_report_with(DEFAULT_ENDURANCE_CYCLES)
    }

    /// Device health report assuming `endurance_cycles` rated P/E cycles.
    /// Read-only: derived entirely from per-block erase counts, pool
    /// headroom, and the cumulative counters.
    pub fn health_report_with(&self, endurance_cycles: u64) -> HealthReport {
        let n = self.pool.block_count();
        let counts: Vec<u32> =
            (0..n).map(|rel| self.nand.erase_count(self.pool.abs(rel))).collect();
        HealthReport::compute(
            &counts,
            self.pool.free_count() as u64,
            &self.stats(),
            endurance_cycles,
        )
    }

    fn maybe_checkpoint(&mut self) -> Result<(), FtlError> {
        if self.log.pages_remaining() < CKPT_MIN_REMAINING_PAGES {
            self.checkpoint()?;
        }
        Ok(())
    }

    /// Persist a base mapping snapshot and truncate the delta log.
    pub fn checkpoint(&mut self) -> Result<(), FtlError> {
        let t0 = self.nand.now_ns();
        let span = self.begin_span("checkpoint", STREAM_FTL, t0);
        let r = self.checkpoint_inner();
        let pages = *r.as_ref().unwrap_or(&0);
        self.tracer.end(span, self.nand.now_ns(), pages, r.is_ok());
        self.telemetry.record_as(
            OpClass::Checkpoint,
            self.bg_attr(),
            0,
            pages,
            t0,
            self.nand.now_ns(),
            r.is_ok(),
        );
        r.map(|_| ())
    }

    fn checkpoint_inner(&mut self) -> Result<u64, FtlError> {
        // RAM-buffered deltas are already reflected in the snapshot; their
        // log pages will never be written, so the log blame weights reset
        // too (the activity still weighs into this checkpoint's blame).
        self.log.clear_buffered();
        self.log_blame.iter_mut().for_each(|x| *x = 0);
        let slot = 1 - self.last_ckpt_slot;
        let seq = self.log.next_seq();
        let l2p = self.map.l2p_raw().to_vec();
        let gen = self.next_ckpt_gen;
        let snap_bytes = self.snaps.encode();
        let pages =
            ckpt::write_checkpoint(&self.cfg, &mut self.nand, slot, gen, seq, &l2p, &snap_bytes)?;
        self.log.reset(&mut self.nand)?;
        self.last_ckpt_slot = slot;
        self.next_ckpt_gen = gen + 1;
        self.stats.checkpoints += 1;
        self.stats.meta_page_writes += pages;
        let mut w = std::mem::take(&mut self.ckpt_blame);
        self.settle_blame(BlameKind::Checkpoint, pages, &w);
        w.iter_mut().for_each(|x| *x = 0);
        self.ckpt_blame = w;
        Ok(pages)
    }

    /// Lifetime class of `stream` (default for never-classified streams,
    /// which includes the built-in HOST and FTL streams).
    fn class_of_stream(&self, stream: u32) -> u8 {
        self.stream_class.get(stream as usize).copied().unwrap_or(CLASS_DEFAULT)
    }

    /// Allocate a user page in the current stream's lifetime-class lane and
    /// mirror the class onto the NAND block tag (persisted by image v3, so
    /// recovery and GC can see each block's class without pool state).
    fn alloc_user(&mut self) -> Result<Ppn, FtlError> {
        let class = self.class_of_stream(self.telemetry.current_stream());
        let ppn = self.pool.alloc(&self.nand, WritePoint::User { class })?;
        self.nand.set_block_tag(self.cfg.geometry.block_of(ppn), class as u32);
        Ok(ppn)
    }

    /// Pick a GC victim per the configured policy: greedy (fewest valid
    /// pages), FIFO (oldest sealed block), or cost-benefit (most
    /// reclaimable space × seal age). Fully valid blocks are never
    /// picked — erasing them reclaims nothing — and a block already being
    /// collected incrementally is skipped.
    fn pick_victim(&self) -> Option<(u32, u32)> {
        let ppb = self.cfg.geometry.pages_per_block;
        // Snapshot-pinned pages that are dead in the live map still cost a
        // copyback when their block is collected, so they count into the
        // victim's effective valid-page total. Computed once per selection
        // and only when snapshots exist — with an empty table the selection
        // is exactly the historical one.
        let pinned_dead = if self.snaps.is_empty() {
            Vec::new()
        } else {
            self.snaps.pinned_dead_by_block(
                self.pool.block_count() as usize,
                |p| self.pool.rel(self.cfg.geometry.block_of(p)),
                |p| self.map.is_live(p),
            )
        };
        let mut best: Option<(u32, u32, u64)> = None;
        for rel in 0..self.pool.block_count() {
            if !self.pool.victim_eligible(rel, &self.nand) {
                continue;
            }
            if self.gc_job.as_ref().is_some_and(|j| j.rel == rel) {
                continue; // already mid-collection
            }
            let mut valid = self.map.valid_pages(self.pool.abs(rel));
            if !pinned_dead.is_empty() {
                valid += pinned_dead[rel as usize];
            }
            if valid >= ppb {
                continue; // nothing reclaimable here
            }
            let rank = match self.cfg.gc_policy {
                crate::config::GcPolicy::Greedy => valid as u64,
                crate::config::GcPolicy::Fifo => self.pool.seal_seq(rel),
                crate::config::GcPolicy::CostBenefit => {
                    // Maximize reclaimable × age; invert into the shared
                    // min-rank comparison. Age starts at 1 so a freshly
                    // sealed empty block still beats a full one.
                    let reclaimable = (ppb - valid) as u64;
                    let age =
                        self.pool.seal_counter().saturating_sub(self.pool.seal_seq(rel)) + 1;
                    u64::MAX - reclaimable.saturating_mul(age)
                }
            };
            if best.is_none_or(|(_, _, r)| rank < r) {
                best = Some((rel, valid, rank));
                if rank == 0 && self.cfg.gc_policy == crate::config::GcPolicy::Greedy {
                    break; // cannot do better
                }
            }
        }
        best.map(|(rel, valid, _)| (rel, valid))
    }

    /// One GC pass: relocate the victim's valid pages, persist the mapping,
    /// erase. Returns false when no eligible victim exists.
    fn collect_once(&mut self) -> Result<bool, FtlError> {
        let Some((rel, valid)) = self.pick_victim() else {
            return Ok(false);
        };
        let t0 = self.nand.now_ns();
        let copied_before = self.stats.copyback_pages;
        let victim = self.pool.abs(rel);
        let span = self.begin_span("gc", STREAM_FTL, t0);
        self.in_gc = true;
        let r = self.collect_victim(rel, valid);
        self.in_gc = false;
        let copied = self.stats.copyback_pages - copied_before;
        self.tracer.end(span, self.nand.now_ns(), copied, r.is_ok());
        self.telemetry.record(
            OpClass::Gc,
            victim.0 as u64,
            copied,
            t0,
            self.nand.now_ns(),
            r.is_ok(),
        );
        r.map(|()| true)
    }

    fn collect_victim(&mut self, rel: u32, valid: u32) -> Result<(), FtlError> {
        self.stats.gc_events += 1;
        let block = self.pool.abs(rel);
        let ppb = self.cfg.geometry.pages_per_block;
        // Survivors relocate with the victim's affinity: same lifetime
        // class (NAND block tag; untagged pre-v3 blocks fall to the
        // default class) and same channel, so relocated long-lived data
        // never mixes into short-lived streams' blocks and copyback stays
        // channel-local.
        let tag = self.nand.block_tag(block);
        let classes = self.pool.classes() as u32;
        let class = if tag == UNTAGGED { CLASS_DEFAULT } else { tag.min(classes - 1) as u8 };
        let channel = self.cfg.geometry.channel_of_block(block);
        if valid > 0 {
            // Relocation keeps both live-map referents and snapshot-pinned
            // pages (frozen data must survive the erase even when nothing
            // in the live map references it anymore).
            let live: Vec<Ppn> = (0..ppb)
                .map(|idx| self.cfg.geometry.ppn_at(block, idx))
                .filter(|&ppn| self.map.is_live(ppn) || self.snaps.is_pinned(ppn))
                .collect();
            // All relocation reads go out as one batched submission (they
            // come from one block, hence one unit, so this mostly amortizes
            // the submission; the programs below batch across the GC lane).
            let page_size = self.cfg.geometry.page_size;
            let mut bufs = vec![vec![0u8; page_size]; live.len()];
            let mut reads: Vec<(Ppn, &mut [u8])> =
                live.iter().zip(bufs.iter_mut()).map(|(&p, b)| (p, b.as_mut_slice())).collect();
            self.nand.read_batch(&mut reads)?;
            let mut dests = Vec::with_capacity(live.len());
            for _ in &live {
                let dest = self.pool.alloc(&self.nand, WritePoint::Gc { class, channel })?;
                self.nand.set_block_tag(self.cfg.geometry.block_of(dest), class as u32);
                dests.push(dest);
            }
            let programs: Vec<(Ppn, &[u8])> =
                dests.iter().zip(&bufs).map(|(&d, b)| (d, b.as_slice())).collect();
            self.nand.program_batch(&programs)?;
            for (&ppn, &dest) in live.iter().zip(&dests) {
                self.relocate_mappings(ppn, dest)?;
                self.stats.copyback_pages += 1;
            }
            // Blame the copybacks on the streams whose invalidations
            // hollowed this block out (exact-sum apportionment).
            let w = std::mem::take(&mut self.block_blame[rel as usize]);
            self.settle_blame(BlameKind::Gc, live.len() as u64, &w);
            self.block_blame[rel as usize] = w;
        }
        // The persisted mapping must stop referencing the victim before the
        // victim's data disappears.
        self.flush_log()?;
        self.nand.erase(block)?;
        self.stats.gc_erases += 1;
        self.pool.release(rel);
        self.block_blame[rel as usize].clear();
        Ok(())
    }

    /// Repoint every reference to the relocated page `ppn` — live-map LPNs
    /// and snapshot table entries — at `dest`, logging one delta per
    /// reference so recovery replays the move. A page held only by
    /// snapshots skips the live map entirely (it has no referrers there).
    fn relocate_mappings(&mut self, ppn: Ppn, dest: Ppn) -> Result<(), FtlError> {
        if self.map.is_live(ppn) {
            for lpn in self.map.relocate(ppn, dest)? {
                self.log.append(Delta { lpn, old: ppn, new: dest });
                self.note_delta(STREAM_FTL, 1);
            }
        } else {
            self.stats.snapshot_pinned_relocations += 1;
        }
        if !self.snaps.is_empty() {
            for (id, offset) in self.snaps.relocate(ppn, dest) {
                self.log.append(Delta {
                    lpn: snapshot::snap_delta_lpn(id, offset),
                    old: ppn,
                    new: dest,
                });
                self.note_delta(STREAM_FTL, 1);
            }
        }
        Ok(())
    }

    /// Start an incremental collection job on the best victim, if any.
    /// The victim selection counts as one `gc_events`, exactly like a
    /// whole-victim `collect_once` pass.
    fn gc_begin_job(&mut self) -> bool {
        debug_assert!(self.gc_job.is_none(), "one collection job at a time");
        let Some((rel, _valid)) = self.pick_victim() else {
            return false;
        };
        self.stats.gc_events += 1;
        let block = self.pool.abs(rel);
        let ppb = self.cfg.geometry.pages_per_block;
        // Survivors keep the victim's affinity: class and channel (same
        // rules as `collect_victim`).
        let tag = self.nand.block_tag(block);
        let classes = self.pool.classes() as u32;
        let class = if tag == UNTAGGED { CLASS_DEFAULT } else { tag.min(classes - 1) as u8 };
        let channel = self.cfg.geometry.channel_of_block(block);
        let pending: Vec<Ppn> =
            (0..ppb).rev().map(|idx| self.cfg.geometry.ppn_at(block, idx)).collect();
        self.gc_job = Some(GcJob { rel, class, channel, pending });
        true
    }

    /// Relocate up to `budget` still-live pages of the in-progress victim;
    /// once every candidate page has been examined, finish the job
    /// (mapping flush, erase, release). Liveness is rechecked per page at
    /// relocation time, so pages the host invalidated while the job was
    /// parked are skipped. Returns the pages relocated this step.
    fn gc_step(&mut self, budget: usize) -> Result<u64, FtlError> {
        let (rel, class, channel) = {
            let job = self.gc_job.as_ref().expect("gc_step without a job");
            (job.rel, job.class, job.channel)
        };
        let mut live: Vec<Ppn> = Vec::new();
        while live.len() < budget {
            let Some(ppn) = self.gc_job.as_mut().expect("job exists").pending.pop() else {
                break;
            };
            if self.map.is_live(ppn) || self.snaps.is_pinned(ppn) {
                live.push(ppn);
            }
        }
        if !live.is_empty() {
            let page_size = self.cfg.geometry.page_size;
            let mut bufs = vec![vec![0u8; page_size]; live.len()];
            let mut reads: Vec<(Ppn, &mut [u8])> =
                live.iter().zip(bufs.iter_mut()).map(|(&p, b)| (p, b.as_mut_slice())).collect();
            self.nand.read_batch(&mut reads)?;
            let mut dests = Vec::with_capacity(live.len());
            for _ in &live {
                let dest = self.pool.alloc(&self.nand, WritePoint::Gc { class, channel })?;
                self.nand.set_block_tag(self.cfg.geometry.block_of(dest), class as u32);
                dests.push(dest);
            }
            let programs: Vec<(Ppn, &[u8])> =
                dests.iter().zip(&bufs).map(|(&d, b)| (d, b.as_slice())).collect();
            self.nand.program_batch(&programs)?;
            for (&ppn, &dest) in live.iter().zip(&dests) {
                self.relocate_mappings(ppn, dest)?;
                self.stats.copyback_pages += 1;
            }
            // Settle this step's copybacks against the victim's current
            // blame weights — exact-sum per call, so the wa_ledger
            // invariant holds even with the rest of the victim in flight.
            let w = std::mem::take(&mut self.block_blame[rel as usize]);
            self.settle_blame(BlameKind::Gc, live.len() as u64, &w);
            self.block_blame[rel as usize] = w;
        }
        if self.gc_job.as_ref().expect("job exists").pending.is_empty() {
            // The persisted mapping must stop referencing the victim
            // before the victim's data disappears.
            self.flush_log()?;
            self.nand.erase(self.pool.abs(rel))?;
            self.stats.gc_erases += 1;
            self.pool.release(rel);
            self.block_blame[rel as usize].clear();
            self.gc_job = None;
        }
        Ok(live.len() as u64)
    }

    /// Run one traced GC pipeline step. `background` opens a background
    /// timing window: relocations reserve idle channel/way lanes from
    /// device time and the foreground command is never charged (it only
    /// feels GC through lane contention). Without it the step runs on the
    /// caller's timeline — the hard-floor drain path.
    fn gc_step_traced(&mut self, budget: usize, background: bool) -> Result<u64, FtlError> {
        let victim = self.pool.abs(self.gc_job.as_ref().expect("step without a job").rel);
        let saved = if background { Some(self.nand.begin_background()) } else { None };
        let t0 = self.nand.submission_now();
        let span = self.begin_span("gc", STREAM_FTL, t0);
        self.in_gc = true;
        let r = self.gc_step(budget);
        self.in_gc = false;
        let end = match saved {
            Some(s) => self.nand.end_background(s),
            None => self.nand.submission_now(),
        };
        let copied = *r.as_ref().unwrap_or(&0);
        self.tracer.end(span, end, copied, r.is_ok());
        self.telemetry.record(OpClass::Gc, victim.0 as u64, copied, t0, end, r.is_ok());
        r
    }

    fn ensure_free(&mut self) -> Result<(), FtlError> {
        // Every open lane — one user and one GC lane per (class, channel)
        // — can pull a fresh block from the free list between two GC
        // checks (a batched submission feeds every user lane; GC feeds one
        // copyback lane per victim), so the watermarks shift up by the
        // lanes beyond the baseline single user + single GC pair. At one
        // channel with placement off this is exactly the configured
        // low/high pair.
        // Blocks pinned by unreaped queued commands are ineligible victims,
        // so the same number of extra free blocks must be banked on top —
        // otherwise a deep queue can strand GC with nothing collectible.
        let lanes = self.pool.classes() * self.cfg.geometry.channels as usize;
        let extra_lanes = 2 * (lanes - 1);
        let pinned = self.pool.inflight_pinned_blocks();
        let low = self.cfg.gc_low_water + extra_lanes + pinned;
        let high = self.cfg.gc_high_water + extra_lanes + pinned;
        if !self.cfg.gc_pipeline.enabled {
            // Historical synchronous GC: whole victims collected on the
            // foreground command's own timeline. The submission-time delta
            // across the drain is exactly the stall the host observes.
            if self.pool.free_count() > low {
                return Ok(());
            }
            let t0 = self.nand.submission_now();
            while self.pool.free_count() < high {
                if !self.collect_once()? {
                    break;
                }
            }
            self.stats.gc_stall_ns += self.nand.submission_now() - t0;
            if self.pool.free_count() == 0 {
                return Err(FtlError::DeviceFull);
            }
            return Ok(());
        }
        // Watermark-driven pipeline. The legacy low watermark banks
        // `extra_lanes + pinned` blocks of slack precisely so open lanes
        // can pull fresh blocks between GC checks — dipping into that
        // slack is normal operation, not an emergency. So the pipeline's
        // *hard floor* is the un-adjusted `gc_low_water + pinned` (the
        // true point past which allocation is at risk), where it drains
        // synchronously and accrues stall exactly like the legacy path.
        // Above the floor, up to `soft_headroom` blocks over the legacy
        // low, GC runs as budgeted background steps — at most
        // `budget_pages` relocations per foreground command, dispatched
        // onto idle lanes, turning urgent (bounded catch-up loop) while
        // free is inside the legacy-low slack band. Collection therefore
        // starts at the same fill levels as the legacy collector (similar
        // victim valid counts, similar write amplification) but the
        // foreground never waits for whole victims.
        let floor = self.cfg.gc_low_water + pinned;
        let soft = low + self.cfg.gc_pipeline.soft_headroom;
        if self.pool.free_count() <= floor {
            let t0 = self.nand.submission_now();
            while self.pool.free_count() < high {
                if self.gc_job.is_none() && !self.gc_begin_job() {
                    break;
                }
                self.gc_step_traced(usize::MAX, false)?;
            }
            self.stats.gc_stall_ns += self.nand.submission_now() - t0;
        } else if self.pool.free_count() <= soft {
            // The iteration bound (~4 victims' worth of steps) prevents a
            // death spiral when victims are nearly all-valid; past it,
            // the hard floor above remains the correctness backstop.
            let budget = self.cfg.gc_pipeline.budget_pages as usize;
            let ppb = self.cfg.geometry.pages_per_block as usize;
            let mut steps_left = (4 * ppb / budget.max(1)).max(1);
            loop {
                if self.gc_job.is_none() && !self.gc_begin_job() {
                    break;
                }
                self.gc_step_traced(budget, true)?;
                if self.gc_job.is_some() {
                    self.stats.gc_budget_deferrals += 1;
                }
                steps_left -= 1;
                if self.pool.free_count() > low || steps_left == 0 {
                    break;
                }
            }
        }
        if self.pool.free_count() == 0 {
            return Err(FtlError::DeviceFull);
        }
        Ok(())
    }

    /// Validate a SHARE batch and resolve source PPNs (snapshot semantics)
    /// into the reused `share_src_ppns` scratch buffer. All bookkeeping
    /// runs on reused scratch vectors (linear scans — SHARE batches are at
    /// most `deltas_per_page` pairs), so the hot path allocates nothing
    /// once the buffers have grown to the workload's batch size.
    fn validate_share(&mut self, pairs: &[SharePair]) -> Result<(), FtlError> {
        let limit = self.cfg.deltas_per_page();
        if pairs.len() > limit {
            return Err(FtlError::BatchTooLarge { got: pairs.len(), max: limit });
        }
        self.share_dests.clear();
        self.share_srcs.clear();
        self.share_src_ppns.clear();
        for p in pairs {
            self.check_lpn(p.dest)?;
            self.check_lpn(p.src)?;
            if p.dest == p.src {
                return Err(FtlError::InvalidBatch("destination equals source"));
            }
            if self.share_dests.contains(&p.dest) {
                return Err(FtlError::InvalidBatch("duplicate destination LPN"));
            }
            self.share_dests.push(p.dest);
            self.share_srcs.push(p.src);
            let ppn = self.map.lookup(p.src);
            if !ppn.is_valid() {
                return Err(FtlError::SrcUnmapped(p.src));
            }
            self.share_src_ppns.push(ppn);
        }
        if pairs.iter().any(|p| self.share_srcs.contains(&p.dest)) {
            return Err(FtlError::InvalidBatch("an LPN is both destination and source"));
        }

        // Reference-count overflow pre-check.
        self.share_incs.clear();
        for idx in 0..self.share_src_ppns.len() {
            let ppn = self.share_src_ppns[idx];
            match self.share_incs.iter_mut().find(|(p, _)| *p == ppn) {
                Some((_, c)) => *c += 1,
                None => self.share_incs.push((ppn, 1)),
            }
        }
        for &(ppn, inc) in &self.share_incs {
            if self.map.refcount(ppn) as u32 + inc > u16::MAX as u32 {
                return Err(FtlError::RefOverflow);
            }
        }

        // Reverse-map capacity pre-check, so the command is all-or-nothing
        // at run time too (the caller falls back to a plain write). Under
        // ScanOnOverflow the command never fails on capacity.
        if self.map.policy() == crate::mapping::RevMapPolicy::Strict {
            let mut need = 0usize;
            for (p, &ppn) in pairs.iter().zip(&self.share_src_ppns) {
                need += self.map.shared_slot_need(p.dest, ppn);
            }
            if need > self.map.revmap().free() {
                return Err(FtlError::RevMapFull { capacity: self.map.revmap().capacity() });
            }
        }
        Ok(())
    }

    /// Apply a validated SHARE batch: remap every destination and commit
    /// the whole batch's deltas in one atomically-programmed log page.
    /// `validate_share` must have run (it fills `share_src_ppns`).
    fn apply_share(&mut self, pairs: &[SharePair]) -> Result<(), FtlError> {
        self.stats.shared_pages += pairs.len() as u64;
        let src_ppns = std::mem::take(&mut self.share_src_ppns);
        let mut deltas = std::mem::take(&mut self.share_deltas);
        deltas.clear();
        let mut res = Ok(());
        for (p, &src_ppn) in pairs.iter().zip(&src_ppns) {
            match self.map.map_shared(p.dest, src_ppn) {
                Ok(old) => {
                    self.note_invalidation(&old);
                    deltas.push(Delta { lpn: p.dest, old: old.old_ppn, new: src_ppn });
                }
                Err(e) => {
                    res = Err(e);
                    break;
                }
            }
        }
        if res.is_ok() {
            let before = self.log.pages_written;
            let t0 = self.nand.now_ns();
            self.note_delta(self.telemetry.current_stream(), deltas.len() as u64);
            let span = self.begin_span("log_flush", STREAM_FTL, t0);
            res = self.log.flush_atomic_batch(&mut self.nand, &deltas);
            let pages = self.log.pages_written - before;
            self.tracer.end(span, self.nand.now_ns(), pages, res.is_ok());
            self.telemetry.record_as(
                OpClass::LogFlush,
                self.bg_attr(),
                0,
                pages,
                t0,
                self.nand.now_ns(),
                res.is_ok(),
            );
            self.stats.meta_page_writes += pages;
            self.settle_log_blame(pages);
        }
        self.share_src_ppns = src_ppns;
        self.share_deltas = deltas;
        res?;
        self.maybe_checkpoint()
    }

    /// Allocate and program as many of `pages`' leading entries as the
    /// free pool allows, as ONE batched submission (programs on distinct
    /// channel-ways overlap in simulated time). May program fewer pages
    /// than requested when the pool runs dry mid-batch; the caller must
    /// map what was programmed before running GC, so no programmed page
    /// is ever unmapped while `ensure_free` can pick victims. Errors with
    /// `DeviceFull` only when nothing at all could be allocated.
    fn program_user_submission(&mut self, pages: &[(Lpn, &[u8])]) -> Result<Vec<Ppn>, FtlError> {
        let mut dests = Vec::with_capacity(pages.len());
        for _ in 0..pages.len() {
            match self.alloc_user() {
                Ok(p) => dests.push(p),
                Err(FtlError::DeviceFull) => break,
                Err(e) => return Err(e),
            }
        }
        if dests.is_empty() {
            return Err(FtlError::DeviceFull);
        }
        let programs: Vec<(Ppn, &[u8])> =
            dests.iter().zip(pages).map(|(&d, (_, data))| (d, *data)).collect();
        self.nand.program_batch(&programs)?;
        Ok(dests)
    }

    /// Pages per batched submission: enough depth to keep every unit busy
    /// (8 per channel-way), and chunked so `ensure_free` gets a say between
    /// submissions on long batches.
    fn submit_chunk_pages(&self) -> usize {
        (self.cfg.geometry.units() as usize * 8).max(1)
    }

    /// Telemetry collected by this device (counters always; histograms and
    /// the command ring per [`FtlConfig::telemetry`]).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    fn read_impl(&mut self, lpn: Lpn, buf: &mut [u8]) -> Result<(), FtlError> {
        self.check_lpn(lpn)?;
        if buf.len() != self.page_size() {
            return Err(FtlError::BadBufferLength { got: buf.len(), want: self.page_size() });
        }
        self.stats.host_reads += 1;
        self.stats.host_read_bytes += buf.len() as u64;
        let ppn = self.map.lookup(lpn);
        if ppn.is_valid() {
            self.nand.read(ppn, buf)?;
        } else {
            buf.fill(0);
            self.nand.charge(self.cfg.timing.xfer_ns(buf.len()));
        }
        Ok(())
    }

    fn write_impl(&mut self, lpn: Lpn, data: &[u8]) -> Result<(), FtlError> {
        self.check_lpn(lpn)?;
        if data.len() != self.page_size() {
            return Err(FtlError::BadBufferLength { got: data.len(), want: self.page_size() });
        }
        self.stats.host_writes += 1;
        self.stats.host_write_bytes += data.len() as u64;
        self.ensure_free()?;
        let ppn = self.alloc_user()?;
        self.nand.program(ppn, data)?;
        let old = self.map.map_new_write(lpn, ppn)?;
        self.note_invalidation(&old);
        self.log.append(Delta { lpn, old: old.old_ppn, new: ppn });
        self.note_delta(self.telemetry.current_stream(), 1);
        if self.log.buffer_full() {
            self.flush_log()?;
        }
        Ok(())
    }

    fn trim_impl(&mut self, lpn: Lpn, len: u64) -> Result<(), FtlError> {
        self.nand.charge(self.cfg.command_ns);
        for i in 0..len {
            let l = lpn.offset(i);
            self.check_lpn(l)?;
            let old = self.map.unmap(l);
            self.note_invalidation(&old);
            if old.old_ppn.is_valid() {
                self.log.append(Delta { lpn: l, old: old.old_ppn, new: Ppn::INVALID });
                self.note_delta(self.telemetry.current_stream(), 1);
            }
            self.stats.trims += 1;
            if self.log.buffer_full() {
                self.flush_log()?;
            }
        }
        Ok(())
    }

    fn share_impl(&mut self, pairs: &[SharePair]) -> Result<(), FtlError> {
        self.validate_share(pairs)?;
        self.nand.charge(self.cfg.command_ns);
        self.stats.share_commands += 1;
        self.apply_share(pairs)
    }

    fn share_batch_impl(&mut self, pairs: &[SharePair]) -> Result<(), FtlError> {
        let limit = self.share_batch_limit();
        self.nand.charge(self.cfg.command_ns);
        self.stats.share_commands += 1;
        for chunk in pairs.chunks(limit) {
            self.validate_share(chunk)?;
            self.apply_share(chunk)?;
        }
        Ok(())
    }

    /// Read-only view of the device snapshot table (tests, crash sweeps,
    /// CLI introspection).
    pub fn snapshot_table(&self) -> &SnapshotTable {
        &self.snaps
    }

    fn snapshot_create_impl(&mut self, name: &str, start: Lpn, len: u64) -> Result<u32, FtlError> {
        if name.is_empty() {
            return Err(FtlError::InvalidBatch("snapshot name must not be empty"));
        }
        if len == 0 {
            return Err(FtlError::InvalidBatch("snapshot range must not be empty"));
        }
        if start.0 >= self.cfg.logical_pages || len > self.cfg.logical_pages - start.0 {
            return Err(FtlError::LpnOutOfRange {
                lpn: Lpn(start.0.saturating_add(len - 1)),
                capacity: self.cfg.logical_pages,
            });
        }
        self.nand.charge(self.cfg.command_ns);
        // Freeze the current mapping of the range. Pure metadata: no NAND
        // page is read or programmed — the frozen entries simply pin their
        // physical pages against GC reclaim. Durability comes from the next
        // checkpoint (see `snapshot_persist`).
        let mut pages = Vec::new();
        for off in 0..len {
            let ppn = self.map.lookup(Lpn(start.0 + off));
            if ppn.is_valid() {
                pages.push((off, ppn));
            }
        }
        let id = self.snaps.create(name, start, len, pages)?;
        // The serialized table must still fit the checkpoint slot's slack,
        // or no future checkpoint could persist it.
        if self.snaps.encode().len() > ckpt::max_snapshot_bytes(&self.cfg) {
            self.snaps.remove(name).expect("snapshot was just created");
            return Err(FtlError::SnapshotTableFull);
        }
        self.stats.snapshot_creates += 1;
        Ok(id)
    }

    fn snapshot_drop_impl(&mut self, name: &str) -> Result<(), FtlError> {
        self.nand.charge(self.cfg.command_ns);
        let rec = self.snaps.remove(name)?;
        // Pages the drop just unpinned — no longer frozen anywhere and dead
        // in the live map — become reclaimable garbage now, so the dropping
        // stream takes the blame for their blocks' eventual GC copyback
        // (mirrors `note_invalidation` at ordinary overwrite/trim death).
        // One snapshot can freeze the same physical page at several offsets
        // (SHAREd range), so blame each distinct page once.
        let mut seen = std::collections::HashSet::new();
        for &(_, ppn) in &rec.pages {
            if seen.insert(ppn.0) && !self.snaps.is_pinned(ppn) && !self.map.is_live(ppn) {
                self.note_invalidation(&crate::mapping::Unmapped { old_ppn: ppn, died: true });
            }
        }
        // A tombstone delta makes the drop durable ahead of the next
        // checkpoint: replay discards the snapshot the same way.
        self.log.append(Delta {
            lpn: snapshot::snap_tombstone_lpn(rec.id),
            old: Ppn::INVALID,
            new: Ppn::INVALID,
        });
        self.note_delta(self.telemetry.current_stream(), 1);
        self.stats.snapshot_drops += 1;
        if self.log.buffer_full() {
            self.flush_log()?;
        }
        Ok(())
    }

    fn snapshot_clone_impl(
        &mut self,
        name: &str,
        src_offset: u64,
        dst: Lpn,
        len: u64,
    ) -> Result<u64, FtlError> {
        if len == 0 {
            return Err(FtlError::InvalidBatch("clone range must not be empty"));
        }
        if dst.0 >= self.cfg.logical_pages || len > self.cfg.logical_pages - dst.0 {
            return Err(FtlError::LpnOutOfRange {
                lpn: Lpn(dst.0.saturating_add(len - 1)),
                capacity: self.cfg.logical_pages,
            });
        }
        // Resolve the window against the frozen record up front; the record
        // itself never changes while we rewire the live map.
        let window: Vec<Option<Ppn>> = {
            let rec = self.snaps.get(name).ok_or(FtlError::SnapshotNotFound)?;
            if src_offset > rec.len || len > rec.len - src_offset {
                return Err(FtlError::InvalidBatch("clone window exceeds the snapshot range"));
            }
            (0..len).map(|i| rec.page_at(src_offset + i)).collect()
        };
        self.nand.charge(self.cfg.command_ns);
        // Reference-count overflow pre-check (conservative: ignores any
        // refs the clone's own unmaps might release).
        self.share_incs.clear();
        for ppn in window.iter().flatten() {
            match self.share_incs.iter_mut().find(|(p, _)| p == ppn) {
                Some((_, c)) => *c += 1,
                None => self.share_incs.push((*ppn, 1)),
            }
        }
        for &(ppn, inc) in &self.share_incs {
            let base = if self.map.is_live(ppn) { self.map.refcount(ppn) as u32 } else { 0 };
            if base + inc > u16::MAX as u32 {
                return Err(FtlError::RefOverflow);
            }
        }
        // Strict reverse-map capacity pre-check, mirroring SHARE: the
        // command is all-or-nothing on capacity. (Resurrected pinned pages
        // re-enter as primary mappings and need no shared slot.)
        if self.map.policy() == crate::mapping::RevMapPolicy::Strict {
            let mut need = 0usize;
            for (i, frozen) in window.iter().enumerate() {
                if let Some(ppn) = frozen {
                    if self.map.is_live(*ppn) {
                        need += self.map.shared_slot_need(Lpn(dst.0 + i as u64), *ppn);
                    }
                }
            }
            if need > self.map.revmap().free() {
                return Err(FtlError::RevMapFull { capacity: self.map.revmap().capacity() });
            }
        }
        self.stats.snapshot_clones += 1;
        let limit = self.cfg.deltas_per_page();
        let mut deltas: Vec<Delta> = Vec::new();
        let mut mapped_pages = 0u64;
        for (i, &frozen) in window.iter().enumerate() {
            let lpn = Lpn(dst.0 + i as u64);
            match frozen {
                Some(ppn) => {
                    // Zero-copy materialization: the clone's LPN points at
                    // the frozen physical page. Still-live pages gain a
                    // reference (CoW exactly like SHARE); pages dead in the
                    // live map re-enter it as a fresh primary mapping.
                    let old = if self.map.is_live(ppn) {
                        self.map.map_shared(lpn, ppn)?
                    } else {
                        self.map.map_new_write(lpn, ppn)?
                    };
                    self.note_invalidation(&old);
                    deltas.push(Delta { lpn, old: old.old_ppn, new: ppn });
                    mapped_pages += 1;
                }
                None => {
                    // Hole in the snapshot: the clone reads zeroes there.
                    let old = self.map.unmap(lpn);
                    self.note_invalidation(&old);
                    if old.old_ppn.is_valid() {
                        deltas.push(Delta { lpn, old: old.old_ppn, new: Ppn::INVALID });
                    }
                }
            }
            if deltas.len() == limit {
                self.clone_flush_deltas(&mut deltas)?;
            }
        }
        self.clone_flush_deltas(&mut deltas)?;
        self.stats.snapshot_clone_pages += mapped_pages;
        self.maybe_checkpoint()?;
        Ok(mapped_pages)
    }

    /// Flush a clone's accumulated mapping deltas as one atomically
    /// programmed log page (same shape as `apply_share`'s commit).
    fn clone_flush_deltas(&mut self, deltas: &mut Vec<Delta>) -> Result<(), FtlError> {
        if deltas.is_empty() {
            return Ok(());
        }
        let before = self.log.pages_written;
        let t0 = self.nand.now_ns();
        self.note_delta(self.telemetry.current_stream(), deltas.len() as u64);
        let span = self.begin_span("log_flush", STREAM_FTL, t0);
        let r = self.log.flush_atomic_batch(&mut self.nand, deltas);
        let pages = self.log.pages_written - before;
        self.tracer.end(span, self.nand.now_ns(), pages, r.is_ok());
        self.telemetry.record_as(
            OpClass::LogFlush,
            self.bg_attr(),
            0,
            pages,
            t0,
            self.nand.now_ns(),
            r.is_ok(),
        );
        self.stats.meta_page_writes += pages;
        self.settle_log_blame(pages);
        deltas.clear();
        r
    }

    fn snapshot_read_impl(
        &mut self,
        name: &str,
        offset: u64,
        buf: &mut [u8],
    ) -> Result<(), FtlError> {
        if buf.len() != self.page_size() {
            return Err(FtlError::BadBufferLength { got: buf.len(), want: self.page_size() });
        }
        let ppn = {
            let rec = self.snaps.get(name).ok_or(FtlError::SnapshotNotFound)?;
            if offset >= rec.len {
                return Err(FtlError::InvalidBatch("snapshot read beyond the frozen range"));
            }
            rec.page_at(offset)
        };
        self.stats.host_reads += 1;
        self.stats.host_read_bytes += buf.len() as u64;
        self.stats.snapshot_reads += 1;
        match ppn {
            Some(p) => self.nand.read(p, buf)?,
            None => {
                buf.fill(0);
                self.nand.charge(self.cfg.timing.xfer_ns(buf.len()));
            }
        }
        Ok(())
    }

    fn read_batch_impl(&mut self, reqs: &mut [(Lpn, &mut [u8])]) -> Result<(), FtlError> {
        let want = self.page_size();
        for (lpn, buf) in reqs.iter() {
            self.check_lpn(*lpn)?;
            if buf.len() != want {
                return Err(FtlError::BadBufferLength { got: buf.len(), want });
            }
        }
        self.stats.host_reads += reqs.len() as u64;
        self.stats.host_read_bytes += (reqs.len() * want) as u64;
        let mut mapped: Vec<(Ppn, &mut [u8])> = Vec::with_capacity(reqs.len());
        let mut zero_xfer = 0u64;
        for (lpn, buf) in reqs.iter_mut() {
            let ppn = self.map.lookup(*lpn);
            if ppn.is_valid() {
                mapped.push((ppn, &mut buf[..]));
            } else {
                buf.fill(0);
                zero_xfer += self.cfg.timing.xfer_ns(want);
            }
        }
        if !mapped.is_empty() {
            self.nand.read_batch(&mut mapped)?;
        }
        if zero_xfer > 0 {
            self.nand.charge(zero_xfer);
        }
        Ok(())
    }

    fn write_batch_impl(&mut self, pages: &[(Lpn, &[u8])]) -> Result<(), FtlError> {
        let want = self.page_size();
        for (lpn, data) in pages {
            self.check_lpn(*lpn)?;
            if data.len() != want {
                return Err(FtlError::BadBufferLength { got: data.len(), want });
            }
        }
        let submit = self.submit_chunk_pages();
        for chunk in pages.chunks(submit) {
            self.stats.host_writes += chunk.len() as u64;
            self.stats.host_write_bytes += (chunk.len() * want) as u64;
            self.ensure_free()?;
            let mut done = 0;
            while done < chunk.len() {
                let dests = self.program_user_submission(&chunk[done..])?;
                for ((lpn, _), &ppn) in chunk[done..].iter().zip(&dests) {
                    let old = self.map.map_new_write(*lpn, ppn)?;
                    self.note_invalidation(&old);
                    self.log.append(Delta { lpn: *lpn, old: old.old_ppn, new: ppn });
                    self.note_delta(self.telemetry.current_stream(), 1);
                    if self.log.buffer_full() {
                        self.flush_log()?;
                    }
                }
                done += dests.len();
                if done < chunk.len() {
                    // Mid-chunk pool exhaustion: everything programmed so
                    // far is mapped, so GC can run safely.
                    self.ensure_free()?;
                }
            }
        }
        Ok(())
    }

    fn write_atomic_impl(&mut self, pages: &[(Lpn, &[u8])]) -> Result<(), FtlError> {
        let limit = self.cfg.deltas_per_page();
        if pages.len() > limit {
            return Err(FtlError::BatchTooLarge { got: pages.len(), max: limit });
        }
        let mut dests = HashSet::with_capacity(pages.len());
        for (lpn, data) in pages {
            self.check_lpn(*lpn)?;
            if data.len() != self.page_size() {
                return Err(FtlError::BadBufferLength { got: data.len(), want: self.page_size() });
            }
            if !dests.insert(*lpn) {
                return Err(FtlError::InvalidBatch("duplicate LPN in atomic write"));
            }
        }
        self.nand.charge(self.cfg.command_ns);
        let submit = self.submit_chunk_pages();
        let mut deltas = Vec::with_capacity(pages.len());
        for chunk in pages.chunks(submit) {
            self.stats.host_writes += chunk.len() as u64;
            self.stats.host_write_bytes += (chunk.len() * self.page_size()) as u64;
            self.ensure_free()?;
            let mut done = 0;
            while done < chunk.len() {
                let dests = self.program_user_submission(&chunk[done..])?;
                for ((lpn, _), &ppn) in chunk[done..].iter().zip(&dests) {
                    let old = self.map.map_new_write(*lpn, ppn)?;
                    self.note_invalidation(&old);
                    deltas.push(Delta { lpn: *lpn, old: old.old_ppn, new: ppn });
                }
                done += dests.len();
                if done < chunk.len() {
                    self.ensure_free()?;
                }
            }
        }
        let before = self.log.pages_written;
        let t0 = self.nand.now_ns();
        self.note_delta(self.telemetry.current_stream(), deltas.len() as u64);
        let span = self.begin_span("log_flush", STREAM_FTL, t0);
        let r = self.log.flush_atomic_batch(&mut self.nand, &deltas);
        let meta_pages = self.log.pages_written - before;
        self.tracer.end(span, self.nand.now_ns(), meta_pages, r.is_ok());
        self.telemetry.record_as(
            OpClass::LogFlush,
            self.bg_attr(),
            0,
            meta_pages,
            t0,
            self.nand.now_ns(),
            r.is_ok(),
        );
        r?;
        self.stats.meta_page_writes += meta_pages;
        self.settle_log_blame(meta_pages);
        self.maybe_checkpoint()
    }

    /// Execute a queued command's state transitions (called under an open
    /// deferred NAND window). Returns the op class, first LPN, page count
    /// and outcome for the completion record.
    fn execute_queued(&mut self, cmd: QueuedCmd) -> (OpClass, u64, u64, Result<CmdOutput, FtlError>) {
        match cmd {
            QueuedCmd::Read { lpn } => {
                let mut buf = vec![0u8; self.page_size()];
                let r = self.read_impl(lpn, &mut buf);
                (OpClass::Read, lpn.0, 1, r.map(|()| CmdOutput::Page(buf)))
            }
            QueuedCmd::ReadBatch { lpns } => {
                let first = lpns.first().map_or(0, |l| l.0);
                let n = lpns.len() as u64;
                let mut bufs = vec![vec![0u8; self.page_size()]; lpns.len()];
                let mut reqs: Vec<(Lpn, &mut [u8])> = lpns
                    .iter()
                    .copied()
                    .zip(bufs.iter_mut().map(|b| b.as_mut_slice()))
                    .collect();
                let r = self.read_batch_impl(&mut reqs);
                drop(reqs);
                (OpClass::ReadBatch, first, n, r.map(|()| CmdOutput::Pages(bufs)))
            }
            QueuedCmd::Write { lpn, data } => {
                let r = self.write_impl(lpn, &data);
                (OpClass::Write, lpn.0, 1, r.map(|()| CmdOutput::None))
            }
            QueuedCmd::WriteBatch { pages } => {
                let first = pages.first().map_or(0, |(l, _)| l.0);
                let n = pages.len() as u64;
                let refs: Vec<(Lpn, &[u8])> =
                    pages.iter().map(|(l, d)| (*l, d.as_slice())).collect();
                let r = self.write_batch_impl(&refs);
                (OpClass::WriteBatch, first, n, r.map(|()| CmdOutput::None))
            }
            QueuedCmd::WriteAtomic { pages } => {
                let first = pages.first().map_or(0, |(l, _)| l.0);
                let n = pages.len() as u64;
                let refs: Vec<(Lpn, &[u8])> =
                    pages.iter().map(|(l, d)| (*l, d.as_slice())).collect();
                let r = if refs.is_empty() { Ok(()) } else { self.write_atomic_impl(&refs) };
                (OpClass::WriteAtomic, first, n, r.map(|()| CmdOutput::None))
            }
            QueuedCmd::Share { pairs } => {
                let first = pairs.first().map_or(0, |p| p.dest.0);
                let n = pairs.len() as u64;
                let r = if pairs.is_empty() { Ok(()) } else { self.share_impl(&pairs) };
                (OpClass::Share, first, n, r.map(|()| CmdOutput::None))
            }
            QueuedCmd::ShareBatch { pairs } => {
                let first = pairs.first().map_or(0, |p| p.dest.0);
                let n = pairs.len() as u64;
                let r = if pairs.is_empty() { Ok(()) } else { self.share_batch_impl(&pairs) };
                (OpClass::ShareBatch, first, n, r.map(|()| CmdOutput::None))
            }
            QueuedCmd::Trim { lpn, len } => {
                let r = self.trim_impl(lpn, len);
                (OpClass::Trim, lpn.0, len, r.map(|()| CmdOutput::None))
            }
            QueuedCmd::Flush => {
                self.stats.flushes += 1;
                self.nand.charge(self.cfg.command_ns);
                let r = self.flush_log();
                (OpClass::Flush, 0, 0, r.map(|()| CmdOutput::None))
            }
        }
    }

    /// Remove and return every pending command with `complete_ns <= now`,
    /// oldest completion first, unpinning its blocks.
    fn take_due(&mut self, now: u64) -> Vec<Completion> {
        let mut due: Vec<PendingCmd> = Vec::new();
        let mut i = 0;
        while i < self.pending.len() {
            if self.pending[i].complete_ns <= now {
                due.push(self.pending.remove(i));
            } else {
                i += 1;
            }
        }
        due.sort_by_key(|p| (p.complete_ns, p.tag));
        self.q_reaped += due.len() as u64;
        due.into_iter()
            .map(|p| {
                self.pool.release_inflight(&p.blocks);
                Completion {
                    tag: p.tag,
                    submit_ns: p.submit_ns,
                    complete_ns: p.complete_ns,
                    result: p.result,
                }
            })
            .collect()
    }
}

impl BlockDevice for Ftl {
    fn page_size(&self) -> usize {
        self.cfg.geometry.page_size
    }

    fn capacity_pages(&self) -> u64 {
        self.cfg.logical_pages
    }

    fn read(&mut self, lpn: Lpn, buf: &mut [u8]) -> Result<(), FtlError> {
        let (t0, span) = self.begin_command("read");
        let r = self.read_impl(lpn, buf);
        self.end_command(span, 1, r.is_ok());
        self.telemetry.record(OpClass::Read, lpn.0, 1, t0, self.nand.now_ns(), r.is_ok());
        r
    }

    fn write(&mut self, lpn: Lpn, data: &[u8]) -> Result<(), FtlError> {
        let (t0, span) = self.begin_command("write");
        let r = self.write_impl(lpn, data);
        self.end_command(span, 1, r.is_ok());
        self.telemetry.record(OpClass::Write, lpn.0, 1, t0, self.nand.now_ns(), r.is_ok());
        r
    }

    fn flush(&mut self) -> Result<(), FtlError> {
        let (t0, span) = self.begin_command("flush");
        self.stats.flushes += 1;
        self.nand.charge(self.cfg.command_ns);
        let r = self.flush_log();
        self.end_command(span, 0, r.is_ok());
        self.telemetry.record(OpClass::Flush, 0, 0, t0, self.nand.now_ns(), r.is_ok());
        r
    }

    fn trim(&mut self, lpn: Lpn, len: u64) -> Result<(), FtlError> {
        let (t0, span) = self.begin_command("trim");
        let r = self.trim_impl(lpn, len);
        self.end_command(span, len, r.is_ok());
        self.telemetry.record(OpClass::Trim, lpn.0, len, t0, self.nand.now_ns(), r.is_ok());
        r
    }

    /// The SHARE command (§3.2): remap every `pair.dest` onto the physical
    /// page of `pair.src`, atomically for the whole batch. The command
    /// returns after its deltas are durably logged (§4.2.2).
    fn share(&mut self, pairs: &[SharePair]) -> Result<(), FtlError> {
        if pairs.is_empty() {
            return Ok(());
        }
        let (t0, span) = self.begin_command("share");
        let r = self.share_impl(pairs);
        self.end_command(span, pairs.len() as u64, r.is_ok());
        self.telemetry.record(
            OpClass::Share,
            pairs[0].dest.0,
            pairs.len() as u64,
            t0,
            self.nand.now_ns(),
            r.is_ok(),
        );
        r
    }

    /// A large SHARE submission: one host command (one command overhead,
    /// one `share_commands` tick) whose pairs are committed in
    /// log-page-sized sub-batches. Each sub-batch is individually atomic;
    /// a crash can land between sub-batches, exactly as if the host had
    /// issued them as separate commands — minus the per-command overhead.
    fn share_batch(&mut self, pairs: &[SharePair]) -> Result<(), FtlError> {
        if pairs.is_empty() {
            return Ok(());
        }
        let (t0, span) = self.begin_command("share_batch");
        let r = self.share_batch_impl(pairs);
        self.end_command(span, pairs.len() as u64, r.is_ok());
        self.telemetry.record(
            OpClass::ShareBatch,
            pairs[0].dest.0,
            pairs.len() as u64,
            t0,
            self.nand.now_ns(),
            r.is_ok(),
        );
        r
    }

    fn share_batch_limit(&self) -> usize {
        self.cfg.deltas_per_page()
    }

    fn supports_snapshot(&self) -> bool {
        true
    }

    /// Freeze the current mapping of `len` pages starting at `start` under
    /// `name`. Pure metadata — zero NAND page programs; the frozen entries
    /// pin their physical pages against GC reclaim until dropped.
    fn snapshot_create(&mut self, name: &str, start: Lpn, len: u64) -> Result<u32, FtlError> {
        let (_t0, span) = self.begin_command("snapshot_create");
        let r = self.snapshot_create_impl(name, start, len);
        self.end_command(span, len, r.is_ok());
        r
    }

    /// Release `name`'s pins. Newly unreferenced pages become ordinary
    /// garbage, blamed to the dropping stream.
    fn snapshot_drop(&mut self, name: &str) -> Result<(), FtlError> {
        let (_t0, span) = self.begin_command("snapshot_drop");
        let r = self.snapshot_drop_impl(name);
        self.end_command(span, 0, r.is_ok());
        r
    }

    /// Materialize a writable zero-copy clone of a snapshot window at
    /// `dst`: clone LPNs share the frozen physical pages; subsequent
    /// overwrites copy-on-write exactly like SHARE'd pages. Returns the
    /// number of pages mapped (holes in the snapshot read zeroes).
    fn snapshot_clone(
        &mut self,
        name: &str,
        src_offset: u64,
        dst: Lpn,
        len: u64,
    ) -> Result<u64, FtlError> {
        let (_t0, span) = self.begin_command("snapshot_clone");
        let r = self.snapshot_clone_impl(name, src_offset, dst, len);
        self.end_command(span, len, r.is_ok());
        r
    }

    /// Point-in-time read of one page from a snapshot, without touching
    /// the live mapping.
    fn snapshot_read(&mut self, name: &str, offset: u64, buf: &mut [u8]) -> Result<(), FtlError> {
        let (t0, span) = self.begin_command("snapshot_read");
        let r = self.snapshot_read_impl(name, offset, buf);
        self.end_command(span, 1, r.is_ok());
        self.telemetry.record(OpClass::Read, offset, 1, t0, self.nand.now_ns(), r.is_ok());
        r
    }

    fn snapshot_list(&self) -> Result<Vec<SnapshotInfo>, FtlError> {
        Ok(self.snaps.list())
    }

    /// Persist the snapshot table durably by taking a checkpoint now
    /// (creates are otherwise durable only at the next natural
    /// checkpoint).
    fn snapshot_persist(&mut self) -> Result<(), FtlError> {
        let (_t0, span) = self.begin_command("snapshot_persist");
        self.nand.charge(self.cfg.command_ns);
        let r = self.checkpoint();
        self.end_command(span, 0, r.is_ok());
        r
    }

    /// Batched read: mapped pages go to the NAND as one submission, so
    /// reads on distinct channel-ways overlap in simulated time.
    fn read_batch(&mut self, reqs: &mut [(Lpn, &mut [u8])]) -> Result<(), FtlError> {
        let (t0, span) = self.begin_command("read_batch");
        let first = reqs.first().map_or(0, |(lpn, _)| lpn.0);
        let n = reqs.len() as u64;
        let r = self.read_batch_impl(reqs);
        self.end_command(span, n, r.is_ok());
        self.telemetry.record(OpClass::ReadBatch, first, n, t0, self.nand.now_ns(), r.is_ok());
        r
    }

    /// Batched write: destinations are striped across channels by the
    /// block pool and programmed as multi-page submissions, so the
    /// programs overlap across channel-ways. Ordering and durability
    /// semantics match the equivalent sequence of single writes.
    fn write_batch(&mut self, pages: &[(Lpn, &[u8])]) -> Result<(), FtlError> {
        let (t0, span) = self.begin_command("write_batch");
        let first = pages.first().map_or(0, |(lpn, _)| lpn.0);
        let n = pages.len() as u64;
        let r = self.write_batch_impl(pages);
        self.end_command(span, n, r.is_ok());
        self.telemetry.record(OpClass::WriteBatch, first, n, t0, self.nand.now_ns(), r.is_ok());
        r
    }

    /// Atomic multi-page write (§6.1's related-work primitive): all data
    /// pages are programmed out-of-place first, then every mapping delta
    /// of the batch is committed in a single atomically-programmed log
    /// page — the same mechanism that makes SHARE batches atomic.
    fn write_atomic(&mut self, pages: &[(Lpn, &[u8])]) -> Result<(), FtlError> {
        if pages.is_empty() {
            return Ok(());
        }
        let (t0, span) = self.begin_command("write_atomic");
        let first = pages[0].0 .0;
        let n = pages.len() as u64;
        let r = self.write_atomic_impl(pages);
        self.end_command(span, n, r.is_ok());
        self.telemetry.record(OpClass::WriteAtomic, first, n, t0, self.nand.now_ns(), r.is_ok());
        r
    }

    fn write_atomic_limit(&self) -> usize {
        self.cfg.deltas_per_page()
    }

    fn supports_queue(&self) -> bool {
        true
    }

    fn queue_depth(&self) -> usize {
        self.cfg.queue_depth
    }

    fn set_queue_depth(&mut self, depth: usize) {
        self.cfg.queue_depth = depth.max(1);
    }

    /// Queued submission: execute the command's state transitions *now*
    /// (in submission order — the medium and crash images are identical to
    /// the synchronous path) but dispatch its NAND timing onto a deferred
    /// window, so commands from independent connections overlap across
    /// channel-ways. The completion surfaces via `poll`/`reap`/`drain`.
    fn submit(&mut self, cmd: QueuedCmd) -> Result<CmdTag, FtlError> {
        if self.pending.len() >= self.cfg.queue_depth {
            return Err(FtlError::QueueFull { depth: self.cfg.queue_depth });
        }
        let tag = CmdTag(self.next_tag);
        self.next_tag = self.next_tag.wrapping_add(1);
        let submit_ns = self.nand.now_ns();
        let stream = self.telemetry.current_stream();
        self.cmd_stream = Some(stream);
        let span = self.begin_span(cmd.name(), stream, submit_ns);
        self.pool.begin_capture();
        self.nand.begin_deferred();
        let (op, lpn0, pages, result) = self.execute_queued(cmd);
        let complete_ns = self.nand.end_deferred();
        let blocks = self.pool.end_capture();
        self.cmd_stream = None;
        let ok = result.is_ok();
        self.tracer.end(span, complete_ns, pages, ok);
        // Recorded with the submit→complete interval: under load this is
        // the latency-under-load the host observes, not device service time.
        self.telemetry.record(op, lpn0, pages, submit_ns, complete_ns, ok);
        self.q_submitted += 1;
        self.pending.push(PendingCmd { tag, submit_ns, complete_ns, result, blocks });
        self.q_max_inflight = self.q_max_inflight.max(self.pending.len() as u64);
        self.epoch_tick();
        Ok(tag)
    }

    fn poll(&mut self) -> Vec<Completion> {
        let now = self.nand.now_ns();
        self.take_due(now)
    }

    fn reap(&mut self) -> Vec<Completion> {
        let Some(earliest) = self.pending.iter().map(|p| p.complete_ns).min() else {
            return Vec::new();
        };
        self.nand.clock().advance_to(earliest);
        let now = self.nand.now_ns();
        self.take_due(now)
    }

    fn drain(&mut self) -> Vec<Completion> {
        let Some(latest) = self.pending.iter().map(|p| p.complete_ns).max() else {
            return Vec::new();
        };
        self.nand.clock().advance_to(latest);
        let now = self.nand.now_ns();
        self.take_due(now)
    }

    fn inflight(&self) -> usize {
        self.pending.len()
    }

    fn stats(&self) -> DeviceStats {
        let mut s = self.stats;
        s.nand = self.nand.stats();
        s.lane_steals = self.pool.lane_steals();
        s
    }

    fn clock(&self) -> &SimClock {
        self.nand.clock()
    }

    fn stream_intern(&mut self, label: &str) -> u32 {
        let id = self.telemetry.intern(label);
        let idx = id as usize;
        if self.stream_class.len() <= idx {
            self.stream_class.resize(idx + 1, CLASS_DEFAULT);
        }
        self.stream_class[idx] = self.cfg.placement.classify(label);
        self.tracer.set_stream_label(id, label);
        id
    }

    fn set_stream(&mut self, stream: u32) {
        self.telemetry.set_stream(stream)
    }

    fn telemetry_snapshot(&self) -> Option<Snapshot> {
        let mut snap = self.telemetry.snapshot();
        let channels = self.cfg.geometry.channels;
        snap.units = self
            .nand
            .busy_ns()
            .iter()
            .enumerate()
            .map(|(unit, &busy_ns)| UnitUtilization {
                channel: unit as u32 % channels,
                way: unit as u32 / channels,
                busy_ns,
            })
            .collect();
        snap.now_ns = self.nand.now_ns();
        snap.queue = QueueGauges {
            depth: self.cfg.queue_depth as u64,
            inflight: self.pending.len() as u64,
            max_inflight: self.q_max_inflight,
            submitted: self.q_submitted,
            reaped: self.q_reaped,
        };
        snap.placement = PlacementGauges {
            enabled: self.cfg.placement.enabled,
            lane_steals: self.pool.lane_steals(),
            gc_stall_ns: self.stats.gc_stall_ns,
            gc_budget_deferrals: self.stats.gc_budget_deferrals,
            classes: (0..self.pool.classes())
                .map(|class| PlacementClassGauge {
                    class: class as u8,
                    label: PlacementConfig::class_label(class as u8).to_string(),
                    placed_pages: self.pool.placed_pages(class),
                    gc_moved_pages: self.pool.gc_moved_pages(class),
                    open_blocks: self.pool.open_blocks(class),
                })
                .collect(),
        };
        snap.snapshots = SnapshotGauges {
            live: self.snaps.count() as u64,
            frozen_pages: self.snaps.frozen_pages(),
            pinned_pages: self.snaps.pinned_pages(),
            creates: self.stats.snapshot_creates,
            drops: self.stats.snapshot_drops,
            clones: self.stats.snapshot_clones,
            clone_pages: self.stats.snapshot_clone_pages,
            reads: self.stats.snapshot_reads,
            pinned_relocations: self.stats.snapshot_pinned_relocations,
        };
        snap.health = self.health_report().gauges();
        if let Some(rec) = &self.recorder {
            snap.alerts = rec.alerts().to_vec();
        }
        Some(snap)
    }

    fn monitor_snapshot(&self) -> Option<FlightSnapshot> {
        let rec = self.recorder.as_ref()?;
        let mut snap =
            rec.snapshot(self.nand.now_ns(), &self.stats(), &self.telemetry.wa_raw());
        snap.labels = self.telemetry.stream_labels().to_vec();
        snap.unit_labels = unit_labels(self.cfg.geometry.channels, self.nand.busy_ns().len());
        Some(snap)
    }

    fn tracer(&self) -> Tracer {
        self.tracer.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nand_sim::NandTiming;

    fn tiny() -> Ftl {
        // 1 MiB logical, generous OP so GC has room; zero latency for speed.
        let cfg = FtlConfig::for_capacity_with(1 << 20, 0.5, 4096, 16, NandTiming::zero());
        Ftl::new(cfg)
    }

    fn pagev(b: u8, ftl: &Ftl) -> Vec<u8> {
        vec![b; ftl.page_size()]
    }

    fn read_byte(ftl: &mut Ftl, lpn: Lpn) -> u8 {
        let mut buf = vec![0u8; ftl.page_size()];
        ftl.read(lpn, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == buf[0]), "page not uniform");
        buf[0]
    }

    #[test]
    fn write_read_round_trip() {
        let mut f = tiny();
        f.write(Lpn(7), &pagev(0xAA, &f)).unwrap();
        assert_eq!(read_byte(&mut f, Lpn(7)), 0xAA);
        f.check_invariants();
    }

    #[test]
    fn unwritten_reads_zero() {
        let mut f = tiny();
        assert_eq!(read_byte(&mut f, Lpn(100)), 0);
    }

    #[test]
    fn overwrite_returns_new_data() {
        let mut f = tiny();
        f.write(Lpn(5), &pagev(1, &f)).unwrap();
        f.write(Lpn(5), &pagev(2, &f)).unwrap();
        assert_eq!(read_byte(&mut f, Lpn(5)), 2);
        f.check_invariants();
    }

    #[test]
    fn share_makes_dest_read_src_content() {
        let mut f = tiny();
        f.write(Lpn(1), &pagev(0x11, &f)).unwrap();
        f.write(Lpn(2), &pagev(0x22, &f)).unwrap();
        f.share(&[SharePair::new(Lpn(1), Lpn(2))]).unwrap();
        assert_eq!(read_byte(&mut f, Lpn(1)), 0x22);
        assert_eq!(read_byte(&mut f, Lpn(2)), 0x22);
        assert_eq!(f.mapping_of(Lpn(1)), f.mapping_of(Lpn(2)));
        assert_eq!(f.refcount_of(Lpn(1)), 2);
        f.check_invariants();
    }

    #[test]
    fn share_consumes_no_data_page_writes() {
        let mut f = tiny();
        f.write(Lpn(1), &pagev(1, &f)).unwrap();
        f.write(Lpn(2), &pagev(2, &f)).unwrap();
        f.flush().unwrap(); // drain buffered deltas so the batch page is isolated
        let before = f.stats();
        f.share(&[SharePair::new(Lpn(1), Lpn(2))]).unwrap();
        let d = f.stats().delta_since(&before);
        assert_eq!(d.host_writes, 0);
        // Exactly one meta page for the atomic batch.
        assert_eq!(d.meta_page_writes, 1);
        assert_eq!(d.share_commands, 1);
        assert_eq!(d.shared_pages, 1);
    }

    #[test]
    fn share_after_overwrite_of_src_keeps_old_content_for_dest() {
        let mut f = tiny();
        f.write(Lpn(1), &pagev(1, &f)).unwrap();
        f.write(Lpn(2), &pagev(2, &f)).unwrap();
        f.share(&[SharePair::new(Lpn(1), Lpn(2))]).unwrap();
        // src moves on; dest keeps the shared physical page.
        f.write(Lpn(2), &pagev(3, &f)).unwrap();
        assert_eq!(read_byte(&mut f, Lpn(1)), 2);
        assert_eq!(read_byte(&mut f, Lpn(2)), 3);
        assert_eq!(f.refcount_of(Lpn(1)), 1);
        f.check_invariants();
    }

    #[test]
    fn share_unmapped_src_is_rejected() {
        let mut f = tiny();
        f.write(Lpn(1), &pagev(1, &f)).unwrap();
        assert_eq!(
            f.share(&[SharePair::new(Lpn(1), Lpn(9))]),
            Err(FtlError::SrcUnmapped(Lpn(9)))
        );
        // Mapping untouched.
        assert_eq!(read_byte(&mut f, Lpn(1)), 1);
    }

    #[test]
    fn share_batch_validation() {
        let mut f = tiny();
        for i in 0..4 {
            f.write(Lpn(i), &pagev(i as u8, &f)).unwrap();
        }
        assert_eq!(
            f.share(&[SharePair::new(Lpn(1), Lpn(1))]),
            Err(FtlError::InvalidBatch("destination equals source"))
        );
        assert_eq!(
            f.share(&[SharePair::new(Lpn(1), Lpn(2)), SharePair::new(Lpn(1), Lpn(3))]),
            Err(FtlError::InvalidBatch("duplicate destination LPN"))
        );
        assert_eq!(
            f.share(&[SharePair::new(Lpn(1), Lpn(2)), SharePair::new(Lpn(3), Lpn(1))]),
            Err(FtlError::InvalidBatch("an LPN is both destination and source"))
        );
        let too_big: Vec<SharePair> = (0..f.share_batch_limit() as u64 + 1)
            .map(|i| SharePair::new(Lpn(1000 + i), Lpn(0)))
            .collect();
        assert!(matches!(f.share(&too_big), Err(FtlError::BatchTooLarge { .. })));
        // Failed commands must not mutate state.
        f.check_invariants();
        assert_eq!(f.stats().share_commands, 0);
    }

    #[test]
    fn ranged_share_remaps_every_page() {
        let mut f = tiny();
        for i in 0..8 {
            f.write(Lpn(i), &pagev(i as u8, &f)).unwrap();
        }
        for i in 0..4u64 {
            f.write(Lpn(100 + i), &pagev(0xF0 + i as u8, &f)).unwrap();
        }
        f.share(&SharePair::range(Lpn(0), Lpn(100), 4)).unwrap();
        for i in 0..4u64 {
            assert_eq!(read_byte(&mut f, Lpn(i)), 0xF0 + i as u8);
        }
        for i in 4..8u64 {
            assert_eq!(read_byte(&mut f, Lpn(i)), i as u8);
        }
        f.check_invariants();
    }

    #[test]
    fn trim_unmaps_and_reads_zero() {
        let mut f = tiny();
        f.write(Lpn(3), &pagev(9, &f)).unwrap();
        f.trim(Lpn(3), 1).unwrap();
        assert_eq!(read_byte(&mut f, Lpn(3)), 0);
        assert_eq!(f.mapping_of(Lpn(3)), None);
        f.check_invariants();
    }

    #[test]
    fn revmap_full_rejects_whole_batch() {
        let cfg = {
            let mut c = FtlConfig::for_capacity_with(1 << 20, 0.5, 4096, 16, NandTiming::zero());
            c.revmap_capacity = 2;
            c.revmap_policy = crate::mapping::RevMapPolicy::Strict;
            c
        };
        let mut f = Ftl::new(cfg);
        for i in 0..8 {
            f.write(Lpn(i), &pagev(i as u8, &f)).unwrap();
        }
        // Two shares fit...
        f.share(&[SharePair::new(Lpn(0), Lpn(4)), SharePair::new(Lpn(1), Lpn(5))]).unwrap();
        assert_eq!(f.revmap_len(), 2);
        // ...a third does not, and the whole batch is rejected.
        assert_eq!(
            f.share(&[SharePair::new(Lpn(2), Lpn(6)), SharePair::new(Lpn(3), Lpn(7))]),
            Err(FtlError::RevMapFull { capacity: 2 })
        );
        assert_eq!(f.revmap_len(), 2);
        assert_eq!(read_byte(&mut f, Lpn(2)), 2);
        f.check_invariants();
    }

    #[test]
    fn overwriting_shared_dest_releases_revmap_slot() {
        let mut f = tiny();
        f.write(Lpn(0), &pagev(1, &f)).unwrap();
        f.write(Lpn(1), &pagev(2, &f)).unwrap();
        f.share(&[SharePair::new(Lpn(0), Lpn(1))]).unwrap();
        assert_eq!(f.revmap_len(), 1);
        f.write(Lpn(0), &pagev(3, &f)).unwrap();
        assert_eq!(f.revmap_len(), 0);
        f.check_invariants();
    }

    #[test]
    fn gc_reclaims_space_under_overwrite_pressure() {
        let mut f = tiny();
        let logical = f.capacity_pages();
        // Fill the device, then overwrite half of it repeatedly.
        for i in 0..logical {
            f.write(Lpn(i), &pagev((i % 251) as u8, &f)).unwrap();
        }
        for round in 0..4u64 {
            for i in 0..logical / 2 {
                f.write(Lpn(i), &pagev(((i + round) % 251) as u8, &f)).unwrap();
            }
        }
        let s = f.stats();
        assert!(s.gc_events > 0, "GC must have run");
        assert!(s.gc_erases > 0);
        assert!(s.waf() > 1.0);
        // All data still readable and correct.
        for i in 0..logical / 2 {
            assert_eq!(read_byte(&mut f, Lpn(i)), ((i + 3) % 251) as u8);
        }
        for i in logical / 2..logical {
            assert_eq!(read_byte(&mut f, Lpn(i)), (i % 251) as u8);
        }
        f.check_invariants();
    }

    #[test]
    fn gc_preserves_shared_pages() {
        let mut f = tiny();
        let logical = f.capacity_pages();
        // Create shared mappings up front.
        f.write(Lpn(0), &pagev(0x5A, &f)).unwrap();
        f.share(&[SharePair::new(Lpn(1), Lpn(0)), SharePair::new(Lpn(2), Lpn(0))]).unwrap();
        // Force many GC cycles with overwrite churn elsewhere.
        for round in 0..6u64 {
            for i in 3..logical {
                f.write(Lpn(i), &pagev(((i * 7 + round) % 251) as u8, &f)).unwrap();
            }
        }
        assert!(f.stats().gc_events > 0);
        // The shared trio still reads the same content through one PPN.
        assert_eq!(read_byte(&mut f, Lpn(0)), 0x5A);
        assert_eq!(read_byte(&mut f, Lpn(1)), 0x5A);
        assert_eq!(read_byte(&mut f, Lpn(2)), 0x5A);
        assert_eq!(f.mapping_of(Lpn(0)), f.mapping_of(Lpn(1)));
        assert_eq!(f.mapping_of(Lpn(1)), f.mapping_of(Lpn(2)));
        f.check_invariants();
    }

    #[test]
    fn flush_persists_and_reopen_recovers() {
        let mut f = tiny();
        let cfg = f.config().clone();
        for i in 0..50 {
            f.write(Lpn(i), &pagev((i + 1) as u8, &f)).unwrap();
        }
        f.share(&[SharePair::new(Lpn(60), Lpn(0))]).unwrap();
        f.flush().unwrap();
        let nand = f.into_nand();
        let mut f2 = Ftl::open(cfg, nand).unwrap();
        for i in 0..50 {
            assert_eq!(read_byte(&mut f2, Lpn(i)), (i + 1) as u8);
        }
        assert_eq!(read_byte(&mut f2, Lpn(60)), 1);
        assert_eq!(f2.mapping_of(Lpn(60)), f2.mapping_of(Lpn(0)));
        f2.check_invariants();
    }

    #[test]
    fn unflushed_writes_may_be_lost_but_old_data_survives() {
        let mut f = tiny();
        let cfg = f.config().clone();
        f.write(Lpn(1), &pagev(1, &f)).unwrap();
        f.flush().unwrap();
        // Overwrite without flush: durability not promised for the new data,
        // but recovery must yield *some* consistent version (here: the old).
        f.write(Lpn(1), &pagev(2, &f)).unwrap();
        let mut f2 = Ftl::open(cfg, f.into_nand()).unwrap();
        let v = read_byte(&mut f2, Lpn(1));
        assert!(v == 1 || v == 2, "must be old or new, got {v}");
        f2.check_invariants();
    }

    #[test]
    fn crash_mid_share_batch_is_all_or_nothing() {
        let mut f = tiny();
        let cfg = f.config().clone();
        for i in 0..4 {
            f.write(Lpn(i), &pagev(10 + i as u8, &f)).unwrap();
        }
        for i in 0..4u64 {
            f.write(Lpn(100 + i), &pagev(20 + i as u8, &f)).unwrap();
        }
        f.flush().unwrap();
        // Tear the very next NAND program: that is the atomic batch's log page.
        f.fault_handle().arm_after_programs(1, nand_sim::FaultMode::TornHalf);
        let pairs = SharePair::range(Lpn(0), Lpn(100), 4);
        assert!(f.share(&pairs).is_err());
        let mut f2 = Ftl::open(cfg, f.into_nand()).unwrap();
        let first = read_byte(&mut f2, Lpn(0));
        let all_old = first == 10;
        for i in 0..4u64 {
            let v = read_byte(&mut f2, Lpn(i));
            if all_old {
                assert_eq!(v, 10 + i as u8, "partial share visible after crash");
            } else {
                assert_eq!(v, 20 + i as u8, "partial share visible after crash");
            }
        }
        f2.check_invariants();
    }

    #[test]
    fn committed_share_survives_crash() {
        let mut f = tiny();
        let cfg = f.config().clone();
        for i in 0..4 {
            f.write(Lpn(i), &pagev(10 + i as u8, &f)).unwrap();
        }
        for i in 0..4u64 {
            f.write(Lpn(100 + i), &pagev(20 + i as u8, &f)).unwrap();
        }
        f.share(&SharePair::range(Lpn(0), Lpn(100), 4)).unwrap();
        // Crash on the next data write, *after* the share completed.
        f.fault_handle().arm_after_programs(1, nand_sim::FaultMode::AfterProgram);
        let _ = f.write(Lpn(200), &pagev(1, &f));
        let mut f2 = Ftl::open(cfg, f.into_nand()).unwrap();
        for i in 0..4u64 {
            assert_eq!(read_byte(&mut f2, Lpn(i)), 20 + i as u8);
        }
        f2.check_invariants();
    }

    #[test]
    fn checkpoint_cycles_do_not_lose_data() {
        // Tiny log ring forces frequent checkpoints.
        let mut cfg = FtlConfig::for_capacity_with(256 << 10, 0.5, 4096, 16, NandTiming::zero());
        cfg.log_blocks = 2;
        let mut f = Ftl::new(cfg.clone());
        let logical = f.capacity_pages();
        let rounds = 30u64;
        for round in 0..rounds {
            for i in 0..logical {
                f.write(Lpn(i), &pagev(((i + round) % 251) as u8, &f)).unwrap();
            }
            f.flush().unwrap();
        }
        assert!(f.stats().checkpoints > 1, "expected periodic checkpoints");
        let mut f2 = Ftl::open(cfg, f.into_nand()).unwrap();
        for i in 0..logical {
            assert_eq!(read_byte(&mut f2, Lpn(i)), ((i + rounds - 1) % 251) as u8);
        }
    }

    #[test]
    fn stats_track_host_and_nand_sides() {
        let mut f = tiny();
        f.write(Lpn(0), &pagev(1, &f)).unwrap();
        f.flush().unwrap();
        let s = f.stats();
        assert_eq!(s.host_writes, 1);
        assert_eq!(s.flushes, 1);
        assert!(s.nand.page_programs >= 2); // data page + delta page
        assert!(s.meta_page_writes >= 1);
    }

    #[test]
    fn out_of_range_lpn_rejected_everywhere() {
        let mut f = tiny();
        let cap = f.capacity_pages();
        let buf = pagev(0, &f);
        let mut rbuf = buf.clone();
        assert!(matches!(f.write(Lpn(cap), &buf), Err(FtlError::LpnOutOfRange { .. })));
        assert!(matches!(f.read(Lpn(cap), &mut rbuf), Err(FtlError::LpnOutOfRange { .. })));
        assert!(matches!(f.trim(Lpn(cap), 1), Err(FtlError::LpnOutOfRange { .. })));
        assert!(matches!(
            f.share(&[SharePair::new(Lpn(cap), Lpn(0))]),
            Err(FtlError::LpnOutOfRange { .. })
        ));
    }

    #[test]
    fn write_atomic_batch_round_trips() {
        let mut f = tiny();
        let imgs: Vec<Vec<u8>> = (0..8u8).map(|i| pagev(0x30 + i, &f)).collect();
        let batch: Vec<(Lpn, &[u8])> =
            imgs.iter().enumerate().map(|(i, v)| (Lpn(i as u64), v.as_slice())).collect();
        f.write_atomic(&batch).unwrap();
        for i in 0..8u64 {
            assert_eq!(read_byte(&mut f, Lpn(i)), 0x30 + i as u8);
        }
        assert_eq!(f.stats().host_writes, 8);
        f.check_invariants();
    }

    #[test]
    fn write_atomic_is_all_or_nothing_across_crash() {
        // Sweep crash points across the batch's data programs and its
        // commit (delta) page: recovery must show all-old or all-new.
        for crash_at in 1..=10u64 {
            let mut f = tiny();
            let cfg = f.config().clone();
            let old: Vec<Vec<u8>> = (0..8u8).map(|i| pagev(0x10 + i, &f)).collect();
            let batch: Vec<(Lpn, &[u8])> =
                old.iter().enumerate().map(|(i, v)| (Lpn(i as u64), v.as_slice())).collect();
            f.write_atomic(&batch).unwrap();
            f.flush().unwrap();

            let new: Vec<Vec<u8>> = (0..8u8).map(|i| pagev(0x50 + i, &f)).collect();
            let batch: Vec<(Lpn, &[u8])> =
                new.iter().enumerate().map(|(i, v)| (Lpn(i as u64), v.as_slice())).collect();
            f.fault_handle().arm_after_programs(crash_at, nand_sim::FaultMode::TornHalf);
            let crashed = f.write_atomic(&batch).is_err();
            f.fault_handle().disarm();
            let mut f2 = Ftl::open(cfg, f.into_nand()).unwrap();
            let first = read_byte(&mut f2, Lpn(0));
            let base = if first == 0x10 { 0x10 } else { 0x50 };
            for i in 0..8u64 {
                assert_eq!(
                    read_byte(&mut f2, Lpn(i)),
                    base + i as u8,
                    "crash {crash_at} (crashed={crashed}): partial atomic write visible"
                );
            }
            f2.check_invariants();
        }
    }

    #[test]
    fn write_atomic_validates_batches() {
        let mut f = tiny();
        let img = pagev(1, &f);
        assert_eq!(
            f.write_atomic(&[(Lpn(0), img.as_slice()), (Lpn(0), img.as_slice())]),
            Err(FtlError::InvalidBatch("duplicate LPN in atomic write"))
        );
        let too_big: Vec<(Lpn, &[u8])> =
            (0..f.write_atomic_limit() as u64 + 1).map(|i| (Lpn(i), img.as_slice())).collect();
        assert!(matches!(f.write_atomic(&too_big), Err(FtlError::BatchTooLarge { .. })));
        assert_eq!(f.stats().host_writes, 0, "failed batches must not write");
    }

    #[test]
    fn wear_stats_empty_pool_is_all_zero() {
        // A zero-block pool must not report min == u32::MAX / mean == NaN.
        let w = WearStats::from_counts(std::iter::empty::<u32>());
        assert_eq!(w.min_erases, 0);
        assert_eq!(w.max_erases, 0);
        assert_eq!(w.mean_erases, 0.0);
        assert!(!w.mean_erases.is_nan());
    }

    #[test]
    fn wear_stats_from_counts_summarizes() {
        let w = WearStats::from_counts([3u32, 1, 2]);
        assert_eq!(w.min_erases, 1);
        assert_eq!(w.max_erases, 3);
        assert!((w.mean_erases - 2.0).abs() < 1e-12);
    }

    #[test]
    fn open_reports_recovery_cost_in_stats() {
        let mut f = tiny();
        for i in 0..40u64 {
            f.write(Lpn(i), &pagev(i as u8, &f)).unwrap();
        }
        f.flush().unwrap();
        let cfg = f.config().clone();
        let rec = Ftl::open(cfg.clone(), f.into_nand()).unwrap();
        let s = rec.stats();
        assert_eq!(s.recoveries, 1);
        assert!(s.recovery_page_reads > 0, "recovery must scan the image");
        // Recovery programs exactly the fresh closing checkpoint: header +
        // table pages + commit page.
        let table_pages = (cfg.logical_pages * 4).div_ceil(cfg.geometry.page_size as u64);
        assert_eq!(s.recovery_page_writes, table_pages + 2);
        // A freshly formatted device, by contrast, has never recovered.
        let fresh = tiny();
        assert_eq!(fresh.stats().recoveries, 0);
        assert_eq!(fresh.stats().recovery_page_writes, 0);
    }

    #[test]
    fn wear_stats_track_erases_and_stay_balanced() {
        let mut f = tiny();
        let logical = f.capacity_pages();
        let w0 = f.wear_stats();
        assert_eq!(w0.max_erases, 0);
        for round in 0..10u64 {
            for i in 0..logical {
                f.write(Lpn(i), &pagev(((i + round) % 251) as u8, &f)).unwrap();
            }
        }
        let w = f.wear_stats();
        assert!(w.max_erases > 0, "churn must cause erases");
        assert!(w.mean_erases > 0.5);
        // Min-erase-count free-block selection keeps wear within a band.
        assert!(
            w.max_erases - w.min_erases <= w.max_erases.max(4),
            "wear spread too wide: {w:?}"
        );
    }

    #[test]
    fn share_timing_is_cheaper_than_write() {
        // With real latencies, sharing N pages must beat writing N pages.
        let cfg = FtlConfig::for_capacity_with(2 << 20, 0.5, 4096, 16, NandTiming::default());
        let mut f = Ftl::new(cfg);
        for i in 0..64u64 {
            f.write(Lpn(i), &pagev(1, &f)).unwrap();
        }
        for i in 0..64u64 {
            f.write(Lpn(100 + i), &pagev(2, &f)).unwrap();
        }
        let t0 = f.clock().now_ns();
        f.share(&SharePair::range(Lpn(0), Lpn(100), 64)).unwrap();
        let share_cost = f.clock().now_ns() - t0;

        let t1 = f.clock().now_ns();
        for i in 0..64u64 {
            f.write(Lpn(200 + i), &pagev(3, &f)).unwrap();
        }
        let write_cost = f.clock().now_ns() - t1;
        assert!(
            share_cost * 10 < write_cost,
            "share ({share_cost} ns) should be >10x cheaper than writes ({write_cost} ns)"
        );
    }

    fn tiny_channels(channels: u32) -> Ftl {
        let cfg = FtlConfig::for_capacity_with(2 << 20, 0.5, 4096, 16, NandTiming::default())
            .with_parallelism(channels, 1);
        Ftl::new(cfg)
    }

    #[test]
    fn write_batch_round_trips_and_matches_serial_stats() {
        let mut f = tiny_channels(4);
        let ps = f.page_size();
        let pages: Vec<Vec<u8>> = (0..32u8).map(|i| vec![i; ps]).collect();
        let batch: Vec<(Lpn, &[u8])> =
            pages.iter().enumerate().map(|(i, p)| (Lpn(i as u64), p.as_slice())).collect();
        f.write_batch(&batch).unwrap();
        assert_eq!(f.stats().host_writes, 32);
        let mut buf = vec![0u8; ps];
        for i in 0..32u64 {
            f.read(Lpn(i), &mut buf).unwrap();
            assert!(buf.iter().all(|&b| b == i as u8), "lpn {i} diverged");
        }
        f.check_invariants();
    }

    #[test]
    fn read_batch_mixes_mapped_and_unmapped() {
        let mut f = tiny_channels(2);
        let ps = f.page_size();
        f.write(Lpn(1), &pagev(7, &f)).unwrap();
        f.write(Lpn(3), &pagev(9, &f)).unwrap();
        let mut bufs = vec![vec![0xAAu8; ps]; 4];
        {
            let mut reqs: Vec<(Lpn, &mut [u8])> = bufs
                .iter_mut()
                .enumerate()
                .map(|(i, b)| (Lpn(i as u64), b.as_mut_slice()))
                .collect();
            f.read_batch(&mut reqs).unwrap();
        }
        assert!(bufs[0].iter().all(|&b| b == 0), "unmapped reads zero");
        assert!(bufs[1].iter().all(|&b| b == 7));
        assert!(bufs[2].iter().all(|&b| b == 0));
        assert!(bufs[3].iter().all(|&b| b == 9));
        assert_eq!(f.stats().host_reads, 4);
    }

    #[test]
    fn write_batch_scales_with_channels() {
        // The same 64-page batch must finish earlier on 8 channels than
        // on 1 — the tentpole's end-to-end claim at device level.
        let mut times = Vec::new();
        for ch in [1u32, 8] {
            let mut f = tiny_channels(ch);
            let ps = f.page_size();
            let pages: Vec<Vec<u8>> = (0..64u8).map(|i| vec![i; ps]).collect();
            let batch: Vec<(Lpn, &[u8])> =
                pages.iter().enumerate().map(|(i, p)| (Lpn(i as u64), p.as_slice())).collect();
            let t0 = f.clock().now_ns();
            f.write_batch(&batch).unwrap();
            times.push(f.clock().now_ns() - t0);
        }
        assert!(
            times[1] * 2 < times[0],
            "8-channel batch ({} ns) should be >2x faster than 1-channel ({} ns)",
            times[1],
            times[0]
        );
    }

    #[test]
    fn one_channel_write_batch_matches_serial_writes_in_time() {
        // On a single channel the batched path must cost exactly what the
        // serial path costs — batching changes dispatch, not physics.
        let mut serial = tiny_channels(1);
        let ps = serial.page_size();
        let pages: Vec<Vec<u8>> = (0..24u8).map(|i| vec![i; ps]).collect();
        let t0 = serial.clock().now_ns();
        for (i, p) in pages.iter().enumerate() {
            serial.write(Lpn(i as u64), p).unwrap();
        }
        let serial_ns = serial.clock().now_ns() - t0;

        let mut batched = tiny_channels(1);
        let batch: Vec<(Lpn, &[u8])> =
            pages.iter().enumerate().map(|(i, p)| (Lpn(i as u64), p.as_slice())).collect();
        let t1 = batched.clock().now_ns();
        batched.write_batch(&batch).unwrap();
        let batched_ns = batched.clock().now_ns() - t1;
        assert_eq!(serial_ns, batched_ns);
    }

    #[test]
    fn share_batch_spans_multiple_log_pages_as_one_command() {
        let cfg = FtlConfig::for_capacity_with(4 << 20, 0.5, 4096, 16, NandTiming::zero());
        let mut f = Ftl::new(cfg);
        let limit = f.share_batch_limit();
        let n = limit as u64 + 10; // forces two log-page sub-batches
        for i in 0..n {
            f.write(Lpn(512 + i), &pagev((i % 251) as u8, &f)).unwrap();
        }
        let pairs: Vec<SharePair> =
            (0..n).map(|i| SharePair::new(Lpn(i), Lpn(512 + i))).collect();
        let cmds_before = f.stats().share_commands;
        f.share_batch(&pairs).unwrap();
        assert_eq!(f.stats().share_commands, cmds_before + 1, "one host command");
        assert_eq!(f.stats().shared_pages, n);
        let mut buf = vec![0u8; f.page_size()];
        for i in 0..n {
            f.read(Lpn(i), &mut buf).unwrap();
            assert!(buf.iter().all(|&b| b == (i % 251) as u8), "pair {i} diverged");
        }
        f.check_invariants();
    }

    #[test]
    fn share_validation_errors_are_unchanged_by_scratch_reuse() {
        // Reusing scratch buffers across commands must not leak state
        // from a failed validation into the next command.
        let mut f = tiny();
        f.write(Lpn(10), &pagev(1, &f)).unwrap();
        assert!(matches!(
            f.share(&[SharePair::new(Lpn(0), Lpn(99))]),
            Err(FtlError::SrcUnmapped(_))
        ));
        assert!(matches!(
            f.share(&[SharePair::new(Lpn(0), Lpn(10)), SharePair::new(Lpn(0), Lpn(10))]),
            Err(FtlError::InvalidBatch("duplicate destination LPN"))
        ));
        // A valid command right after the failures still works.
        f.share(&[SharePair::new(Lpn(0), Lpn(10))]).unwrap();
        let mut buf = vec![0u8; f.page_size()];
        f.read(Lpn(0), &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 1));
        f.check_invariants();
    }

    /// Drive a mixed, error-free workload through `f` exercising every
    /// host op class plus GC/log/checkpoint traffic.
    fn mixed_workload(f: &mut Ftl) {
        let ps = f.page_size();
        let logical = f.capacity_pages();
        for round in 0..6u64 {
            for i in 0..logical / 2 {
                f.write(Lpn(i), &vec![((i + round) % 251) as u8; ps]).unwrap();
            }
        }
        let pages: Vec<Vec<u8>> = (0..16u8).map(|i| vec![i; ps]).collect();
        let batch: Vec<(Lpn, &[u8])> =
            pages.iter().enumerate().map(|(i, p)| (Lpn(i as u64), p.as_slice())).collect();
        f.write_batch(&batch).unwrap();
        f.write_atomic(&batch[..8]).unwrap();
        f.share(&[SharePair::new(Lpn(200), Lpn(0))]).unwrap();
        f.share_batch(&SharePair::range(Lpn(210), Lpn(1), 4)).unwrap();
        let mut buf = vec![0u8; ps];
        f.read(Lpn(0), &mut buf).unwrap();
        let mut bufs = vec![vec![0u8; ps]; 4];
        let mut reqs: Vec<(Lpn, &mut [u8])> =
            bufs.iter_mut().enumerate().map(|(i, b)| (Lpn(i as u64), b.as_mut_slice())).collect();
        f.read_batch(&mut reqs).unwrap();
        f.trim(Lpn(220), 3).unwrap();
        f.flush().unwrap();
    }

    #[test]
    fn telemetry_counters_match_device_stats() {
        use share_telemetry::OpClass as Op;
        let mut f = tiny();
        mixed_workload(&mut f);
        let s = f.stats();
        let t = f.telemetry().snapshot();
        assert!(s.gc_events > 0, "workload must trigger GC");
        assert_eq!(s.host_reads, t.pages(Op::Read) + t.pages(Op::ReadBatch));
        assert_eq!(
            s.host_writes,
            t.pages(Op::Write) + t.pages(Op::WriteBatch) + t.pages(Op::WriteAtomic)
        );
        assert_eq!(s.flushes, t.ops_count(Op::Flush));
        assert_eq!(s.trims, t.pages(Op::Trim));
        assert_eq!(s.share_commands, t.ops_count(Op::Share) + t.ops_count(Op::ShareBatch));
        assert_eq!(s.shared_pages, t.pages(Op::Share) + t.pages(Op::ShareBatch));
        assert_eq!(s.gc_events, t.ops_count(Op::Gc));
        assert_eq!(s.copyback_pages, t.pages(Op::Gc));
        assert_eq!(s.checkpoints, t.ops_count(Op::Checkpoint));
        assert_eq!(s.meta_page_writes, t.pages(Op::LogFlush) + t.pages(Op::Checkpoint));
    }

    #[test]
    fn full_telemetry_leaves_simulated_results_bit_identical() {
        // Same workload, counters-only vs. everything on: the simulated
        // clock and every DeviceStats counter must match exactly —
        // telemetry reads the clock, never advances it.
        let cfg = FtlConfig::for_capacity_with(1 << 20, 0.5, 4096, 16, NandTiming::default());
        let mut plain = Ftl::new(cfg.clone());
        let mut full =
            Ftl::new(cfg.with_telemetry(share_telemetry::TelemetryConfig::full()));
        mixed_workload(&mut plain);
        mixed_workload(&mut full);
        assert_eq!(plain.clock().now_ns(), full.clock().now_ns());
        assert_eq!(plain.stats(), full.stats());
        // And the full device actually collected the optional data.
        let snap = full.telemetry().snapshot();
        assert!(!snap.op(share_telemetry::OpClass::Write).hist.is_empty());
        assert!(!snap.events.is_empty());
        assert!(plain.telemetry().snapshot().events.is_empty());
    }

    #[test]
    fn tracing_leaves_simulated_results_bit_identical() {
        // The tracer only *reads* clock values around work that happens
        // anyway, so a traced run must be indistinguishable from an
        // untraced one in simulated time and every DeviceStats counter.
        let cfg = FtlConfig::for_capacity_with(1 << 20, 0.5, 4096, 16, NandTiming::default());
        let mut plain = Ftl::new(cfg.clone());
        let mut traced =
            Ftl::new(cfg.with_telemetry(share_telemetry::TelemetryConfig::tracing()));
        mixed_workload(&mut plain);
        mixed_workload(&mut traced);
        assert_eq!(plain.clock().now_ns(), traced.clock().now_ns());
        assert_eq!(plain.stats(), traced.stats());
        assert!(!plain.tracer().is_enabled());
        assert_eq!(plain.tracer().span_count(), 0);
        assert!(traced.tracer().span_count() > 0, "traced run must collect spans");
    }

    #[test]
    fn trace_spans_nest_ftl_over_nand_and_export() {
        let cfg = FtlConfig::for_capacity_with(1 << 20, 0.5, 4096, 16, NandTiming::default())
            .with_telemetry(share_telemetry::TelemetryConfig::tracing());
        let mut f = Ftl::new(cfg);
        let wal = f.stream_intern("wal");
        f.set_stream(wal);
        f.write(Lpn(3), &pagev(7, &f)).unwrap();
        let spans = f.tracer().spans();
        let write = spans
            .iter()
            .find(|s| s.name == "write" && s.layer == Layer::Ftl)
            .expect("ftl write span");
        assert_eq!(write.track, Track::Stream(wal));
        let program = spans
            .iter()
            .find(|s| s.name == "program" && s.layer == Layer::Nand && s.parent == write.id)
            .expect("NAND program leaf hangs off the FTL command span");
        assert!(write.start_ns <= program.start_ns && program.end_ns <= write.end_ns);
        // The export names the interned stream's track and re-parses.
        let doc = f.tracer().chrome_json().expect("enabled tracer exports");
        let text = doc.render();
        assert!(text.contains("stream:wal"));
        share_telemetry::json::parse(&text).expect("chrome trace re-parses");
    }

    #[test]
    fn wa_ledger_sums_exactly_to_background_programs() {
        let mut f = tiny();
        let wal = f.stream_intern("wal");
        f.set_stream(wal);
        mixed_workload(&mut f);
        let s = f.stats();
        assert!(s.gc_events > 0, "workload must trigger GC");
        let snap = f.telemetry_snapshot().unwrap();
        let bg_gc: u64 = snap.wa.iter().map(|w| w.bg_gc).sum();
        let bg_meta: u64 = snap.wa.iter().map(|w| w.bg_log + w.bg_ckpt).sum();
        assert_eq!(bg_gc, s.copyback_pages, "GC blame must sum to copyback pages");
        assert_eq!(bg_meta, s.meta_page_writes, "log+ckpt blame must sum to meta pages");
        assert_eq!(f.telemetry().blamed_total(), s.copyback_pages + s.meta_page_writes);
        // The busy workload ran under the `wal` stream, so the ledger must
        // pin background work on it, not just the ftl fallback.
        let wal_wa = snap.wa.iter().find(|w| w.label == "wal").unwrap();
        assert!(wal_wa.bg_total() > 0, "foreground stream must carry blame");
        assert!(wal_wa.wa_factor().unwrap() > 1.0);
    }

    #[test]
    fn log_flush_inside_host_command_inherits_its_stream() {
        // Satellite regression: a delta-log flush triggered mid-command
        // (RAM buffer filled during a large write_batch) must surface in
        // the command ring under the host command's stream, while GC's own
        // flushes stay on the reserved ftl stream.
        let cfg = FtlConfig::for_capacity_with(4 << 20, 0.5, 4096, 16, NandTiming::zero())
            .with_telemetry(share_telemetry::TelemetryConfig::full());
        let mut f = Ftl::new(cfg);
        let dwb = f.stream_intern("doublewrite");
        f.set_stream(dwb);
        let ps = f.page_size();
        let n = f.config().deltas_per_page() * 2 + 8; // forces buffered flushes
        let pages: Vec<Vec<u8>> = (0..n).map(|i| vec![(i % 251) as u8; ps]).collect();
        let batch: Vec<(Lpn, &[u8])> =
            pages.iter().enumerate().map(|(i, p)| (Lpn(i as u64), p.as_slice())).collect();
        f.write_batch(&batch).unwrap();
        let events = f.telemetry().snapshot().events;
        let flushes: Vec<_> =
            events.iter().filter(|e| e.op == OpClass::LogFlush).collect();
        assert!(!flushes.is_empty(), "batch must trigger a mid-command log flush");
        assert!(
            flushes.iter().all(|e| e.stream == dwb),
            "mid-command log flushes must inherit the doublewrite stream"
        );
        // Now push the device into GC under the same stream: GC-triggered
        // flushes must NOT inherit it.
        let logical = f.capacity_pages();
        for round in 0..6u64 {
            for i in 0..logical / 2 {
                f.write(Lpn(i), &vec![((i + round) % 251) as u8; ps]).unwrap();
            }
        }
        assert!(f.stats().gc_events > 0);
        let events = f.telemetry().snapshot().events;
        let gc_flush = events
            .iter()
            .filter(|e| e.op == OpClass::LogFlush)
            .any(|e| e.stream == STREAM_FTL);
        assert!(gc_flush, "GC's log flushes stay on the ftl stream");
    }

    #[test]
    fn unit_utilization_snapshot_tracks_channels() {
        let cfg = FtlConfig::for_capacity_with(4 << 20, 0.5, 4096, 16, NandTiming::default())
            .with_parallelism(4, 1);
        let mut f = Ftl::new(cfg);
        let ps = f.page_size();
        let pages: Vec<Vec<u8>> = (0..64u8).map(|i| vec![i; ps]).collect();
        let batch: Vec<(Lpn, &[u8])> =
            pages.iter().enumerate().map(|(i, p)| (Lpn(i as u64), p.as_slice())).collect();
        f.write_batch(&batch).unwrap();
        let snap = f.telemetry_snapshot().unwrap();
        assert_eq!(snap.units.len(), 4, "one utilization row per channel-way");
        assert!(snap.now_ns > 0);
        for u in &snap.units {
            assert!(u.busy_ns > 0, "striped batch keeps every unit busy");
            assert!(u.busy_ns <= snap.now_ns, "busy time cannot exceed wall time");
        }
        assert_eq!(snap.units.iter().map(|u| u.channel).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn recovery_is_recorded_as_an_op() {
        let mut f = tiny();
        for i in 0..30u64 {
            f.write(Lpn(i), &pagev(i as u8, &f)).unwrap();
        }
        f.flush().unwrap();
        let cfg = f.config().clone();
        let rec = Ftl::open(cfg, f.into_nand()).unwrap();
        let t = rec.telemetry().snapshot();
        use share_telemetry::OpClass as Op;
        assert_eq!(t.ops_count(Op::Recovery), 1);
        let s = rec.stats();
        assert_eq!(t.pages(Op::Recovery), s.recovery_page_reads + s.recovery_page_writes);
        // The closing checkpoint is visible both as a Checkpoint op and in
        // DeviceStats.
        assert_eq!(t.ops_count(Op::Checkpoint), s.checkpoints);
        // A fresh format records its birth checkpoint but no recovery.
        let fresh = tiny();
        let tf = fresh.telemetry().snapshot();
        assert_eq!(tf.ops_count(Op::Recovery), 0);
        assert_eq!(tf.ops_count(Op::Checkpoint), 1);
    }

    #[test]
    fn streams_attribute_host_and_ftl_traffic() {
        let mut f = tiny();
        let wal = f.stream_intern("wal");
        f.set_stream(wal);
        for i in 0..8u64 {
            f.write(Lpn(i), &pagev(1, &f)).unwrap();
        }
        f.set_stream(0);
        for i in 8..10u64 {
            f.write(Lpn(i), &pagev(2, &f)).unwrap();
        }
        let t = f.telemetry().snapshot();
        let by_label = |l: &str| t.streams.iter().find(|s| s.label == l).cloned().unwrap();
        assert_eq!(by_label("wal").writes.pages, 8);
        assert_eq!(by_label("host").writes.pages, 2);
        // The birth checkpoint lands on the reserved ftl stream.
        assert!(by_label("ftl").other.pages > 0);
    }

    #[test]
    fn gc_survives_batched_writes_under_pressure() {
        // Overwrite far more than the pool holds, in batches, across
        // channels: GC must relocate correctly and never eat a page that
        // a batch just programmed.
        let mut f = tiny_channels(4);
        let ps = f.page_size();
        let span = 96u64; // < logical capacity, > data pool working set
        for round in 0..12u8 {
            let pages: Vec<Vec<u8>> = (0..span).map(|i| vec![round ^ (i as u8); ps]).collect();
            let batch: Vec<(Lpn, &[u8])> =
                pages.iter().enumerate().map(|(i, p)| (Lpn(i as u64), p.as_slice())).collect();
            f.write_batch(&batch).unwrap();
        }
        let mut buf = vec![0u8; ps];
        for i in 0..span {
            f.read(Lpn(i), &mut buf).unwrap();
            assert!(buf.iter().all(|&b| b == 11 ^ (i as u8)), "lpn {i} diverged after GC");
        }
        assert!(f.stats().gc_events > 0, "pressure must actually trigger GC");
        f.check_invariants();
    }

    // ----- submission/completion queue ------------------------------------

    #[test]
    fn queued_write_then_read_round_trips() {
        let mut f = tiny();
        let page = pagev(0x5A, &f);
        let wt = f.submit(QueuedCmd::Write { lpn: Lpn(3), data: page.clone() }).unwrap();
        let done = f.drain();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].tag, wt);
        assert!(done[0].is_ok());
        let rt = f.submit(QueuedCmd::Read { lpn: Lpn(3) }).unwrap();
        let done = f.drain();
        assert_eq!(done[0].tag, rt);
        let data = done[0].result.clone().unwrap().into_page().unwrap();
        assert_eq!(data, page);
        f.check_invariants();
    }

    #[test]
    fn queued_state_is_eager_but_completion_is_deferred() {
        let mut f = tiny_channels(2);
        let page = pagev(0x42, &f);
        let before = f.nand().now_ns();
        f.submit(QueuedCmd::Write { lpn: Lpn(9), data: page.clone() }).unwrap();
        // Submission never moves the clock...
        assert_eq!(f.nand().now_ns(), before);
        assert_eq!(f.inflight(), 1);
        // ...and nothing is due yet under nonzero NAND timing.
        assert!(f.poll().is_empty());
        // But the state transition already happened: a sync read sees it.
        assert_eq!(read_byte(&mut f, Lpn(9)), 0x42);
        let done = f.drain();
        assert_eq!(done.len(), 1);
        assert_eq!(f.inflight(), 0);
    }

    #[test]
    fn queue_full_applies_backpressure() {
        let cfg = FtlConfig::for_capacity_with(1 << 20, 0.5, 4096, 16, NandTiming::zero())
            .with_queue_depth(2);
        let mut f = Ftl::new(cfg);
        let page = pagev(1, &f);
        f.submit(QueuedCmd::Write { lpn: Lpn(0), data: page.clone() }).unwrap();
        f.submit(QueuedCmd::Write { lpn: Lpn(1), data: page.clone() }).unwrap();
        assert_eq!(
            f.submit(QueuedCmd::Write { lpn: Lpn(2), data: page.clone() }),
            Err(FtlError::QueueFull { depth: 2 })
        );
        // Reaping frees a slot (zero timing: everything is due at once).
        assert!(!f.reap().is_empty());
        f.submit(QueuedCmd::Write { lpn: Lpn(2), data: page }).unwrap();
        f.drain();
    }

    #[test]
    fn qd1_submit_reap_is_bit_identical_to_sync() {
        // One command in flight at a time must cost exactly what the
        // blocking path costs — on any channel count.
        let run_sync = |mut f: Ftl| -> (u64, Vec<u8>) {
            let ps = f.page_size();
            for i in 0..24u64 {
                f.write(Lpn(i), &vec![(i % 251) as u8; ps]).unwrap();
            }
            f.share(&[SharePair::new(Lpn(30), Lpn(0))]).unwrap();
            f.trim(Lpn(1), 2).unwrap();
            f.flush().unwrap();
            let mut buf = vec![0u8; ps];
            f.read(Lpn(5), &mut buf).unwrap();
            (f.nand().now_ns(), buf)
        };
        let run_queued = |mut f: Ftl| -> (u64, Vec<u8>) {
            let ps = f.page_size();
            let reap1 = |f: &mut Ftl| {
                let done = f.reap();
                assert_eq!(done.len(), 1);
                done.into_iter().next().unwrap()
            };
            for i in 0..24u64 {
                f.submit(QueuedCmd::Write { lpn: Lpn(i), data: vec![(i % 251) as u8; ps] })
                    .unwrap();
                assert!(reap1(&mut f).is_ok());
            }
            f.submit(QueuedCmd::Share { pairs: vec![SharePair::new(Lpn(30), Lpn(0))] })
                .unwrap();
            assert!(reap1(&mut f).is_ok());
            f.submit(QueuedCmd::Trim { lpn: Lpn(1), len: 2 }).unwrap();
            assert!(reap1(&mut f).is_ok());
            f.submit(QueuedCmd::Flush).unwrap();
            assert!(reap1(&mut f).is_ok());
            f.submit(QueuedCmd::Read { lpn: Lpn(5) }).unwrap();
            let c = reap1(&mut f);
            (f.nand().now_ns(), c.result.unwrap().into_page().unwrap())
        };
        for channels in [1u32, 4] {
            let (t_sync, d_sync) = run_sync(tiny_channels(channels));
            let (t_q, d_q) = run_queued(tiny_channels(channels));
            assert_eq!(t_sync, t_q, "qd=1 timing diverged at {channels} channels");
            assert_eq!(d_sync, d_q);
        }
    }

    #[test]
    fn queued_commands_overlap_across_channels() {
        // Four single-page writes, submitted before any completes: the
        // block pool stripes them over four channels, so the whole burst
        // must finish in far less than four serial write times.
        let serial = {
            let mut f = tiny_channels(4);
            let t0 = f.nand().now_ns();
            for i in 0..4u64 {
                f.write(Lpn(i), &pagev(i as u8, &f)).unwrap();
            }
            f.nand().now_ns() - t0
        };
        let overlapped = {
            let mut f = tiny_channels(4);
            let t0 = f.nand().now_ns();
            for i in 0..4u64 {
                f.submit(QueuedCmd::Write { lpn: Lpn(i), data: pagev(i as u8, &f) }).unwrap();
            }
            let done = f.drain();
            assert_eq!(done.len(), 4);
            assert!(done.iter().all(Completion::is_ok));
            f.nand().now_ns() - t0
        };
        assert!(
            overlapped * 2 < serial,
            "4 queued writes ({overlapped} ns) should overlap well under half of serial ({serial} ns)"
        );
    }

    #[test]
    fn poll_reap_drain_orderings() {
        let mut f = tiny_channels(4);
        let tags: Vec<CmdTag> = (0..3u64)
            .map(|i| f.submit(QueuedCmd::Write { lpn: Lpn(i), data: pagev(i as u8, &f) }).unwrap())
            .collect();
        assert_eq!(f.inflight(), 3);
        // reap advances only to the earliest completion.
        let first = f.reap();
        assert!(!first.is_empty());
        assert!(f.inflight() < 3);
        let rest = f.drain();
        assert_eq!(first.len() + rest.len(), 3);
        // Completions come back ordered by completion time.
        let all: Vec<&Completion> = first.iter().chain(rest.iter()).collect();
        for w in all.windows(2) {
            assert!(w[0].complete_ns <= w[1].complete_ns);
        }
        let mut seen: Vec<CmdTag> = all.iter().map(|c| c.tag).collect();
        seen.sort();
        assert_eq!(seen, tags);
        // Queue telemetry gauges reflect the run.
        let snap = f.telemetry_snapshot().unwrap();
        assert_eq!(snap.queue.submitted, 3);
        assert_eq!(snap.queue.reaped, 3);
        assert_eq!(snap.queue.inflight, 0);
        assert_eq!(snap.queue.max_inflight, 3);
        assert_eq!(snap.queue.depth, 32);
    }

    #[test]
    fn queued_errors_surface_in_completions() {
        let mut f = tiny();
        let cap = f.capacity_pages();
        f.submit(QueuedCmd::Read { lpn: Lpn(cap + 1) }).unwrap();
        let done = f.drain();
        assert_eq!(done.len(), 1);
        assert!(matches!(done[0].result, Err(FtlError::LpnOutOfRange { .. })));
    }

    #[test]
    fn deep_queue_under_gc_pressure_never_stalls() {
        // Satellite regression: overwrite several times the pool's working
        // set with a deep queue. Blocks pinned by unreaped commands are
        // GC-ineligible; the raised watermarks must keep GC ahead anyway.
        let cfg = FtlConfig::for_capacity_with(1 << 20, 0.5, 4096, 16, NandTiming::zero())
            .with_parallelism(4, 1)
            .with_queue_depth(16);
        let mut f = Ftl::new(cfg);
        let ps = f.page_size();
        let span = 96u64;
        for round in 0..10u8 {
            for i in 0..span {
                let data = vec![round ^ (i as u8); ps];
                loop {
                    match f.submit(QueuedCmd::Write { lpn: Lpn(i), data: data.clone() }) {
                        Ok(_) => break,
                        Err(FtlError::QueueFull { .. }) => {
                            assert!(!f.reap().is_empty());
                        }
                        Err(e) => panic!("queued write failed under pressure: {e}"),
                    }
                }
            }
        }
        for c in f.drain() {
            assert!(c.is_ok(), "completion failed: {:?}", c.result);
        }
        assert!(f.stats().gc_events > 0, "pressure must actually trigger GC");
        let mut buf = vec![0u8; ps];
        for i in 0..span {
            f.read(Lpn(i), &mut buf).unwrap();
            assert!(buf.iter().all(|&b| b == 9 ^ (i as u8)), "lpn {i} diverged");
        }
        f.check_invariants();
    }

    #[test]
    fn queued_batches_round_trip() {
        let mut f = tiny_channels(4);
        let ps = f.page_size();
        let pages: Vec<(Lpn, Vec<u8>)> =
            (0..16u64).map(|i| (Lpn(i), vec![(i % 251) as u8; ps])).collect();
        f.submit(QueuedCmd::WriteBatch { pages: pages.clone() }).unwrap();
        f.submit(QueuedCmd::WriteAtomic {
            pages: (16..20u64).map(|i| (Lpn(i), vec![(i % 251) as u8; ps])).collect(),
        })
        .unwrap();
        assert!(f.drain().iter().all(Completion::is_ok));
        let lpns: Vec<Lpn> = (0..20).map(Lpn).collect();
        f.submit(QueuedCmd::ReadBatch { lpns }).unwrap();
        let done = f.drain();
        let bufs = done[0].result.clone().unwrap().into_pages().unwrap();
        assert_eq!(bufs.len(), 20);
        for (i, b) in bufs.iter().enumerate() {
            assert!(b.iter().all(|&x| x == (i % 251) as u8), "lpn {i} diverged");
        }
        f.check_invariants();
    }

    // ----- device-level snapshots -----------------------------------------

    #[test]
    fn snapshot_create_consumes_no_nand_programs() {
        // The tentpole's headline property: freezing a range is O(mapped
        // pages) of RAM metadata — zero NAND page programs, zero reads.
        let mut f = tiny();
        for i in 0..32u64 {
            f.write(Lpn(i), &pagev((i % 251) as u8, &f)).unwrap();
        }
        f.flush().unwrap();
        let before = f.stats();
        let id = f.snapshot_create("base", Lpn(0), 32).unwrap();
        let spent = f.stats().delta_since(&before);
        assert_eq!(spent.nand.page_programs, 0, "snapshot create must not program NAND");
        assert_eq!(spent.nand.page_reads, 0, "snapshot create must not read NAND");
        assert_eq!(spent.snapshot_creates, 1);
        assert!(f.supports_snapshot());
        let list = f.snapshot_list().unwrap();
        assert_eq!(list.len(), 1);
        assert_eq!((list[0].id, list[0].mapped_pages), (id, 32));
        assert_eq!(f.snapshot_list().unwrap()[0].name, "base");
        f.check_invariants();
    }

    #[test]
    fn snapshot_read_is_point_in_time() {
        let mut f = tiny();
        for i in 0..8u64 {
            f.write(Lpn(i), &pagev(7, &f)).unwrap();
        }
        f.snapshot_create("pit", Lpn(0), 8).unwrap();
        // Overwrite and trim the live range after the freeze.
        for i in 0..4u64 {
            f.write(Lpn(i), &pagev(9, &f)).unwrap();
        }
        f.trim(Lpn(4), 4).unwrap();
        let mut buf = vec![0u8; f.page_size()];
        for off in 0..8u64 {
            f.snapshot_read("pit", off, &mut buf).unwrap();
            assert!(buf.iter().all(|&b| b == 7), "offset {off} must show frozen content");
        }
        // The live map sees the new world.
        assert_eq!(read_byte(&mut f, Lpn(0)), 9);
        assert_eq!(read_byte(&mut f, Lpn(4)), 0);
        // Reads beyond the frozen range and of unknown names fail cleanly.
        assert!(matches!(
            f.snapshot_read("pit", 8, &mut buf),
            Err(FtlError::InvalidBatch(_))
        ));
        assert_eq!(f.snapshot_read("nope", 0, &mut buf), Err(FtlError::SnapshotNotFound));
        assert_eq!(f.stats().snapshot_reads, 8);
        f.check_invariants();
    }

    #[test]
    fn clone_is_zero_copy_then_cow() {
        let mut f = tiny();
        for i in 0..16u64 {
            f.write(Lpn(i), &pagev((i + 1) as u8, &f)).unwrap();
        }
        f.snapshot_create("db", Lpn(0), 16).unwrap();
        let before = f.stats();
        let mapped = f.snapshot_clone("db", 0, Lpn(100), 16).unwrap();
        assert_eq!(mapped, 16);
        let spent = f.stats().delta_since(&before);
        // Zero-copy: only mapping-log pages were programmed, no data pages.
        assert_eq!(spent.nand.page_programs, spent.meta_page_writes);
        assert!(spent.meta_page_writes >= 1, "clone deltas must be durably logged");
        assert_eq!(spent.snapshot_clone_pages, 16);
        // Clone reads the frozen content.
        for i in 0..16u64 {
            assert_eq!(read_byte(&mut f, Lpn(100 + i)), (i + 1) as u8);
        }
        // CoW: writing the clone diverges it without touching origin or
        // snapshot.
        f.write(Lpn(100), &pagev(200, &f)).unwrap();
        assert_eq!(read_byte(&mut f, Lpn(100)), 200);
        assert_eq!(read_byte(&mut f, Lpn(0)), 1);
        let mut buf = vec![0u8; f.page_size()];
        f.snapshot_read("db", 0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 1));
        // And writing the origin leaves the clone alone.
        f.write(Lpn(1), &pagev(201, &f)).unwrap();
        assert_eq!(read_byte(&mut f, Lpn(101)), 2);
        f.check_invariants();
    }

    #[test]
    fn clone_window_and_holes() {
        let mut f = tiny();
        // Only even offsets mapped at freeze time.
        for i in (0..8u64).step_by(2) {
            f.write(Lpn(i), &pagev(5, &f)).unwrap();
        }
        f.snapshot_create("sparse", Lpn(0), 8).unwrap();
        // Pre-dirty the clone target so holes must actively unmap.
        for i in 0..4u64 {
            f.write(Lpn(50 + i), &pagev(99, &f)).unwrap();
        }
        // Window: offsets 2..6 (mapped at 2 and 4) onto 50..54.
        let mapped = f.snapshot_clone("sparse", 2, Lpn(50), 4).unwrap();
        assert_eq!(mapped, 2);
        assert_eq!(read_byte(&mut f, Lpn(50)), 5); // offset 2
        assert_eq!(read_byte(&mut f, Lpn(51)), 0); // hole (was 99)
        assert_eq!(read_byte(&mut f, Lpn(52)), 5); // offset 4
        assert_eq!(read_byte(&mut f, Lpn(53)), 0); // hole
        assert!(matches!(
            f.snapshot_clone("sparse", 6, Lpn(0), 4),
            Err(FtlError::InvalidBatch(_))
        ));
        f.check_invariants();
    }

    #[test]
    fn snapshot_pins_survive_gc_churn() {
        // Pinned pages must stay bit-stable across victim collection even
        // when nothing in the live map references them anymore. FIFO
        // victim selection guarantees the frozen blocks actually get
        // collected (greedy would keep preferring emptier churn blocks).
        let mut cfg = FtlConfig::for_capacity_with(1 << 20, 0.5, 4096, 16, NandTiming::zero());
        cfg.gc_policy = crate::config::GcPolicy::Fifo;
        let mut f = Ftl::new(cfg);
        let logical = f.capacity_pages();
        // Interleave the to-be-frozen pages with churn pages so the frozen
        // blocks keep reclaimable garbage (a fully-pinned block is never a
        // victim — erasing it reclaims nothing).
        for i in 0..32u64 {
            f.write(Lpn(i), &pagev((i % 251) as u8, &f)).unwrap();
            f.write(Lpn(32 + i), &pagev(0xEE, &f)).unwrap();
        }
        f.snapshot_create("pin", Lpn(0), 32).unwrap();
        // Kill the live references entirely, then churn hard enough to
        // collect every original block several times over.
        f.trim(Lpn(0), 32).unwrap();
        for round in 0..8u64 {
            for i in 32..logical / 2 {
                f.write(Lpn(i), &vec![((i + round) % 251) as u8; f.page_size()]).unwrap();
            }
        }
        let s = f.stats();
        assert!(s.gc_events > 0, "churn must trigger GC");
        assert!(
            s.snapshot_pinned_relocations > 0,
            "pinned-only pages must have been relocated at least once"
        );
        let mut buf = vec![0u8; f.page_size()];
        for off in 0..32u64 {
            f.snapshot_read("pin", off, &mut buf).unwrap();
            assert!(
                buf.iter().all(|&b| b == (off % 251) as u8),
                "offset {off} corrupted by GC"
            );
        }
        f.check_invariants();
    }

    #[test]
    fn snapshot_pins_survive_pipelined_gc_churn() {
        let cfg = FtlConfig::for_capacity_with(1 << 20, 0.5, 4096, 16, NandTiming::zero())
            .with_gc_budget(4, 2);
        let mut f = Ftl::new(cfg);
        let logical = f.capacity_pages();
        for i in 0..32u64 {
            f.write(Lpn(i), &pagev((i % 251) as u8, &f)).unwrap();
            f.write(Lpn(32 + i), &pagev(0xEE, &f)).unwrap();
        }
        f.snapshot_create("pin", Lpn(0), 32).unwrap();
        f.trim(Lpn(0), 32).unwrap();
        for round in 0..8u64 {
            for i in 32..logical / 2 {
                f.write(Lpn(i), &vec![((i + round) % 251) as u8; f.page_size()]).unwrap();
            }
        }
        assert!(f.stats().gc_events > 0, "churn must trigger GC");
        let mut buf = vec![0u8; f.page_size()];
        for off in 0..32u64 {
            f.snapshot_read("pin", off, &mut buf).unwrap();
            assert!(
                buf.iter().all(|&b| b == (off % 251) as u8),
                "offset {off} corrupted by pipelined GC"
            );
        }
        f.check_invariants();
    }

    #[test]
    fn snapshot_drop_releases_pins() {
        let mut f = tiny();
        for i in 0..16u64 {
            f.write(Lpn(i), &pagev(3, &f)).unwrap();
        }
        f.snapshot_create("tmp", Lpn(0), 16).unwrap();
        f.trim(Lpn(0), 16).unwrap();
        assert_eq!(f.snapshot_table().pinned_pages(), 16);
        f.snapshot_drop("tmp").unwrap();
        assert_eq!(f.snapshot_table().pinned_pages(), 0);
        assert_eq!(f.snapshot_drop("tmp"), Err(FtlError::SnapshotNotFound));
        let mut buf = vec![0u8; f.page_size()];
        assert_eq!(f.snapshot_read("tmp", 0, &mut buf), Err(FtlError::SnapshotNotFound));
        assert_eq!(f.stats().snapshot_drops, 1);
        // The freed space is genuinely reclaimable again.
        let logical = f.capacity_pages();
        for round in 0..6u64 {
            for i in 0..logical / 2 {
                f.write(Lpn(i), &vec![(round % 251) as u8; f.page_size()]).unwrap();
            }
        }
        f.check_invariants();
    }

    #[test]
    fn snapshots_survive_recovery() {
        // Checkpointed table + tagged-delta replay (relocations and
        // tombstones) must reconstruct the same frozen world after a
        // reopen.
        let cfg = FtlConfig::for_capacity_with(1 << 20, 0.5, 4096, 16, NandTiming::zero());
        let mut f = Ftl::new(cfg.clone());
        for i in 0..24u64 {
            f.write(Lpn(i), &pagev((i + 10) as u8, &f)).unwrap();
        }
        f.snapshot_create("keep", Lpn(0), 16).unwrap();
        f.snapshot_create("doomed", Lpn(16), 8).unwrap();
        // Persist both, then mutate the table only via the delta log:
        // drop one snapshot and churn so GC relocates pinned pages.
        f.snapshot_persist().unwrap();
        f.snapshot_drop("doomed").unwrap();
        f.trim(Lpn(0), 16).unwrap();
        let logical = f.capacity_pages();
        for round in 0..6u64 {
            for i in 24..logical / 2 {
                f.write(Lpn(i), &vec![((i + round) % 251) as u8; f.page_size()]).unwrap();
            }
        }
        f.flush().unwrap();
        let live_before = f.snapshot_table().count();
        let mut f2 = Ftl::open(cfg, f.into_nand()).unwrap();
        assert_eq!(f2.snapshot_table().count(), live_before);
        let list = f2.snapshot_list().unwrap();
        assert_eq!(list.len(), 1);
        assert_eq!(list[0].name, "keep");
        let mut buf = vec![0u8; f2.page_size()];
        for off in 0..16u64 {
            f2.snapshot_read("keep", off, &mut buf).unwrap();
            assert!(
                buf.iter().all(|&b| b == (off + 10) as u8),
                "offset {off} diverged across recovery"
            );
        }
        // Ids keep advancing monotonically after recovery.
        let id = f2.snapshot_create("after", Lpn(0), 4).unwrap();
        assert!(id >= 2, "recovered next_id must not reuse dropped ids");
        f2.check_invariants();
    }

    #[test]
    fn snapshot_clone_survives_crash_after_log_flush() {
        // A clone's deltas commit atomically in the log; a crash right
        // after the command returns must preserve the whole clone.
        let cfg = FtlConfig::for_capacity_with(1 << 20, 0.5, 4096, 16, NandTiming::zero());
        let mut f = Ftl::new(cfg.clone());
        for i in 0..8u64 {
            f.write(Lpn(i), &pagev(42, &f)).unwrap();
        }
        f.snapshot_create("src", Lpn(0), 8).unwrap();
        f.snapshot_persist().unwrap();
        f.snapshot_clone("src", 0, Lpn(200), 8).unwrap();
        // Crash: no flush/checkpoint after the clone.
        let mut f2 = Ftl::open(cfg, f.into_nand()).unwrap();
        for i in 0..8u64 {
            assert_eq!(read_byte(&mut f2, Lpn(200 + i)), 42, "clone page {i} lost");
        }
        f2.check_invariants();
    }

    #[test]
    fn unused_snapshot_path_is_bit_identical() {
        // Off-path guarantee: a device that never issues a snapshot
        // command keeps the empty-table fast paths — deterministic clock
        // and stats across identical runs, with every snapshot counter
        // still zero. (The recorded gc_pipeline goldens pin bit-identity
        // against the pre-snapshot implementation.)
        let cfg = FtlConfig::for_capacity_with(1 << 20, 0.5, 4096, 16, NandTiming::default());
        let mut a = Ftl::new(cfg.clone());
        let mut b = Ftl::new(cfg);
        mixed_workload(&mut a);
        mixed_workload(&mut b);
        assert_eq!(a.clock().now_ns(), b.clock().now_ns());
        assert_eq!(a.stats(), b.stats());
        let s = a.stats();
        assert_eq!(
            (s.snapshot_creates, s.snapshot_clones, s.snapshot_reads),
            (0, 0, 0),
            "mixed workload must not touch the snapshot path"
        );
        assert!(a.snapshot_table().is_empty());
    }

    #[test]
    fn snapshot_gauges_exported() {
        let mut f = tiny();
        for i in 0..8u64 {
            f.write(Lpn(i), &pagev(1, &f)).unwrap();
        }
        f.snapshot_create("g", Lpn(0), 8).unwrap();
        f.snapshot_clone("g", 0, Lpn(100), 8).unwrap();
        let mut buf = vec![0u8; f.page_size()];
        f.snapshot_read("g", 0, &mut buf).unwrap();
        let t = f.telemetry_snapshot().unwrap();
        assert_eq!(t.snapshots.live, 1);
        assert_eq!(t.snapshots.frozen_pages, 8);
        assert_eq!(t.snapshots.pinned_pages, 8);
        assert_eq!(t.snapshots.creates, 1);
        assert_eq!(t.snapshots.clones, 1);
        assert_eq!(t.snapshots.clone_pages, 8);
        assert_eq!(t.snapshots.reads, 1);
        let text = t.to_prometheus();
        assert!(text.contains("share_snapshots_live 1"));
        assert!(text.contains("share_snapshot_clone_pages_total 8"));
    }

    #[test]
    fn snapshot_wa_ledger_still_sums_exactly() {
        // The pinned invariant, under snapshot churn: every background
        // page program is blamed on exactly one stream, and the blamed
        // totals equal copyback_pages + meta_page_writes. FIFO selection
        // forces the pinned blocks through GC.
        let mut cfg = FtlConfig::for_capacity_with(1 << 20, 0.5, 4096, 16, NandTiming::zero());
        cfg.gc_policy = crate::config::GcPolicy::Fifo;
        let mut f = Ftl::new(cfg);
        let logical = f.capacity_pages();
        for i in 0..32u64 {
            f.write(Lpn(i), &pagev((i % 251) as u8, &f)).unwrap();
            f.write(Lpn(96 + i), &pagev(0xEE, &f)).unwrap();
        }
        f.snapshot_create("w", Lpn(0), 32).unwrap();
        f.snapshot_clone("w", 0, Lpn(64), 32).unwrap();
        f.trim(Lpn(0), 32).unwrap();
        // Half the clone dies too, leaving those frozen pages pinned-only.
        f.trim(Lpn(64), 16).unwrap();
        for round in 0..16u64 {
            for i in 96..logical / 2 {
                f.write(Lpn(i), &vec![((i + round) % 251) as u8; f.page_size()]).unwrap();
            }
        }
        f.snapshot_drop("w").unwrap();
        for round in 0..8u64 {
            for i in 96..logical / 2 {
                f.write(Lpn(i), &vec![((i + round) % 7) as u8; f.page_size()]).unwrap();
            }
        }
        f.flush().unwrap();
        let s = f.stats();
        assert!(s.gc_events > 0 && s.snapshot_pinned_relocations > 0);
        let t = f.telemetry().snapshot();
        let bg_gc: u64 = t.wa.iter().map(|w| w.bg_gc).sum();
        let bg_log: u64 = t.wa.iter().map(|w| w.bg_log).sum();
        let bg_ckpt: u64 = t.wa.iter().map(|w| w.bg_ckpt).sum();
        assert_eq!(bg_gc, s.copyback_pages, "GC blame must sum to copyback pages");
        assert_eq!(
            bg_log + bg_ckpt,
            s.meta_page_writes,
            "log+ckpt blame must sum to meta page writes"
        );
        f.check_invariants();
    }
}
