//! Logical addressing types and the SHARE command payload.

use std::fmt;

pub use nand_sim::Ppn;

/// A logical page number — the address space the host sees.
///
/// The FTL maps each LPN to a physical page ([`Ppn`]) through the L2P
/// table; the SHARE command rewrites that mapping explicitly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lpn(pub u64);

impl Lpn {
    /// Sentinel for "no logical page" (used in reverse-mapping slots).
    pub const INVALID: Lpn = Lpn(u64::MAX);

    /// Whether this LPN is the invalid sentinel.
    #[inline]
    pub fn is_valid(self) -> bool {
        self != Self::INVALID
    }

    /// The LPN `n` pages after this one.
    #[inline]
    pub fn offset(self, n: u64) -> Lpn {
        Lpn(self.0 + n)
    }
}

impl fmt::Display for Lpn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// One `(dest, src)` pair of a SHARE command.
///
/// Executing the pair remaps `dest` to the physical page currently backing
/// `src` — afterwards both logical pages *share* one physical page. This is
/// the `share(LPN1, LPN2)` of the paper's Section 3.2, with `dest = LPN1`
/// and `src = LPN2`: "FTL changes the physical address mapped to LPN1 to
/// the physical address currently mapped to LPN2".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SharePair {
    /// The logical page whose mapping is rewritten.
    pub dest: Lpn,
    /// The logical page whose current physical page becomes shared.
    pub src: Lpn,
}

impl SharePair {
    /// Construct a pair remapping `dest` onto `src`'s physical page.
    pub fn new(dest: Lpn, src: Lpn) -> Self {
        Self { dest, src }
    }

    /// Expand a ranged `share(LPN1, LPN2, length)` into per-page pairs.
    ///
    /// Mirrors the paper's `length` argument: it must be a multiple of the
    /// mapping unit (already guaranteed here by page-granular types), and
    /// the two ranges must not overlap.
    pub fn range(dest: Lpn, src: Lpn, length: u64) -> Vec<SharePair> {
        assert!(length > 0, "length must be positive");
        let overlap = dest.0 < src.0 + length && src.0 < dest.0 + length;
        assert!(!overlap, "SHARE ranges must not overlap (dest {dest}, src {src}, len {length})");
        (0..length).map(|i| SharePair::new(dest.offset(i), src.offset(i))).collect()
    }
}

impl fmt::Display for SharePair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} <- {}", self.dest, self.src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lpn_offset_and_validity() {
        assert_eq!(Lpn(5).offset(3), Lpn(8));
        assert!(Lpn(0).is_valid());
        assert!(!Lpn::INVALID.is_valid());
    }

    #[test]
    fn range_expands_pairwise() {
        let pairs = SharePair::range(Lpn(100), Lpn(200), 3);
        assert_eq!(
            pairs,
            vec![
                SharePair::new(Lpn(100), Lpn(200)),
                SharePair::new(Lpn(101), Lpn(201)),
                SharePair::new(Lpn(102), Lpn(202)),
            ]
        );
    }

    #[test]
    #[should_panic(expected = "must not overlap")]
    fn overlapping_ranges_rejected() {
        SharePair::range(Lpn(100), Lpn(102), 4);
    }

    #[test]
    fn adjacent_ranges_are_fine() {
        // dest 100..104, src 104..108: touching but not overlapping.
        let pairs = SharePair::range(Lpn(100), Lpn(104), 4);
        assert_eq!(pairs.len(), 4);
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(SharePair::new(Lpn(1), Lpn(2)).to_string(), "L1 <- L2");
    }
}
