//! The L2P mapping table, per-page reference counts, and the bounded
//! shared-page reverse-mapping (P2L) table.
//!
//! Invariants maintained (and checked by `debug_assert` plus the property
//! tests in `tests/`):
//!
//! 1. `refcount(ppn) == |{ lpn : l2p[lpn] == ppn }|` for every PPN.
//! 2. Every LPN mapping to `ppn` is discoverable from the reverse side:
//!    it is either `primary(ppn)` or listed in the shared rev-map entry of
//!    `ppn`. Garbage collection depends on this to relocate shared pages.
//! 3. `valid_pages(block) == |{ ppn in block : refcount(ppn) > 0 }|`.

use crate::error::FtlError;
use crate::types::{Lpn, Ppn};
use nand_sim::{BlockId, NandGeometry};
use std::collections::HashMap;

/// Outcome of unmapping an LPN: the PPN it pointed to, if it is now dead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Unmapped {
    /// Previous physical page (INVALID if the LPN was unmapped).
    pub old_ppn: Ppn,
    /// True if `old_ppn`'s reference count dropped to zero.
    pub died: bool,
}

/// What happens when the bounded reverse map runs out of slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RevMapPolicy {
    /// Reject the SHARE command (`RevMapFull`); the host falls back to a
    /// plain write. Models a firmware that treats the table as exact.
    Strict,
    /// Accept the share and mark the physical page *overflowed*: garbage
    /// collection finds its referrers with a full L2P scan instead. Models
    /// the table as a bounded cache — slower GC under heavy sharing, but
    /// commands never fail.
    #[default]
    ScanOnOverflow,
}

/// Bounded table of *extra* logical references to shared physical pages.
///
/// The primary (program-time) LPN of each PPN lives in the per-page OOB
/// area; only references added by SHARE need RAM here, which is why the
/// paper can cap it at a few hundred entries (§4.2.1).
#[derive(Debug)]
pub struct RevMap {
    entries: HashMap<Ppn, Vec<Lpn>>,
    /// Pages whose extra references exceed the table; resolved by scan.
    overflowed: std::collections::HashSet<Ppn>,
    len: usize,
    capacity: usize,
}

impl RevMap {
    /// A table holding at most `capacity` extra references.
    pub fn new(capacity: usize) -> Self {
        Self { entries: HashMap::new(), overflowed: Default::default(), len: 0, capacity }
    }

    /// Whether `ppn`'s extra references spilled out of the table.
    pub fn is_overflowed(&self, ppn: Ppn) -> bool {
        self.overflowed.contains(&ppn)
    }

    /// Number of pages currently tracked by scan instead of table slots.
    pub fn overflowed_count(&self) -> usize {
        self.overflowed.len()
    }

    fn mark_overflowed(&mut self, ppn: Ppn) {
        // Release any slots it held; scan tracking covers them now.
        if let Some(list) = self.entries.remove(&ppn) {
            self.len -= list.len();
        }
        self.overflowed.insert(ppn);
    }

    /// Current number of extra references.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Free slots remaining.
    pub fn free(&self) -> usize {
        self.capacity.saturating_sub(self.len)
    }

    /// Record `lpn` as an extra reference to `ppn`.
    pub fn insert(&mut self, ppn: Ppn, lpn: Lpn) -> Result<(), FtlError> {
        if self.len >= self.capacity {
            return Err(FtlError::RevMapFull { capacity: self.capacity });
        }
        let list = self.entries.entry(ppn).or_default();
        debug_assert!(!list.contains(&lpn), "duplicate revmap entry {ppn} -> {lpn}");
        list.push(lpn);
        self.len += 1;
        Ok(())
    }

    /// Remove the extra reference `ppn -> lpn` if present.
    pub fn remove(&mut self, ppn: Ppn, lpn: Lpn) {
        if let Some(list) = self.entries.get_mut(&ppn) {
            if let Some(pos) = list.iter().position(|&l| l == lpn) {
                list.swap_remove(pos);
                self.len -= 1;
                if list.is_empty() {
                    self.entries.remove(&ppn);
                }
            }
        }
    }

    /// Extra references to `ppn` (primary LPN not included).
    pub fn extras(&self, ppn: Ppn) -> &[Lpn] {
        self.entries.get(&ppn).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Drop every entry for `ppn` (page relocated or erased).
    pub fn remove_all(&mut self, ppn: Ppn) {
        if let Some(list) = self.entries.remove(&ppn) {
            self.len -= list.len();
        }
        self.overflowed.remove(&ppn);
    }
}

/// The in-DRAM mapping state of the FTL.
#[derive(Debug)]
pub struct MappingTable {
    geometry: NandGeometry,
    l2p: Vec<Ppn>,
    refcount: Vec<u16>,
    /// Program-time (OOB) logical owner of each physical page.
    primary: Vec<Lpn>,
    revmap: RevMap,
    policy: RevMapPolicy,
    valid_per_block: Vec<u32>,
}

impl MappingTable {
    /// An empty mapping for `logical_pages` LPNs over `geometry`.
    pub fn new(geometry: NandGeometry, logical_pages: u64, revmap_capacity: usize) -> Self {
        Self::with_policy(geometry, logical_pages, revmap_capacity, RevMapPolicy::default())
    }

    /// [`Self::new`] with an explicit overflow policy.
    pub fn with_policy(
        geometry: NandGeometry,
        logical_pages: u64,
        revmap_capacity: usize,
        policy: RevMapPolicy,
    ) -> Self {
        let phys = geometry.total_pages() as usize;
        Self {
            geometry,
            l2p: vec![Ppn::INVALID; logical_pages as usize],
            refcount: vec![0; phys],
            primary: vec![Lpn::INVALID; phys],
            revmap: RevMap::new(revmap_capacity),
            policy,
            valid_per_block: vec![0; geometry.blocks as usize],
        }
    }

    /// Exported logical capacity in pages.
    pub fn logical_pages(&self) -> u64 {
        self.l2p.len() as u64
    }

    /// Current physical page of `lpn` (INVALID if unmapped).
    #[inline]
    pub fn lookup(&self, lpn: Lpn) -> Ppn {
        self.l2p[lpn.0 as usize]
    }

    /// Whether `ppn` holds live data (referenced by at least one LPN).
    #[inline]
    pub fn is_live(&self, ppn: Ppn) -> bool {
        self.refcount[ppn.0 as usize] > 0
    }

    /// Reference count of `ppn`.
    #[inline]
    pub fn refcount(&self, ppn: Ppn) -> u16 {
        self.refcount[ppn.0 as usize]
    }

    /// Live (valid) pages currently in `block`.
    #[inline]
    pub fn valid_pages(&self, block: BlockId) -> u32 {
        self.valid_per_block[block.0 as usize]
    }

    /// The shared-page reverse map (read-only).
    pub fn revmap(&self) -> &RevMap {
        &self.revmap
    }

    /// The configured overflow policy.
    pub fn policy(&self) -> RevMapPolicy {
        self.policy
    }

    /// Program-time owner of `ppn`.
    pub fn primary(&self, ppn: Ppn) -> Lpn {
        self.primary[ppn.0 as usize]
    }

    /// Every LPN currently mapped to `ppn` (primary first if still mapped).
    ///
    /// For pages whose extra references overflowed the bounded table, this
    /// falls back to a full L2P scan (the [`RevMapPolicy::ScanOnOverflow`]
    /// cost model: GC pays, commands never fail).
    pub fn referrers(&self, ppn: Ppn) -> Vec<Lpn> {
        if self.revmap.is_overflowed(ppn) {
            return self
                .l2p
                .iter()
                .enumerate()
                .filter(|(_, &p)| p == ppn)
                .map(|(i, _)| Lpn(i as u64))
                .collect();
        }
        let mut out = Vec::new();
        let p = self.primary[ppn.0 as usize];
        if p.is_valid() && self.l2p[p.0 as usize] == ppn {
            out.push(p);
        }
        for &l in self.revmap.extras(ppn) {
            debug_assert_eq!(self.l2p[l.0 as usize], ppn, "stale revmap entry");
            out.push(l);
        }
        out
    }

    fn inc_ref(&mut self, ppn: Ppn) -> Result<(), FtlError> {
        let rc = &mut self.refcount[ppn.0 as usize];
        if *rc == u16::MAX {
            return Err(FtlError::RefOverflow);
        }
        *rc += 1;
        if *rc == 1 {
            self.valid_per_block[self.geometry.block_of(ppn).0 as usize] += 1;
        }
        Ok(())
    }

    fn dec_ref(&mut self, ppn: Ppn) -> bool {
        let rc = &mut self.refcount[ppn.0 as usize];
        debug_assert!(*rc > 0, "refcount underflow on {ppn}");
        *rc -= 1;
        if *rc == 0 {
            self.valid_per_block[self.geometry.block_of(ppn).0 as usize] -= 1;
            self.revmap.remove_all(ppn);
            true
        } else {
            false
        }
    }

    /// Unmap `lpn` (no-op if already unmapped). Used by writes (before
    /// remapping), TRIM and SHARE.
    pub fn unmap(&mut self, lpn: Lpn) -> Unmapped {
        let old = self.l2p[lpn.0 as usize];
        if !old.is_valid() {
            return Unmapped { old_ppn: Ppn::INVALID, died: false };
        }
        self.l2p[lpn.0 as usize] = Ppn::INVALID;
        // If lpn was an extra (shared) reference, retire its revmap slot.
        if self.primary[old.0 as usize] != lpn {
            self.revmap.remove(old, lpn);
        }
        let died = self.dec_ref(old);
        Unmapped { old_ppn: old, died }
    }

    /// Map `lpn` to a freshly programmed `ppn` (a host write or a GC
    /// copyback destination). Sets the program-time primary owner.
    pub fn map_new_write(&mut self, lpn: Lpn, ppn: Ppn) -> Result<Unmapped, FtlError> {
        debug_assert_eq!(self.refcount[ppn.0 as usize], 0, "fresh ppn must be unreferenced");
        let old = self.unmap(lpn);
        self.l2p[lpn.0 as usize] = ppn;
        self.primary[ppn.0 as usize] = lpn;
        self.inc_ref(ppn)?;
        Ok(old)
    }

    /// Redirect `lpn` to an *already live* `ppn` (the SHARE remap, and GC
    /// relocation of secondary references). Consumes a rev-map slot when
    /// `lpn` is not the page's primary owner.
    pub fn map_shared(&mut self, lpn: Lpn, ppn: Ppn) -> Result<Unmapped, FtlError> {
        debug_assert!(self.refcount[ppn.0 as usize] > 0, "share target must be live");
        let overflow = self.shared_slot_need(lpn, ppn) > self.revmap.free();
        if overflow && self.policy == RevMapPolicy::Strict {
            return Err(FtlError::RevMapFull { capacity: self.revmap.capacity() });
        }
        let old = self.unmap(lpn);
        self.l2p[lpn.0 as usize] = ppn;
        self.inc_ref(ppn)?;
        if self.primary[ppn.0 as usize] != lpn && !self.revmap.is_overflowed(ppn) {
            if overflow || self.revmap.free() == 0 {
                self.revmap.mark_overflowed(ppn);
            } else {
                self.revmap.insert(ppn, lpn).expect("free slot checked");
            }
        }
        Ok(old)
    }

    /// Net rev-map slots `map_shared(lpn, ppn)` would consume: one if `lpn`
    /// becomes a secondary reference, minus one if `lpn` currently *is* a
    /// secondary reference elsewhere (its slot is released by the remap).
    pub fn shared_slot_need(&self, lpn: Lpn, ppn: Ppn) -> usize {
        if self.revmap.is_overflowed(ppn) {
            return 0; // scan tracking needs no slots
        }
        let needs = (self.primary[ppn.0 as usize] != lpn) as usize;
        let old = self.l2p[lpn.0 as usize];
        let frees = (old.is_valid()
            && self.primary[old.0 as usize] != lpn
            // The slot only comes back if the remap kills the old page or
            // merely drops this secondary reference; either way `remove`
            // or `remove_all` runs inside `unmap`.
            ) as usize;
        needs.saturating_sub(frees)
    }

    /// Relocate all references of `from` to `to` (GC copyback). `to` must be
    /// freshly programmed with the same content. Returns the moved LPNs.
    pub fn relocate(&mut self, from: Ppn, to: Ppn) -> Result<Vec<Lpn>, FtlError> {
        let lpns = self.referrers(from);
        debug_assert!(!lpns.is_empty(), "relocating dead page {from}");
        let (first, rest) = lpns.split_first().expect("live page has referrers");
        self.map_new_write(*first, to)?;
        for &lpn in rest {
            self.map_shared(lpn, to)?;
        }
        debug_assert!(!self.is_live(from), "source still live after relocation");
        Ok(lpns)
    }

    /// Extra rev-map slots a relocation of `ppn` will need at the
    /// destination (secondary references move with the page).
    pub fn relocation_revmap_need(&self, ppn: Ppn) -> usize {
        self.referrers(ppn).len().saturating_sub(1)
    }

    /// Rebuild reverse state (refcounts, primaries, rev-map, valid counts)
    /// from a recovered L2P table.
    ///
    /// The first LPN found mapping to a PPN becomes its primary owner; any
    /// further LPNs (created by SHARE before the crash) go to the rev-map.
    /// Which referrer is "primary" is an accounting choice only — GC treats
    /// primary and shared references identically.
    pub fn rebuild_reverse(&mut self) {
        self.refcount.iter_mut().for_each(|r| *r = 0);
        self.valid_per_block.iter_mut().for_each(|v| *v = 0);
        self.primary.iter_mut().for_each(|p| *p = Lpn::INVALID);
        self.revmap = RevMap::new(self.revmap.capacity());
        for lpn_idx in 0..self.l2p.len() {
            let ppn = self.l2p[lpn_idx];
            if !ppn.is_valid() {
                continue;
            }
            let lpn = Lpn(lpn_idx as u64);
            let rc = &mut self.refcount[ppn.0 as usize];
            *rc += 1;
            if *rc == 1 {
                self.valid_per_block[self.geometry.block_of(ppn).0 as usize] += 1;
                self.primary[ppn.0 as usize] = lpn;
            } else {
                // Recovery may momentarily exceed the configured capacity;
                // grow transparently, as the device would rebuild into DRAM.
                if self.revmap.free() == 0 {
                    self.revmap.capacity += 1;
                }
                self.revmap.insert(ppn, lpn).expect("grown above");
            }
        }
    }

    /// Directly set an L2P entry during recovery replay (no reverse upkeep;
    /// call [`Self::rebuild_reverse`] afterwards).
    pub fn raw_set(&mut self, lpn: Lpn, ppn: Ppn) {
        self.l2p[lpn.0 as usize] = ppn;
    }

    /// The raw L2P table, for checkpointing.
    pub fn l2p_raw(&self) -> &[Ppn] {
        &self.l2p
    }

    /// Verify invariant 1 and 3 exhaustively (test helper; O(physical)).
    pub fn check_invariants(&self) {
        let mut counts = vec![0u16; self.refcount.len()];
        for &ppn in &self.l2p {
            if ppn.is_valid() {
                counts[ppn.0 as usize] += 1;
            }
        }
        assert_eq!(counts, self.refcount, "refcount does not match L2P");
        let mut valid = vec![0u32; self.valid_per_block.len()];
        for (i, &rc) in self.refcount.iter().enumerate() {
            if rc > 0 {
                valid[self.geometry.block_of(Ppn(i as u32)).0 as usize] += 1;
            }
        }
        assert_eq!(valid, self.valid_per_block, "per-block valid counts drifted");
        // Invariant 2: every mapped LPN is discoverable from its PPN.
        for (i, &ppn) in self.l2p.iter().enumerate() {
            if ppn.is_valid() {
                let lpn = Lpn(i as u64);
                assert!(
                    self.referrers(ppn).contains(&lpn),
                    "{lpn} -> {ppn} not discoverable from reverse side"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> MappingTable {
        MappingTable::new(NandGeometry::new(512, 4, 8), 16, 8)
    }

    #[test]
    fn fresh_table_is_unmapped() {
        let t = table();
        assert_eq!(t.lookup(Lpn(0)), Ppn::INVALID);
        assert!(!t.is_live(Ppn(0)));
        assert_eq!(t.valid_pages(BlockId(0)), 0);
    }

    #[test]
    fn write_maps_and_counts() {
        let mut t = table();
        t.map_new_write(Lpn(3), Ppn(5)).unwrap();
        assert_eq!(t.lookup(Lpn(3)), Ppn(5));
        assert_eq!(t.refcount(Ppn(5)), 1);
        assert_eq!(t.primary(Ppn(5)), Lpn(3));
        assert_eq!(t.valid_pages(BlockId(1)), 1); // ppn 5 is in block 1
        t.check_invariants();
    }

    #[test]
    fn overwrite_invalidates_old_ppn() {
        let mut t = table();
        t.map_new_write(Lpn(3), Ppn(5)).unwrap();
        let old = t.map_new_write(Lpn(3), Ppn(6)).unwrap();
        assert_eq!(old, Unmapped { old_ppn: Ppn(5), died: true });
        assert!(!t.is_live(Ppn(5)));
        assert_eq!(t.valid_pages(BlockId(1)), 1);
        t.check_invariants();
    }

    #[test]
    fn share_creates_two_references() {
        let mut t = table();
        t.map_new_write(Lpn(1), Ppn(0)).unwrap();
        t.map_new_write(Lpn(2), Ppn(1)).unwrap();
        // share(dest=2, src=1): Lpn 2 now points at Ppn 0 too.
        let old = t.map_shared(Lpn(2), Ppn(0)).unwrap();
        assert_eq!(old.old_ppn, Ppn(1));
        assert!(old.died);
        assert_eq!(t.refcount(Ppn(0)), 2);
        assert_eq!(t.revmap().len(), 1);
        assert_eq!(t.referrers(Ppn(0)), vec![Lpn(1), Lpn(2)]);
        t.check_invariants();
    }

    #[test]
    fn unmapping_shared_reference_frees_revmap_slot() {
        let mut t = table();
        t.map_new_write(Lpn(1), Ppn(0)).unwrap();
        t.map_shared(Lpn(2), Ppn(0)).unwrap();
        assert_eq!(t.revmap().len(), 1);
        t.unmap(Lpn(2));
        assert_eq!(t.revmap().len(), 0);
        assert_eq!(t.refcount(Ppn(0)), 1);
        t.check_invariants();
    }

    #[test]
    fn unmapping_primary_keeps_shared_reference_alive() {
        let mut t = table();
        t.map_new_write(Lpn(1), Ppn(0)).unwrap();
        t.map_shared(Lpn(2), Ppn(0)).unwrap();
        t.unmap(Lpn(1));
        assert!(t.is_live(Ppn(0)));
        assert_eq!(t.referrers(Ppn(0)), vec![Lpn(2)]);
        t.check_invariants();
    }

    #[test]
    fn revmap_capacity_is_enforced() {
        let mut t =
            MappingTable::with_policy(NandGeometry::new(512, 4, 8), 16, 1, RevMapPolicy::Strict);
        t.map_new_write(Lpn(0), Ppn(0)).unwrap();
        t.map_shared(Lpn(1), Ppn(0)).unwrap();
        assert_eq!(
            t.map_shared(Lpn(2), Ppn(0)),
            Err(FtlError::RevMapFull { capacity: 1 })
        );
        // Mapping the *primary* back needs no slot.
        t.check_invariants();
    }

    #[test]
    fn scan_on_overflow_keeps_sharing_working() {
        let mut t = MappingTable::with_policy(
            NandGeometry::new(512, 4, 8),
            16,
            1,
            RevMapPolicy::ScanOnOverflow,
        );
        t.map_new_write(Lpn(0), Ppn(0)).unwrap();
        t.map_shared(Lpn(1), Ppn(0)).unwrap();
        // Third reference overflows the 1-slot table but still succeeds.
        t.map_shared(Lpn(2), Ppn(0)).unwrap();
        assert!(t.revmap().is_overflowed(Ppn(0)));
        assert_eq!(t.refcount(Ppn(0)), 3);
        let mut refs = t.referrers(Ppn(0));
        refs.sort();
        assert_eq!(refs, vec![Lpn(0), Lpn(1), Lpn(2)]);
        t.check_invariants();
        // Relocation still moves every reference.
        let moved = t.relocate(Ppn(0), Ppn(7)).unwrap();
        assert_eq!(moved.len(), 3);
        assert!(!t.is_live(Ppn(0)));
        t.check_invariants();
        // Overflow mark clears when the page dies.
        for l in [Lpn(0), Lpn(1), Lpn(2)] {
            t.unmap(l);
        }
        assert!(!t.revmap().is_overflowed(Ppn(7)));
    }

    #[test]
    fn relocate_moves_all_references() {
        let mut t = table();
        t.map_new_write(Lpn(1), Ppn(0)).unwrap();
        t.map_shared(Lpn(2), Ppn(0)).unwrap();
        t.map_shared(Lpn(3), Ppn(0)).unwrap();
        assert_eq!(t.relocation_revmap_need(Ppn(0)), 2);
        let moved = t.relocate(Ppn(0), Ppn(7)).unwrap();
        assert_eq!(moved.len(), 3);
        assert!(!t.is_live(Ppn(0)));
        assert_eq!(t.refcount(Ppn(7)), 3);
        for lpn in [Lpn(1), Lpn(2), Lpn(3)] {
            assert_eq!(t.lookup(lpn), Ppn(7));
        }
        t.check_invariants();
    }

    #[test]
    fn relocate_when_primary_was_overwritten() {
        let mut t = table();
        t.map_new_write(Lpn(1), Ppn(0)).unwrap();
        t.map_shared(Lpn(2), Ppn(0)).unwrap();
        t.map_new_write(Lpn(1), Ppn(1)).unwrap(); // primary moves on
        assert_eq!(t.referrers(Ppn(0)), vec![Lpn(2)]);
        let moved = t.relocate(Ppn(0), Ppn(7)).unwrap();
        assert_eq!(moved, vec![Lpn(2)]);
        assert_eq!(t.lookup(Lpn(2)), Ppn(7));
        t.check_invariants();
    }

    #[test]
    fn trim_then_rewrite_round_trip() {
        let mut t = table();
        t.map_new_write(Lpn(4), Ppn(2)).unwrap();
        let u = t.unmap(Lpn(4));
        assert_eq!(u.old_ppn, Ppn(2));
        assert!(u.died);
        assert_eq!(t.lookup(Lpn(4)), Ppn::INVALID);
        t.map_new_write(Lpn(4), Ppn(3)).unwrap();
        assert_eq!(t.lookup(Lpn(4)), Ppn(3));
        t.check_invariants();
    }

    #[test]
    fn rebuild_reverse_reconstructs_shared_state() {
        let mut t = table();
        t.map_new_write(Lpn(1), Ppn(0)).unwrap();
        t.map_shared(Lpn(2), Ppn(0)).unwrap();
        t.map_new_write(Lpn(3), Ppn(1)).unwrap();

        // Simulate recovery: copy the raw L2P, wipe reverse state, rebuild.
        let mut r = MappingTable::new(NandGeometry::new(512, 4, 8), 16, 8);
        for i in 0..16 {
            r.raw_set(Lpn(i), t.lookup(Lpn(i)));
        }
        r.rebuild_reverse();
        assert_eq!(r.refcount(Ppn(0)), 2);
        assert_eq!(r.refcount(Ppn(1)), 1);
        assert_eq!(r.referrers(Ppn(0)), vec![Lpn(1), Lpn(2)]);
        r.check_invariants();
    }
}
