//! NVMe-style submission/completion queueing at the [`BlockDevice`]
//! boundary.
//!
//! The synchronous `BlockDevice` methods model a host that submits one
//! command and blocks until it completes — only pages *within* one batch
//! ever overlap across NAND channels. Queued submission breaks that
//! ceiling: the host enqueues tagged commands ([`QueuedCmd`]) up to the
//! device's queue depth, the device executes each at submission time on a
//! deferred NAND window (state eagerly, timing onto per-channel/way lanes),
//! and the host later reaps [`Completion`]s. Commands from independent
//! connections thus overlap across channels exactly as on a real NVMe
//! device, while the simulated clock advances only when the host observes
//! completions.
//!
//! [`BlockDevice`]: crate::BlockDevice

use crate::error::FtlError;
use crate::types::{Lpn, SharePair};

/// Tag identifying one queued command on its device. Tags are unique for
/// the device's lifetime (monotonic 32-bit counter).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CmdTag(pub u32);

impl std::fmt::Display for CmdTag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// A command enqueued on a device submission queue. Owns its payload: the
/// host buffer is captured at submit time, so the submitting connection
/// can move on before the command completes.
#[derive(Debug, Clone)]
pub enum QueuedCmd {
    /// Read one page; completes with [`CmdOutput::Page`].
    Read { lpn: Lpn },
    /// Read a vector of pages as one submission; completes with
    /// [`CmdOutput::Pages`] in request order.
    ReadBatch { lpns: Vec<Lpn> },
    /// Write one page.
    Write { lpn: Lpn, data: Vec<u8> },
    /// Write a vector of pages as one submission (prefix-durable on error,
    /// like the sync `write_batch`).
    WriteBatch { pages: Vec<(Lpn, Vec<u8>)> },
    /// All-or-nothing multi-page write.
    WriteAtomic { pages: Vec<(Lpn, Vec<u8>)> },
    /// Atomic SHARE batch (one log page).
    Share { pairs: Vec<SharePair> },
    /// Chunked SHARE submission (one command, sub-batch atomicity).
    ShareBatch { pairs: Vec<SharePair> },
    /// Invalidate `len` pages starting at `lpn`.
    Trim { lpn: Lpn, len: u64 },
    /// Durability barrier for everything already submitted.
    Flush,
}

impl QueuedCmd {
    /// Stable name for spans/telemetry.
    pub fn name(&self) -> &'static str {
        match self {
            QueuedCmd::Read { .. } => "q_read",
            QueuedCmd::ReadBatch { .. } => "q_read_batch",
            QueuedCmd::Write { .. } => "q_write",
            QueuedCmd::WriteBatch { .. } => "q_write_batch",
            QueuedCmd::WriteAtomic { .. } => "q_write_atomic",
            QueuedCmd::Share { .. } => "q_share",
            QueuedCmd::ShareBatch { .. } => "q_share_batch",
            QueuedCmd::Trim { .. } => "q_trim",
            QueuedCmd::Flush => "q_flush",
        }
    }
}

/// Data carried back by a completed command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CmdOutput {
    /// No payload (writes, trim, share, flush).
    None,
    /// One page of read data.
    Page(Vec<u8>),
    /// Pages of read data, in request order.
    Pages(Vec<Vec<u8>>),
}

impl CmdOutput {
    /// The single page of a [`CmdOutput::Page`] completion.
    pub fn into_page(self) -> Option<Vec<u8>> {
        match self {
            CmdOutput::Page(p) => Some(p),
            _ => None,
        }
    }

    /// The page vector of a [`CmdOutput::Pages`] completion.
    pub fn into_pages(self) -> Option<Vec<Vec<u8>>> {
        match self {
            CmdOutput::Pages(p) => Some(p),
            _ => None,
        }
    }
}

/// A reaped completion: when the command was submitted, when the device
/// finished it, and its outcome. `complete_ns - submit_ns` is the
/// latency-under-load the telemetry histograms record.
#[derive(Debug, Clone)]
pub struct Completion {
    /// Tag returned by `submit`.
    pub tag: CmdTag,
    /// Simulated time at submission.
    pub submit_ns: u64,
    /// Simulated time the device finished the command.
    pub complete_ns: u64,
    /// Outcome, with read payloads on success.
    pub result: Result<CmdOutput, FtlError>,
}

impl Completion {
    /// Whether the command succeeded.
    pub fn is_ok(&self) -> bool {
        self.result.is_ok()
    }

    /// Latency the host observed (completion minus submission).
    pub fn latency_ns(&self) -> u64 {
        self.complete_ns.saturating_sub(self.submit_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_order_and_display() {
        assert!(CmdTag(1) < CmdTag(2));
        assert_eq!(CmdTag(7).to_string(), "T7");
    }

    #[test]
    fn output_accessors() {
        assert_eq!(CmdOutput::Page(vec![1]).into_page(), Some(vec![1]));
        assert_eq!(CmdOutput::None.into_page(), None);
        assert_eq!(CmdOutput::Pages(vec![vec![2]]).into_pages(), Some(vec![vec![2]]));
        assert_eq!(CmdOutput::Page(vec![1]).into_pages(), None);
    }

    #[test]
    fn completion_latency_saturates() {
        let c = Completion {
            tag: CmdTag(0),
            submit_ns: 100,
            complete_ns: 250,
            result: Ok(CmdOutput::None),
        };
        assert!(c.is_ok());
        assert_eq!(c.latency_ns(), 150);
        let weird = Completion { submit_ns: 300, ..c };
        assert_eq!(weird.latency_ns(), 0);
    }

    #[test]
    fn cmd_names_are_stable() {
        assert_eq!(QueuedCmd::Read { lpn: Lpn(0) }.name(), "q_read");
        assert_eq!(QueuedCmd::Flush.name(), "q_flush");
        assert_eq!(QueuedCmd::Share { pairs: vec![] }.name(), "q_share");
    }
}
