//! Host- and device-level I/O statistics.
//!
//! These counters regenerate the paper's Figure 6: host page writes,
//! garbage-collection events, and copyback pages, plus the derived write
//! amplification factor (WAF).

use nand_sim::NandStats;

/// Cumulative statistics of one block device.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeviceStats {
    /// Host read commands (pages).
    pub host_reads: u64,
    /// Host write commands (pages).
    pub host_writes: u64,
    /// Bytes read by the host.
    pub host_read_bytes: u64,
    /// Bytes written by the host.
    pub host_write_bytes: u64,
    /// Flush (fsync) commands.
    pub flushes: u64,
    /// TRIMmed pages.
    pub trims: u64,
    /// SHARE commands received (a batch counts once).
    pub share_commands: u64,
    /// Individual LPN pairs remapped by SHARE.
    pub shared_pages: u64,
    /// Snapshots created (`snapshot_create` commands).
    pub snapshot_creates: u64,
    /// Snapshots dropped (`snapshot_drop` commands).
    pub snapshot_drops: u64,
    /// Clone commands materialized from snapshots (a ranged clone counts
    /// once).
    pub snapshot_clones: u64,
    /// Individual pages remapped into the live map by clones.
    pub snapshot_clone_pages: u64,
    /// Point-in-time page reads served from frozen snapshot entries.
    pub snapshot_reads: u64,
    /// GC relocations of snapshot-pinned pages that were already dead in
    /// the live map (pure pin keep-alive copyback; also counted in
    /// `copyback_pages`).
    pub snapshot_pinned_relocations: u64,
    /// Garbage-collection victim selections.
    pub gc_events: u64,
    /// Valid pages copied back during GC.
    pub copyback_pages: u64,
    /// Blocks erased by GC (excludes meta-area erases).
    pub gc_erases: u64,
    /// Simulated time foreground commands spent stalled on synchronous GC
    /// work inside `ensure_free` (copyback + mapping flush + erase run on
    /// the command's own timeline). Background-pipelined relocation does
    /// not accrue here — it only shows up as lane contention.
    pub gc_stall_ns: u64,
    /// Times the background GC pipeline exhausted its per-command page
    /// budget and deferred the rest of the victim to later commands.
    pub gc_budget_deferrals: u64,
    /// Mapping meta pages programmed (delta log + checkpoints).
    pub meta_page_writes: u64,
    /// Mapping-table checkpoints taken.
    pub checkpoints: u64,
    /// Crash recoveries performed by [`crate::Ftl::open`] into this
    /// device instance (1 for a reopened device, 0 for a fresh format).
    pub recoveries: u64,
    /// NAND pages read while recovering (checkpoint scan + delta-log
    /// replay + block-state rebuild).
    pub recovery_page_reads: u64,
    /// NAND pages programmed while recovering (the fresh checkpoint that
    /// closes recovery). Crash sweeps assert bounds on this.
    pub recovery_page_writes: u64,
    /// Free-block pops where a write point's preferred channel had no
    /// free block and one was stolen from another channel. Non-zero means
    /// lane parallelism (and on a real device, channel striping) degraded
    /// under free-space skew.
    pub lane_steals: u64,
    /// Raw NAND counters (includes meta and GC traffic).
    pub nand: NandStats,
}

impl DeviceStats {
    /// Write amplification: NAND page programs per host page write.
    pub fn waf(&self) -> f64 {
        if self.host_writes == 0 {
            0.0
        } else {
            self.nand.page_programs as f64 / self.host_writes as f64
        }
    }

    /// Field-wise difference `self - earlier`, for measurement windows.
    pub fn delta_since(&self, earlier: &DeviceStats) -> DeviceStats {
        DeviceStats {
            host_reads: self.host_reads - earlier.host_reads,
            host_writes: self.host_writes - earlier.host_writes,
            host_read_bytes: self.host_read_bytes - earlier.host_read_bytes,
            host_write_bytes: self.host_write_bytes - earlier.host_write_bytes,
            flushes: self.flushes - earlier.flushes,
            trims: self.trims - earlier.trims,
            share_commands: self.share_commands - earlier.share_commands,
            shared_pages: self.shared_pages - earlier.shared_pages,
            snapshot_creates: self.snapshot_creates - earlier.snapshot_creates,
            snapshot_drops: self.snapshot_drops - earlier.snapshot_drops,
            snapshot_clones: self.snapshot_clones - earlier.snapshot_clones,
            snapshot_clone_pages: self.snapshot_clone_pages - earlier.snapshot_clone_pages,
            snapshot_reads: self.snapshot_reads - earlier.snapshot_reads,
            snapshot_pinned_relocations: self.snapshot_pinned_relocations
                - earlier.snapshot_pinned_relocations,
            gc_events: self.gc_events - earlier.gc_events,
            copyback_pages: self.copyback_pages - earlier.copyback_pages,
            gc_erases: self.gc_erases - earlier.gc_erases,
            gc_stall_ns: self.gc_stall_ns - earlier.gc_stall_ns,
            gc_budget_deferrals: self.gc_budget_deferrals - earlier.gc_budget_deferrals,
            meta_page_writes: self.meta_page_writes - earlier.meta_page_writes,
            checkpoints: self.checkpoints - earlier.checkpoints,
            recoveries: self.recoveries - earlier.recoveries,
            recovery_page_reads: self.recovery_page_reads - earlier.recovery_page_reads,
            recovery_page_writes: self.recovery_page_writes - earlier.recovery_page_writes,
            lane_steals: self.lane_steals - earlier.lane_steals,
            nand: self.nand.delta_since(&earlier.nand),
        }
    }

    /// Field-wise sum `self += delta`, the inverse of [`delta_since`]:
    /// `b.accumulate(&a.delta_since(&b))` restores `a` exactly. The flight
    /// recorder folds evicted epoch deltas into one accumulator with this,
    /// which is what keeps retained + evicted + partial deltas summing
    /// exactly to the cumulative counters.
    ///
    /// [`delta_since`]: DeviceStats::delta_since
    pub fn accumulate(&mut self, delta: &DeviceStats) {
        self.host_reads += delta.host_reads;
        self.host_writes += delta.host_writes;
        self.host_read_bytes += delta.host_read_bytes;
        self.host_write_bytes += delta.host_write_bytes;
        self.flushes += delta.flushes;
        self.trims += delta.trims;
        self.share_commands += delta.share_commands;
        self.shared_pages += delta.shared_pages;
        self.snapshot_creates += delta.snapshot_creates;
        self.snapshot_drops += delta.snapshot_drops;
        self.snapshot_clones += delta.snapshot_clones;
        self.snapshot_clone_pages += delta.snapshot_clone_pages;
        self.snapshot_reads += delta.snapshot_reads;
        self.snapshot_pinned_relocations += delta.snapshot_pinned_relocations;
        self.gc_events += delta.gc_events;
        self.copyback_pages += delta.copyback_pages;
        self.gc_erases += delta.gc_erases;
        self.gc_stall_ns += delta.gc_stall_ns;
        self.gc_budget_deferrals += delta.gc_budget_deferrals;
        self.meta_page_writes += delta.meta_page_writes;
        self.checkpoints += delta.checkpoints;
        self.recoveries += delta.recoveries;
        self.recovery_page_reads += delta.recovery_page_reads;
        self.recovery_page_writes += delta.recovery_page_writes;
        self.lane_steals += delta.lane_steals;
        self.nand.page_reads += delta.nand.page_reads;
        self.nand.page_programs += delta.nand.page_programs;
        self.nand.block_erases += delta.nand.block_erases;
        self.nand.torn_programs += delta.nand.torn_programs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waf_handles_zero_writes() {
        assert_eq!(DeviceStats::default().waf(), 0.0);
    }

    #[test]
    fn waf_ratio() {
        let s = DeviceStats {
            host_writes: 100,
            nand: NandStats { page_programs: 150, ..Default::default() },
            ..Default::default()
        };
        assert!((s.waf() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn delta_subtracts() {
        let a = DeviceStats { host_writes: 10, gc_events: 3, ..Default::default() };
        let b = DeviceStats { host_writes: 4, gc_events: 1, ..Default::default() };
        let d = a.delta_since(&b);
        assert_eq!(d.host_writes, 6);
        assert_eq!(d.gc_events, 2);
    }

    #[test]
    fn delta_since_covers_every_field() {
        // Field-completeness guard: with every field (including the nested
        // NAND counters) populated with a distinct value, subtracting zero
        // must reproduce the value exactly. A newly added field that
        // `delta_since` forgets to subtract would come back as its default
        // here and fail the equality — loudly, at the moment the field is
        // added rather than in some later measurement window.
        let full = DeviceStats {
            host_reads: 1,
            host_writes: 2,
            host_read_bytes: 3,
            host_write_bytes: 4,
            flushes: 5,
            trims: 6,
            share_commands: 7,
            shared_pages: 8,
            snapshot_creates: 24,
            snapshot_drops: 25,
            snapshot_clones: 26,
            snapshot_clone_pages: 27,
            snapshot_reads: 28,
            snapshot_pinned_relocations: 29,
            gc_events: 9,
            copyback_pages: 10,
            gc_erases: 11,
            gc_stall_ns: 22,
            gc_budget_deferrals: 23,
            meta_page_writes: 12,
            checkpoints: 13,
            recoveries: 14,
            recovery_page_reads: 15,
            recovery_page_writes: 16,
            lane_steals: 21,
            nand: NandStats {
                page_reads: 17,
                page_programs: 18,
                block_erases: 19,
                torn_programs: 20,
            },
        };
        assert_eq!(full.delta_since(&DeviceStats::default()), full);
        // And the self-delta is all zeros.
        assert_eq!(full.delta_since(&full), DeviceStats::default());
        // accumulate is delta_since's exact inverse: the same all-distinct
        // values round-trip through subtract-then-add, so a field missed
        // by either side fails here the moment it is added.
        let base = DeviceStats { host_writes: 1, gc_events: 4, ..Default::default() };
        let delta = full.delta_since(&base);
        let mut rebuilt = base;
        rebuilt.accumulate(&delta);
        assert_eq!(rebuilt, full);
    }
}
