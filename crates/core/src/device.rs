//! The block-device abstraction and a conventional (non-SHARE) SSD model.
//!
//! [`BlockDevice`] is the command boundary the paper extends: read, write,
//! flush and TRIM exist on every SSD; [`BlockDevice::share`] is the new
//! vendor-unique command. A device that does not implement SHARE (like the
//! Samsung PM853T the paper uses as a log device) reports
//! [`FtlError::Unsupported`], letting engines fall back to their original
//! redundant-write protocols.

use crate::error::FtlError;
use crate::queue::{CmdTag, Completion, QueuedCmd};
use crate::snapshot::SnapshotInfo;
use crate::stats::DeviceStats;
use crate::types::{Lpn, SharePair};
use nand_sim::{FaultHandle, FaultMode, NandError, NandTiming, SimClock};

/// A page-granular block device on the simulated timeline.
pub trait BlockDevice {
    /// Page size in bytes (the I/O and mapping unit).
    fn page_size(&self) -> usize;

    /// Exported logical capacity in pages.
    fn capacity_pages(&self) -> u64;

    /// Read one page into `buf` (`buf.len() == page_size`). Unwritten pages
    /// read as zeros.
    fn read(&mut self, lpn: Lpn, buf: &mut [u8]) -> Result<(), FtlError>;

    /// Write one page.
    fn write(&mut self, lpn: Lpn, data: &[u8]) -> Result<(), FtlError>;

    /// Make all completed writes durable (fsync).
    fn flush(&mut self) -> Result<(), FtlError>;

    /// Invalidate `len` pages starting at `lpn`.
    fn trim(&mut self, lpn: Lpn, len: u64) -> Result<(), FtlError>;

    /// Atomically remap each `pair.dest` to the physical page backing
    /// `pair.src` (the SHARE command). Default: unsupported.
    fn share(&mut self, _pairs: &[SharePair]) -> Result<(), FtlError> {
        Err(FtlError::Unsupported("share"))
    }

    /// Read a vector of pages as one submission. A device with internal
    /// channel parallelism overrides this to dispatch the whole vector at
    /// one submission time; the default is a per-page loop (serial timing,
    /// identical semantics).
    fn read_batch(&mut self, reqs: &mut [(Lpn, &mut [u8])]) -> Result<(), FtlError> {
        for (lpn, buf) in reqs.iter_mut() {
            self.read(*lpn, buf)?;
        }
        Ok(())
    }

    /// Write a vector of pages as one submission. **Not** atomic: on error
    /// a prefix of the batch may be durable, exactly as with a per-page
    /// loop — use [`BlockDevice::write_atomic`] for all-or-nothing
    /// semantics. Default: per-page loop.
    fn write_batch(&mut self, pages: &[(Lpn, &[u8])]) -> Result<(), FtlError> {
        for (lpn, data) in pages {
            self.write(*lpn, data)?;
        }
        Ok(())
    }

    /// SHARE an arbitrarily long pair list as one host command: the device
    /// splits it into [`share_batch_limit`](Self::share_batch_limit)-sized
    /// sub-batches, each of which remaps atomically. The paper's
    /// `SHARE(from, to, length)` batched form. Default: chunked
    /// [`share`](Self::share) calls (one command's overhead per chunk).
    fn share_batch(&mut self, pairs: &[SharePair]) -> Result<(), FtlError> {
        if pairs.is_empty() {
            return Ok(());
        }
        let limit = self.share_batch_limit();
        if limit == 0 {
            return Err(FtlError::Unsupported("share"));
        }
        for chunk in pairs.chunks(limit) {
            self.share(chunk)?;
        }
        Ok(())
    }

    /// Write a batch of pages **atomically**: after a crash either every
    /// page reads its new content or none does. This is the related-work
    /// baseline the paper contrasts in §6.1 (Park et al. / FusionIO
    /// atomic writes, txFlash): update-in-place atomicity without a
    /// journal, but still a full data write per page. Default: unsupported.
    fn write_atomic(&mut self, _pages: &[(Lpn, &[u8])]) -> Result<(), FtlError> {
        Err(FtlError::Unsupported("write_atomic"))
    }

    /// Largest atomic-write batch (pages). 0 = unsupported.
    fn write_atomic_limit(&self) -> usize {
        0
    }

    /// Largest SHARE batch the device executes atomically (0 = none).
    fn share_batch_limit(&self) -> usize {
        0
    }

    /// Whether the device implements SHARE.
    fn supports_share(&self) -> bool {
        self.share_batch_limit() > 0
    }

    // ----- device-level snapshots (see crate::snapshot) -------------------

    /// Whether the device implements the snapshot command family.
    fn supports_snapshot(&self) -> bool {
        false
    }

    /// Freeze the current contents of `len` pages starting at `start`
    /// under `name`, returning the snapshot's device-assigned id. On a
    /// SHARE-capable FTL this is pure metadata (no data copy). Default:
    /// unsupported.
    fn snapshot_create(&mut self, _name: &str, _start: Lpn, _len: u64) -> Result<u32, FtlError> {
        Err(FtlError::Unsupported("snapshot_create"))
    }

    /// Delete the snapshot `name`, releasing its pins on physical pages.
    /// Default: unsupported.
    fn snapshot_drop(&mut self, _name: &str) -> Result<(), FtlError> {
        Err(FtlError::Unsupported("snapshot_drop"))
    }

    /// Materialize a writable zero-copy clone of `len` pages of snapshot
    /// `name` (starting at `src_offset` within its range) at logical
    /// address `dst`. Returns the number of pages mapped; pages unmapped
    /// at freeze time become holes that read zeroes. Default: unsupported.
    fn snapshot_clone(
        &mut self,
        _name: &str,
        _src_offset: u64,
        _dst: Lpn,
        _len: u64,
    ) -> Result<u64, FtlError> {
        Err(FtlError::Unsupported("snapshot_clone"))
    }

    /// Point-in-time read of the page at `offset` within snapshot `name`,
    /// bypassing the live mapping. Default: unsupported.
    fn snapshot_read(&mut self, _name: &str, _offset: u64, _buf: &mut [u8]) -> Result<(), FtlError> {
        Err(FtlError::Unsupported("snapshot_read"))
    }

    /// Enumerate live snapshots. Default: unsupported.
    fn snapshot_list(&self) -> Result<Vec<SnapshotInfo>, FtlError> {
        Err(FtlError::Unsupported("snapshot_list"))
    }

    /// Make the snapshot table durable now instead of at the next natural
    /// checkpoint. Default: unsupported.
    fn snapshot_persist(&mut self) -> Result<(), FtlError> {
        Err(FtlError::Unsupported("snapshot_persist"))
    }

    // ----- submission/completion queues (see crate::queue) ----------------

    /// Whether the device implements queued submission ([`Self::submit`]).
    fn supports_queue(&self) -> bool {
        false
    }

    /// Configured submission-queue depth (0 = queueing unsupported).
    fn queue_depth(&self) -> usize {
        0
    }

    /// Change the submission-queue depth. Must only shrink below the
    /// current in-flight count once those commands are reaped; devices may
    /// clamp to at least 1. No-op on sync-only devices.
    fn set_queue_depth(&mut self, _depth: usize) {}

    /// Enqueue a tagged command. The device executes its state transitions
    /// immediately (in submission order) but the completion — and the
    /// simulated-time cost — is observed only when the host reaps it.
    /// Returns [`FtlError::QueueFull`] at the configured depth and
    /// [`FtlError::Unsupported`] on sync-only devices.
    fn submit(&mut self, _cmd: QueuedCmd) -> Result<CmdTag, FtlError> {
        Err(FtlError::Unsupported("submit"))
    }

    /// Reap completions already due at the current simulated time, oldest
    /// completion first. Never advances the clock.
    fn poll(&mut self) -> Vec<Completion> {
        Vec::new()
    }

    /// Block until at least one outstanding command completes: advance the
    /// clock to the earliest outstanding completion time and reap
    /// everything due. Empty only when nothing is in flight.
    fn reap(&mut self) -> Vec<Completion> {
        Vec::new()
    }

    /// Wait for every outstanding command: advance the clock to the last
    /// completion time and reap them all.
    fn drain(&mut self) -> Vec<Completion> {
        Vec::new()
    }

    /// Commands submitted but not yet reaped.
    fn inflight(&self) -> usize {
        0
    }

    /// Cumulative statistics.
    fn stats(&self) -> DeviceStats;

    /// The simulated clock this device advances.
    fn clock(&self) -> &SimClock;

    /// Intern a logical stream label (e.g. `"wal"`, `"heap"`) for
    /// per-stream telemetry attribution. Devices without telemetry return
    /// the catch-all id 0.
    fn stream_intern(&mut self, _label: &str) -> u32 {
        0
    }

    /// Attribute subsequent commands to the stream returned by
    /// [`stream_intern`](Self::stream_intern). No-op without telemetry.
    fn set_stream(&mut self, _stream: u32) {}

    /// Point-in-time telemetry snapshot, if the device collects any.
    fn telemetry_snapshot(&self) -> Option<share_telemetry::Snapshot> {
        None
    }

    /// Point-in-time flight-recorder snapshot (per-epoch counter-delta
    /// series), if the device runs one (`telemetry.epoch_ns > 0`).
    fn monitor_snapshot(&self) -> Option<crate::monitor::FlightSnapshot> {
        None
    }

    /// The causal span tracer of this device. Layers above (VFS, engines)
    /// clone this handle to attach their spans to the same trace tree.
    /// Devices without tracing return a disabled (no-op) handle.
    fn tracer(&self) -> share_telemetry::Tracer {
        share_telemetry::Tracer::disabled()
    }
}

/// A conventional SSD without the SHARE extension.
///
/// Models a fast drive with a large SLC cache (the paper's PM853T log
/// device): constant per-command service times, no visible GC. Used for
/// the InnoDB redo log and as a baseline device.
#[derive(Debug)]
pub struct SimpleSsd {
    page_size: usize,
    capacity_pages: u64,
    pages: Vec<Option<Box<[u8]>>>,
    clock: SimClock,
    read_ns: u64,
    write_ns: u64,
    flush_ns: u64,
    xfer_ns_per_kib: u64,
    fault: FaultHandle,
    stats: DeviceStats,
    /// Independent write lanes (NVMe-style queue pairs). 1 = the
    /// historical single-queue serial device: every command advances the
    /// shared clock. More lanes stripe writes by page (strict per-page
    /// ordering) onto per-lane `busy_until` reservations; only `flush`
    /// advances the clock, to strictly after every lane has drained.
    queues: usize,
    /// Per-lane completion frontier (only used when `queues > 1`).
    lane_busy_until: Vec<u64>,
}

impl SimpleSsd {
    /// A device with `capacity_pages` pages of `page_size` bytes.
    pub fn new(page_size: usize, capacity_pages: u64, clock: SimClock) -> Self {
        Self {
            page_size,
            capacity_pages,
            pages: vec![None; capacity_pages as usize],
            clock,
            read_ns: 70_000,
            write_ns: 30_000,
            flush_ns: 50_000,
            xfer_ns_per_kib: NandTiming::default().xfer_ns_per_kib,
            fault: FaultHandle::new(),
            stats: DeviceStats::default(),
            queues: 1,
            lane_busy_until: vec![0],
        }
    }

    /// Reshape the device into `queues` independent write lanes. One
    /// queue (the default) is the exact historical serial device —
    /// bit-identical state and timing. More queues overlap writes to
    /// distinct pages: a write reserves its page's lane
    /// (`page % queues`, so rewrites of one page stay strictly ordered)
    /// without moving the shared clock, and `flush` acts as the
    /// strictly-after barrier — the clock jumps to the latest lane
    /// frontier plus the flush cost. Durability semantics are unchanged:
    /// page content is stored eagerly, so crash images do not depend on
    /// the queue shape.
    pub fn with_queues(mut self, queues: usize) -> Self {
        assert!(queues >= 1, "need at least one queue");
        self.queues = queues;
        self.lane_busy_until = vec![0; queues];
        self
    }

    /// Number of independent write lanes.
    pub fn queues(&self) -> usize {
        self.queues
    }

    /// Latest completion frontier across all lanes (>= clock when writes
    /// are still in flight on some lane).
    fn lanes_drained_at(&self) -> u64 {
        self.lane_busy_until.iter().copied().max().unwrap_or(0).max(self.clock.now_ns())
    }

    /// Power-loss injection handle. Unlike the FTL, a conventional drive
    /// has no mapping indirection: a write torn by power loss leaves the
    /// sector half old pattern, half new — the torn-page hazard the
    /// paper's §2 describes.
    pub fn fault_handle(&self) -> FaultHandle {
        self.fault.clone()
    }

    /// Bring the device back up after an injected power loss. Whatever
    /// was still queued on a write lane died with the power: the lane
    /// reservations clear (stored page content is unaffected — it was
    /// applied eagerly at submission).
    pub fn power_cycle(&mut self) {
        self.fault.clear_down();
        self.lane_busy_until.iter_mut().for_each(|b| *b = 0);
    }

    /// Override the latency model (read, write, flush in ns).
    pub fn with_latency(mut self, read_ns: u64, write_ns: u64, flush_ns: u64) -> Self {
        self.read_ns = read_ns;
        self.write_ns = write_ns;
        self.flush_ns = flush_ns;
        self
    }

    fn check(&self, lpn: Lpn, len: usize) -> Result<(), FtlError> {
        if lpn.0 >= self.capacity_pages {
            return Err(FtlError::LpnOutOfRange { lpn, capacity: self.capacity_pages });
        }
        if len != self.page_size {
            return Err(FtlError::BadBufferLength { got: len, want: self.page_size });
        }
        Ok(())
    }
}

impl BlockDevice for SimpleSsd {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn capacity_pages(&self) -> u64 {
        self.capacity_pages
    }

    fn read(&mut self, lpn: Lpn, buf: &mut [u8]) -> Result<(), FtlError> {
        if self.fault.is_down() {
            return Err(FtlError::Nand(NandError::PowerLoss));
        }
        self.check(lpn, buf.len())?;
        if self.queues > 1 {
            // Reads are strictly ordered after every queued write.
            self.clock.advance_to(self.lanes_drained_at());
        }
        self.clock.advance(self.read_ns + (buf.len() as u64 * self.xfer_ns_per_kib) / 1024);
        self.stats.host_reads += 1;
        self.stats.host_read_bytes += buf.len() as u64;
        match &self.pages[lpn.0 as usize] {
            Some(p) => buf.copy_from_slice(p),
            None => buf.fill(0),
        }
        Ok(())
    }

    fn write(&mut self, lpn: Lpn, data: &[u8]) -> Result<(), FtlError> {
        if self.fault.is_down() {
            return Err(FtlError::Nand(NandError::PowerLoss));
        }
        self.check(lpn, data.len())?;
        let service = self.write_ns + (data.len() as u64 * self.xfer_ns_per_kib) / 1024;
        if self.queues == 1 {
            self.clock.advance(service);
        } else {
            // Dispatch onto the page's lane: the write occupies the lane
            // from max(lane frontier, now) without moving the shared
            // clock; `flush` is the barrier that makes it observable.
            let lane = (lpn.0 % self.queues as u64) as usize;
            let start = self.lane_busy_until[lane].max(self.clock.now_ns());
            self.lane_busy_until[lane] = start + service;
        }
        self.stats.host_writes += 1;
        self.stats.host_write_bytes += data.len() as u64;
        if let Some(mode) = self.fault.on_program() {
            match mode {
                FaultMode::TornHalf => {
                    // Half the new content lands; the old tail remains —
                    // an in-place torn write, unlike NAND's erased tail.
                    let cut = data.len() / 2;
                    let mut torn = match self.pages[lpn.0 as usize].take() {
                        Some(old) => old.into_vec(),
                        None => vec![0u8; data.len()],
                    };
                    torn[..cut].copy_from_slice(&data[..cut]);
                    self.pages[lpn.0 as usize] = Some(torn.into_boxed_slice());
                }
                FaultMode::DroppedWrite => {}
                FaultMode::AfterProgram => {
                    self.pages[lpn.0 as usize] = Some(data.to_vec().into_boxed_slice());
                }
            }
            return Err(FtlError::Nand(NandError::PowerLoss));
        }
        self.pages[lpn.0 as usize] = Some(data.to_vec().into_boxed_slice());
        Ok(())
    }

    fn flush(&mut self) -> Result<(), FtlError> {
        if self.fault.is_down() {
            return Err(FtlError::Nand(NandError::PowerLoss));
        }
        if self.queues > 1 {
            // Strictly-after barrier: a flush completes only once every
            // lane has drained.
            self.clock.advance_to(self.lanes_drained_at());
        }
        self.clock.advance(self.flush_ns);
        self.stats.flushes += 1;
        Ok(())
    }

    fn trim(&mut self, lpn: Lpn, len: u64) -> Result<(), FtlError> {
        for i in 0..len {
            self.check(lpn.offset(i), self.page_size)?;
            self.pages[(lpn.0 + i) as usize] = None;
            self.stats.trims += 1;
        }
        Ok(())
    }

    fn stats(&self) -> DeviceStats {
        self.stats
    }

    fn clock(&self) -> &SimClock {
        &self.clock
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> SimpleSsd {
        SimpleSsd::new(512, 16, SimClock::new())
    }

    #[test]
    fn write_read_round_trip() {
        let mut d = dev();
        d.write(Lpn(3), &[7u8; 512]).unwrap();
        let mut buf = [0u8; 512];
        d.read(Lpn(3), &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 7));
    }

    #[test]
    fn unwritten_pages_read_zero() {
        let mut d = dev();
        let mut buf = [9u8; 512];
        d.read(Lpn(0), &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn share_is_unsupported() {
        let mut d = dev();
        assert!(!d.supports_share());
        assert_eq!(d.share_batch_limit(), 0);
        assert_eq!(
            d.share(&[SharePair::new(Lpn(0), Lpn(1))]),
            Err(FtlError::Unsupported("share"))
        );
    }

    #[test]
    fn trim_clears_pages() {
        let mut d = dev();
        d.write(Lpn(1), &[1u8; 512]).unwrap();
        d.write(Lpn(2), &[2u8; 512]).unwrap();
        d.trim(Lpn(1), 2).unwrap();
        let mut buf = [9u8; 512];
        d.read(Lpn(1), &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
        assert_eq!(d.stats().trims, 2);
    }

    #[test]
    fn bounds_and_lengths_validated() {
        let mut d = dev();
        assert!(matches!(d.write(Lpn(16), &[0u8; 512]), Err(FtlError::LpnOutOfRange { .. })));
        assert!(matches!(d.write(Lpn(0), &[0u8; 100]), Err(FtlError::BadBufferLength { .. })));
    }

    #[test]
    fn torn_write_mixes_old_and_new_content() {
        let mut d = dev();
        d.write(Lpn(0), &[0x11u8; 512]).unwrap();
        d.fault_handle().arm_after_programs(1, FaultMode::TornHalf);
        assert!(d.write(Lpn(0), &[0x22u8; 512]).is_err());
        // Down until power-cycled.
        let mut buf = [0u8; 512];
        assert!(d.read(Lpn(0), &mut buf).is_err());
        d.power_cycle();
        d.read(Lpn(0), &mut buf).unwrap();
        assert!(buf[..256].iter().all(|&b| b == 0x22));
        assert!(buf[256..].iter().all(|&b| b == 0x11), "old tail must survive a torn write");
    }

    #[test]
    fn multi_queue_overlaps_writes_and_flush_barriers() {
        // Serial device: N writes + flush cost N*write + flush.
        let mut serial = dev();
        let c1 = serial.clock().clone();
        for lpn in 0..4 {
            serial.write(Lpn(lpn), &[lpn as u8; 512]).unwrap();
        }
        serial.flush().unwrap();
        let serial_ns = c1.now_ns();

        // Four lanes: the same four writes (distinct pages) overlap fully;
        // the flush barrier lands at one write's service time + flush.
        let mut mq = SimpleSsd::new(512, 16, SimClock::new()).with_queues(4);
        assert_eq!(mq.queues(), 4);
        let c2 = mq.clock().clone();
        for lpn in 0..4 {
            mq.write(Lpn(lpn), &[lpn as u8; 512]).unwrap();
        }
        assert_eq!(c2.now_ns(), 0, "writes alone never move the clock");
        mq.flush().unwrap();
        let mq_ns = c2.now_ns();
        assert!(
            mq_ns < serial_ns,
            "4 lanes must beat serial: {mq_ns} vs {serial_ns}"
        );
        // Exactly one write service + flush (all four lanes ran in parallel).
        let service = 30_000 + (512 * NandTiming::default().xfer_ns_per_kib) / 1024;
        assert_eq!(mq_ns, service + 50_000);
        // Content is identical either way.
        for lpn in 0..4u64 {
            let mut buf = [0u8; 512];
            mq.read(Lpn(lpn), &mut buf).unwrap();
            assert!(buf.iter().all(|&b| b == lpn as u8));
        }
    }

    #[test]
    fn multi_queue_serializes_rewrites_of_one_page() {
        // Two writes to the same page share a lane: their service times
        // stack, and the flush barrier sees the sum — strict per-page
        // ordering is preserved in the timing model.
        let mut mq = SimpleSsd::new(512, 16, SimClock::new()).with_queues(4);
        let c = mq.clock().clone();
        mq.write(Lpn(0), &[1u8; 512]).unwrap();
        mq.write(Lpn(0), &[2u8; 512]).unwrap();
        mq.flush().unwrap();
        let service = 30_000 + (512 * NandTiming::default().xfer_ns_per_kib) / 1024;
        assert_eq!(c.now_ns(), 2 * service + 50_000);
        let mut buf = [0u8; 512];
        mq.read(Lpn(0), &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 2), "last write wins");
    }

    #[test]
    fn single_queue_stays_bit_identical_to_legacy_timing() {
        // `with_queues(1)` must leave the historical serial path untouched.
        let mut a = dev();
        let mut b = SimpleSsd::new(512, 16, SimClock::new()).with_queues(1);
        for d in [&mut a, &mut b] {
            d.write(Lpn(0), &[5u8; 512]).unwrap();
            d.write(Lpn(0), &[6u8; 512]).unwrap();
            d.flush().unwrap();
            let mut buf = [0u8; 512];
            d.read(Lpn(0), &mut buf).unwrap();
        }
        assert_eq!(a.clock().now_ns(), b.clock().now_ns());
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn multi_queue_torn_write_semantics_unchanged() {
        // Fault handling and stored content are independent of the queue
        // shape: state is applied eagerly at submission.
        let mut d = SimpleSsd::new(512, 16, SimClock::new()).with_queues(4);
        d.write(Lpn(0), &[0x11u8; 512]).unwrap();
        d.fault_handle().arm_after_programs(1, FaultMode::TornHalf);
        assert!(d.write(Lpn(0), &[0x22u8; 512]).is_err());
        d.power_cycle();
        let mut buf = [0u8; 512];
        d.read(Lpn(0), &mut buf).unwrap();
        assert!(buf[..256].iter().all(|&b| b == 0x22));
        assert!(buf[256..].iter().all(|&b| b == 0x11));
    }

    #[test]
    fn clock_advances_and_stats_count() {
        let mut d = dev();
        let c = d.clock().clone();
        d.write(Lpn(0), &[0u8; 512]).unwrap();
        d.flush().unwrap();
        let mut buf = [0u8; 512];
        d.read(Lpn(0), &mut buf).unwrap();
        assert!(c.now_ns() > 0);
        let s = d.stats();
        assert_eq!((s.host_writes, s.flushes, s.host_reads), (1, 1, 1));
        assert_eq!(s.host_write_bytes, 512);
    }
}
