//! Thread-safe device front-end.
//!
//! A real SSD serializes commands at its submission queue; [`SharedDevice`]
//! models that boundary so several host threads (e.g. the 16 LinkBench
//! clients of the paper's setup) can drive one device. Commands execute
//! under a mutex — the simulated timeline stays coherent because every
//! command advances the shared [`nand_sim::SimClock`] atomically.

use crate::device::BlockDevice;
use crate::error::FtlError;
use crate::queue::{CmdTag, Completion, QueuedCmd};
use crate::stats::DeviceStats;
use crate::types::{Lpn, SharePair};
use nand_sim::SimClock;
use std::sync::{Arc, Mutex, MutexGuard};

/// A cloneable, `Send + Sync` handle to a shared block device.
#[derive(Debug)]
pub struct SharedDevice<D: BlockDevice> {
    inner: Arc<Mutex<D>>,
    clock: SimClock,
}

impl<D: BlockDevice> Clone for SharedDevice<D> {
    fn clone(&self) -> Self {
        Self { inner: Arc::clone(&self.inner), clock: self.clock.clone() }
    }
}

impl<D: BlockDevice> SharedDevice<D> {
    /// Wrap a device for shared use.
    pub fn new(device: D) -> Self {
        let clock = device.clock().clone();
        Self { inner: Arc::new(Mutex::new(device)), clock }
    }

    /// Lock the device, ignoring poison: a panicking host thread models a
    /// host crash, and crash-time device state is exactly what the
    /// recovery tests want to observe (parking_lot behaved the same way).
    fn lock(&self) -> MutexGuard<'_, D> {
        self.inner.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Run `f` with exclusive access to the device (multi-command
    /// critical sections, statistics snapshots, fault injection).
    pub fn with<R>(&self, f: impl FnOnce(&mut D) -> R) -> R {
        f(&mut self.lock())
    }

    /// Unwrap the device (fails if other handles are alive).
    pub fn try_into_inner(self) -> Result<D, Self> {
        let clock = self.clock.clone();
        Arc::try_unwrap(self.inner)
            .map(|m| m.into_inner().unwrap_or_else(|poisoned| poisoned.into_inner()))
            .map_err(|inner| Self { inner, clock })
    }
}

impl<D: BlockDevice> BlockDevice for SharedDevice<D> {
    fn page_size(&self) -> usize {
        self.lock().page_size()
    }

    fn capacity_pages(&self) -> u64 {
        self.lock().capacity_pages()
    }

    fn read(&mut self, lpn: Lpn, buf: &mut [u8]) -> Result<(), FtlError> {
        self.lock().read(lpn, buf)
    }

    fn write(&mut self, lpn: Lpn, data: &[u8]) -> Result<(), FtlError> {
        self.lock().write(lpn, data)
    }

    fn flush(&mut self) -> Result<(), FtlError> {
        self.lock().flush()
    }

    fn trim(&mut self, lpn: Lpn, len: u64) -> Result<(), FtlError> {
        self.lock().trim(lpn, len)
    }

    fn share(&mut self, pairs: &[SharePair]) -> Result<(), FtlError> {
        self.lock().share(pairs)
    }

    fn read_batch(&mut self, reqs: &mut [(Lpn, &mut [u8])]) -> Result<(), FtlError> {
        self.lock().read_batch(reqs)
    }

    fn write_batch(&mut self, pages: &[(Lpn, &[u8])]) -> Result<(), FtlError> {
        self.lock().write_batch(pages)
    }

    fn share_batch(&mut self, pairs: &[SharePair]) -> Result<(), FtlError> {
        self.lock().share_batch(pairs)
    }

    fn write_atomic(&mut self, pages: &[(Lpn, &[u8])]) -> Result<(), FtlError> {
        self.lock().write_atomic(pages)
    }

    fn write_atomic_limit(&self) -> usize {
        self.lock().write_atomic_limit()
    }

    fn share_batch_limit(&self) -> usize {
        self.lock().share_batch_limit()
    }

    fn supports_snapshot(&self) -> bool {
        self.lock().supports_snapshot()
    }

    fn snapshot_create(&mut self, name: &str, start: Lpn, len: u64) -> Result<u32, FtlError> {
        self.lock().snapshot_create(name, start, len)
    }

    fn snapshot_drop(&mut self, name: &str) -> Result<(), FtlError> {
        self.lock().snapshot_drop(name)
    }

    fn snapshot_clone(
        &mut self,
        name: &str,
        src_offset: u64,
        dst: Lpn,
        len: u64,
    ) -> Result<u64, FtlError> {
        self.lock().snapshot_clone(name, src_offset, dst, len)
    }

    fn snapshot_read(&mut self, name: &str, offset: u64, buf: &mut [u8]) -> Result<(), FtlError> {
        self.lock().snapshot_read(name, offset, buf)
    }

    fn snapshot_list(&self) -> Result<Vec<crate::snapshot::SnapshotInfo>, FtlError> {
        self.lock().snapshot_list()
    }

    fn snapshot_persist(&mut self) -> Result<(), FtlError> {
        self.lock().snapshot_persist()
    }

    fn supports_queue(&self) -> bool {
        self.lock().supports_queue()
    }

    fn queue_depth(&self) -> usize {
        self.lock().queue_depth()
    }

    fn set_queue_depth(&mut self, depth: usize) {
        self.lock().set_queue_depth(depth)
    }

    fn submit(&mut self, cmd: QueuedCmd) -> Result<CmdTag, FtlError> {
        self.lock().submit(cmd)
    }

    fn poll(&mut self) -> Vec<Completion> {
        self.lock().poll()
    }

    fn reap(&mut self) -> Vec<Completion> {
        self.lock().reap()
    }

    fn drain(&mut self) -> Vec<Completion> {
        self.lock().drain()
    }

    fn inflight(&self) -> usize {
        self.lock().inflight()
    }

    fn stats(&self) -> DeviceStats {
        self.lock().stats()
    }

    fn clock(&self) -> &SimClock {
        &self.clock
    }

    fn stream_intern(&mut self, label: &str) -> u32 {
        self.lock().stream_intern(label)
    }

    fn set_stream(&mut self, stream: u32) {
        self.lock().set_stream(stream)
    }

    fn telemetry_snapshot(&self) -> Option<share_telemetry::Snapshot> {
        self.lock().telemetry_snapshot()
    }

    fn monitor_snapshot(&self) -> Option<crate::monitor::FlightSnapshot> {
        self.lock().monitor_snapshot()
    }

    fn tracer(&self) -> share_telemetry::Tracer {
        self.lock().tracer()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FtlConfig;
    use crate::ftl::Ftl;
    use nand_sim::NandTiming;

    fn shared() -> SharedDevice<Ftl> {
        let cfg = FtlConfig::for_capacity_with(8 << 20, 0.4, 4096, 16, NandTiming::zero());
        SharedDevice::new(Ftl::new(cfg))
    }

    #[test]
    fn behaves_like_the_wrapped_device() {
        let mut d = shared();
        let page = vec![7u8; d.page_size()];
        d.write(Lpn(1), &page).unwrap();
        d.share(&[SharePair::new(Lpn(0), Lpn(1))]).unwrap();
        let mut buf = vec![0u8; d.page_size()];
        d.read(Lpn(0), &mut buf).unwrap();
        assert_eq!(buf, page);
        assert!(d.supports_share());
    }

    #[test]
    fn concurrent_writers_preserve_all_data() {
        let d = shared();
        let threads = 4;
        let per = 64u64;
        std::thread::scope(|s| {
            for t in 0..threads {
                let mut h = d.clone();
                s.spawn(move || {
                    let ps = h.page_size();
                    for i in 0..per {
                        let lpn = t * per + i;
                        h.write(Lpn(lpn), &vec![(lpn % 251) as u8; ps]).unwrap();
                    }
                });
            }
        });
        let mut h = d.clone();
        let mut buf = vec![0u8; h.page_size()];
        for lpn in 0..threads * per {
            h.read(Lpn(lpn), &mut buf).unwrap();
            assert!(buf.iter().all(|&b| b == (lpn % 251) as u8), "lpn {lpn} diverged");
        }
        assert_eq!(h.stats().host_writes, threads * per);
        d.with(|dev| dev.check_invariants());
    }

    #[test]
    fn concurrent_sharers_do_not_corrupt_mapping() {
        let d = shared();
        // Seed source pages.
        d.clone().with(|dev| {
            let ps = dev.page_size();
            for i in 0..256u64 {
                dev.write(Lpn(1_000 + i), &vec![(i % 251) as u8; ps]).unwrap();
            }
        });
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let mut h = d.clone();
                s.spawn(move || {
                    for i in 0..64u64 {
                        let k = t * 64 + i;
                        h.share(&[SharePair::new(Lpn(k), Lpn(1_000 + k))]).unwrap();
                    }
                });
            }
        });
        let mut h = d.clone();
        let mut buf = vec![0u8; h.page_size()];
        for k in 0..256u64 {
            h.read(Lpn(k), &mut buf).unwrap();
            assert!(buf.iter().all(|&b| b == (k % 251) as u8), "share {k} diverged");
        }
        d.with(|dev| dev.check_invariants());
    }

    #[test]
    fn into_inner_round_trips() {
        let d = shared();
        let d2 = d.clone();
        assert!(d.try_into_inner().is_err(), "second handle alive");
        assert!(d2.try_into_inner().is_ok());
    }
}
