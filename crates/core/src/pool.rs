//! Data-pool block management: free list, active write points, block states.
//!
//! The pool tracks which data blocks are free (erased), which are open as
//! write points, and which are closed and thus eligible as GC victims.
//!
//! Write points are organized as a lane matrix indexed by **lifetime
//! class** and **channel**. Host writes feed one lane per channel within
//! their stream's class, rotating round-robin, so consecutive host pages
//! land on distinct channels and a batched submission can program them in
//! parallel — while pages of different lifetime classes (short-lived
//! journal traffic vs long-lived data vs compaction output) never share a
//! block. GC copyback gets its own lane per (class, channel): survivors
//! relocate into a block of the victim's class on the victim's channel,
//! keeping relocated data out of host blocks and letting relocation
//! storms from victims on different channels proceed in parallel.
//!
//! A single-class pool (placement disabled) with one channel degenerates
//! to exactly one user lane and one GC lane — the historical layout — and
//! every allocation decision is bit-identical to it.

use crate::error::FtlError;
use nand_sim::{BlockId, NandArray, NandGeometry, Ppn, UNTAGGED};

/// Lifecycle of a data-pool block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockState {
    /// Erased, on the free list.
    Free,
    /// Open as a host-write point.
    UserOpen,
    /// Open as a GC copyback destination.
    GcOpen,
    /// Fully or partially programmed and sealed; GC victim candidate.
    Closed,
}

/// Which write point an allocation feeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WritePoint {
    /// Host data of one lifetime class (0 when placement is disabled).
    User {
        /// Lifetime class of the writing stream.
        class: u8,
    },
    /// GC copyback data: survivors of a victim of `class` on `channel`.
    Gc {
        /// Lifetime class of the victim block.
        class: u8,
        /// Channel the victim lives on (keeps copyback channel-affine).
        channel: u32,
    },
}

/// Per-block class marker for "never classified" (fresh or erased).
const UNCLASSED: u8 = u8::MAX;

#[derive(Debug, Clone, Copy)]
struct Open {
    block: u32, // relative block index
    next: u32,  // next in-block page
}

/// A write-point lane coordinate: (class, channel) in either matrix.
#[derive(Debug, Clone, Copy)]
enum Lane {
    User { class: usize, ch: usize },
    Gc { class: usize, ch: usize },
}

/// The data-pool allocator.
#[derive(Debug)]
pub struct BlockPool {
    geometry: NandGeometry,
    start: u32,
    count: u32,
    /// Number of lifetime classes (1 = placement disabled).
    classes: usize,
    state: Vec<BlockState>,
    free: Vec<u32>,
    /// Host write points, `[class][channel]`; `alloc` rotates each class's
    /// lanes so consecutive host pages of one class stripe over channels.
    user: Vec<Vec<Option<Open>>>,
    user_cursor: Vec<usize>,
    /// GC copyback write points, `[class][channel]`.
    gc: Vec<Vec<Option<Open>>>,
    /// Lifetime class a block was opened under (`UNCLASSED` when free or
    /// recovered from an untagged image).
    class_of: Vec<u8>,
    /// Monotonic sequence assigned when a block is sealed (FIFO GC order).
    seal_seq: Vec<u64>,
    seal_counter: u64,
    /// Allocation frontier per block: pages handed out by `alloc`, whether
    /// or not they have been programmed yet. A block whose NAND program
    /// frontier is behind this has in-flight batch pages and must not be
    /// erased by GC.
    alloc_next: Vec<u32>,
    /// Per-block count of pages belonging to submitted-but-unreaped queued
    /// commands. Such pages are already programmed on the medium (state is
    /// eager), but the host has not observed their completion, so the block
    /// must not be erased out from under the outstanding command.
    inflight: Vec<u32>,
    /// Blocks with `inflight > 0` (kept incrementally; sizes the GC
    /// watermark raise in `Ftl::ensure_free`).
    inflight_blocks: usize,
    /// While capturing (between `begin_capture` / `end_capture`), every
    /// allocation's block is recorded here and pinned in `inflight`.
    capture: Option<Vec<u32>>,
    /// Times a lane's preferred channel had no free block and the pop fell
    /// back to another channel, collapsing lane parallelism.
    lane_steals: u64,
    /// Host pages allocated per class (placement gauge).
    placed_pages: Vec<u64>,
    /// GC copyback pages allocated per class (placement gauge).
    gc_moved_pages: Vec<u64>,
}

impl BlockPool {
    /// A pool over data blocks `[start, start + count)`, all erased, with
    /// a single lifetime class (placement disabled).
    pub fn new(geometry: NandGeometry, start: BlockId, count: u32) -> Self {
        let channels = geometry.channels as usize;
        Self {
            geometry,
            start: start.0,
            count,
            classes: 1,
            state: vec![BlockState::Free; count as usize],
            free: (0..count).rev().collect(),
            user: vec![vec![None; channels]],
            user_cursor: vec![0],
            gc: vec![vec![None; channels]],
            class_of: vec![UNCLASSED; count as usize],
            seal_seq: vec![0; count as usize],
            seal_counter: 0,
            alloc_next: vec![0; count as usize],
            inflight: vec![0; count as usize],
            inflight_blocks: 0,
            capture: None,
            lane_steals: 0,
            placed_pages: vec![0],
            gc_moved_pages: vec![0],
        }
    }

    /// Reshape the lane matrix for `classes` lifetime classes. Must be
    /// called before any allocation (the lanes are rebuilt empty).
    pub fn with_classes(mut self, classes: usize) -> Self {
        assert!(classes >= 1, "at least one lifetime class");
        debug_assert_eq!(self.free.len(), self.count as usize, "reshaping a used pool");
        let channels = self.geometry.channels as usize;
        self.classes = classes;
        self.user = vec![vec![None; channels]; classes];
        self.user_cursor = vec![0; classes];
        self.gc = vec![vec![None; channels]; classes];
        self.placed_pages = vec![0; classes];
        self.gc_moved_pages = vec![0; classes];
        self
    }

    /// Number of lifetime classes the lane matrix is shaped for.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Absolute block id for pool-relative index `rel`.
    #[inline]
    pub fn abs(&self, rel: u32) -> BlockId {
        BlockId(self.start + rel)
    }

    /// Pool-relative index for absolute `block`, if it is in the pool.
    #[inline]
    pub fn rel(&self, block: BlockId) -> Option<u32> {
        block.0.checked_sub(self.start).filter(|&r| r < self.count)
    }

    /// Number of erased blocks on the free list.
    pub fn free_count(&self) -> usize {
        self.free.len()
    }

    /// Number of blocks in the pool.
    pub fn block_count(&self) -> u32 {
        self.count
    }

    /// State of pool-relative block `rel`.
    pub fn state(&self, rel: u32) -> BlockState {
        self.state[rel as usize]
    }

    /// Lifetime class block `rel` was opened under, or `None` when the
    /// block is free or predates classification (untagged image).
    pub fn block_class(&self, rel: u32) -> Option<u8> {
        let c = self.class_of[rel as usize];
        (c != UNCLASSED).then_some(c)
    }

    /// Times a lane had to steal a free block from a foreign channel.
    pub fn lane_steals(&self) -> u64 {
        self.lane_steals
    }

    /// Host pages allocated into `class` so far.
    pub fn placed_pages(&self, class: usize) -> u64 {
        self.placed_pages[class]
    }

    /// GC copyback pages allocated into `class` so far.
    pub fn gc_moved_pages(&self, class: usize) -> u64 {
        self.gc_moved_pages[class]
    }

    /// Currently-open write-point blocks of `class` (user + GC lanes).
    pub fn open_blocks(&self, class: usize) -> u64 {
        let user = self.user[class].iter().flatten().count();
        let gc = self.gc[class].iter().flatten().count();
        (user + gc) as u64
    }

    /// Pop a free block, preferring `prefer_channel` so the requesting lane
    /// stays channel-affine; within a channel (and on fallback) the lowest
    /// erase count wins (simple wear leveling). With one channel this is
    /// exactly the old global min-wear pop. A cross-channel fallback is
    /// counted as a *lane steal*: it keeps the device writable but
    /// collapses the lane's channel parallelism, so it must be visible.
    fn pop_free(&mut self, nand: &NandArray, prefer_channel: Option<u32>) -> Option<u32> {
        if self.free.is_empty() {
            return None;
        }
        if let Some(ch) = prefer_channel {
            let on_channel = self
                .free
                .iter()
                .enumerate()
                .filter(|(_, &rel)| self.geometry.channel_of_block(self.abs(rel)) == ch)
                .min_by_key(|(_, &rel)| nand.erase_count(self.abs(rel)));
            if let Some((pos, _)) = on_channel {
                return Some(self.free.swap_remove(pos));
            }
            // No free block on the preferred channel: fall through to the
            // global pop, but record the parallelism loss. (With one
            // channel the filter above never misses while blocks remain,
            // so this counter can only fire on multi-channel devices.)
            self.lane_steals += 1;
        }
        let (pos, _) = self
            .free
            .iter()
            .enumerate()
            .min_by_key(|(_, &rel)| nand.erase_count(self.abs(rel)))?;
        Some(self.free.swap_remove(pos))
    }

    fn open_mut(&mut self, lane: Lane) -> &mut Option<Open> {
        match lane {
            Lane::User { class, ch } => &mut self.user[class][ch],
            Lane::Gc { class, ch } => &mut self.gc[class][ch],
        }
    }

    fn alloc_in_lane(&mut self, nand: &NandArray, lane: Lane) -> Result<Ppn, FtlError> {
        let ppb = self.geometry.pages_per_block;
        // Close a full write point first.
        if let Some(open) = *self.open_mut(lane) {
            if open.next >= ppb {
                self.state[open.block as usize] = BlockState::Closed;
                self.seal_counter += 1;
                self.seal_seq[open.block as usize] = self.seal_counter;
                *self.open_mut(lane) = None;
            }
        }
        if self.open_mut(lane).is_none() {
            let (class, prefer) = match lane {
                Lane::User { class, ch } | Lane::Gc { class, ch } => {
                    (class, Some(ch as u32 % self.geometry.channels))
                }
            };
            let rel = self.pop_free(nand, prefer).ok_or(FtlError::DeviceFull)?;
            self.state[rel as usize] = match lane {
                Lane::User { .. } => BlockState::UserOpen,
                Lane::Gc { .. } => BlockState::GcOpen,
            };
            self.class_of[rel as usize] = class as u8;
            *self.open_mut(lane) = Some(Open { block: rel, next: 0 });
        }
        let geometry = self.geometry;
        let start = self.start;
        let open = self.open_mut(lane).as_mut().expect("opened above");
        let ppn = geometry.ppn_at(BlockId(start + open.block), open.next);
        open.next += 1;
        let (block, next) = (open.block, open.next);
        self.alloc_next[block as usize] = next;
        if self.capture.is_some() {
            self.pin_inflight(block);
            self.capture.as_mut().expect("checked above").push(block);
        }
        Ok(ppn)
    }

    fn pin_inflight(&mut self, rel: u32) {
        if self.inflight[rel as usize] == 0 {
            self.inflight_blocks += 1;
        }
        self.inflight[rel as usize] += 1;
    }

    /// Start recording which blocks the following allocations touch (one
    /// entry per allocated page); each is pinned against GC until
    /// [`Self::release_inflight`]. Used by queued command execution.
    pub fn begin_capture(&mut self) {
        debug_assert!(self.capture.is_none(), "capture windows do not nest");
        self.capture = Some(Vec::new());
    }

    /// Stop recording and return the captured block list (to be released
    /// when the command is reaped).
    pub fn end_capture(&mut self) -> Vec<u32> {
        self.capture.take().expect("end_capture without begin_capture")
    }

    /// Unpin blocks captured for a queued command once the host reaps its
    /// completion.
    pub fn release_inflight(&mut self, blocks: &[u32]) {
        for &rel in blocks {
            debug_assert!(self.inflight[rel as usize] > 0, "inflight underflow");
            self.inflight[rel as usize] -= 1;
            if self.inflight[rel as usize] == 0 {
                self.inflight_blocks -= 1;
            }
        }
    }

    /// Blocks currently pinned by unreaped queued commands. `ensure_free`
    /// raises its GC watermarks by this much: pinned blocks are ineligible
    /// victims, so the same number of extra free blocks must be banked to
    /// keep GC from stalling at high queue depth.
    pub fn inflight_pinned_blocks(&self) -> usize {
        self.inflight_blocks
    }

    /// Allocate the next physical page for `wp`, opening a fresh block from
    /// the free list when needed. Host allocations rotate round-robin over
    /// their class's per-channel lanes; GC allocations go to the victim's
    /// (class, channel) lane. Class indices beyond the configured matrix
    /// clamp to the last class (an image written with more classes than
    /// this mount was configured for must still allocate somewhere). Fails
    /// with `DeviceFull` when no block is available.
    pub fn alloc(&mut self, nand: &NandArray, wp: WritePoint) -> Result<Ppn, FtlError> {
        match wp {
            WritePoint::User { class } => {
                let class = (class as usize).min(self.classes - 1);
                let ch = self.user_cursor[class];
                self.user_cursor[class] = (ch + 1) % self.user[class].len();
                let ppn = self.alloc_in_lane(nand, Lane::User { class, ch })?;
                self.placed_pages[class] += 1;
                Ok(ppn)
            }
            WritePoint::Gc { class, channel } => {
                let class = (class as usize).min(self.classes - 1);
                let ch = (channel as usize).min(self.geometry.channels as usize - 1);
                let ppn = self.alloc_in_lane(nand, Lane::Gc { class, ch })?;
                self.gc_moved_pages[class] += 1;
                Ok(ppn)
            }
        }
    }

    /// Whether `rel` may be chosen as a GC victim: closed (not a write
    /// point), no allocated-but-unprogrammed pages still in flight from a
    /// batched submission, and no pages of submitted-but-unreaped queued
    /// commands.
    pub fn victim_eligible(&self, rel: u32, nand: &NandArray) -> bool {
        self.state[rel as usize] == BlockState::Closed
            && nand.write_frontier(self.abs(rel)) >= self.alloc_next[rel as usize]
            && self.inflight[rel as usize] == 0
    }

    /// Return an erased victim to the free list.
    pub fn release(&mut self, rel: u32) {
        debug_assert_eq!(self.state[rel as usize], BlockState::Closed);
        self.state[rel as usize] = BlockState::Free;
        self.alloc_next[rel as usize] = 0;
        self.class_of[rel as usize] = UNCLASSED;
        self.free.push(rel);
    }

    /// Rebuild pool state after recovery from NAND program frontiers:
    /// untouched blocks are free, anything programmed is sealed. (Real MLC
    /// firmware also refuses to append to a block left open across power
    /// loss.) Sealed blocks recover their lifetime class from the NAND
    /// block tags (image v3); untagged blocks — v2 images and older —
    /// stay unclassed, which GC treats as the default class.
    pub fn rebuild_from_nand(&mut self, nand: &NandArray) {
        let channels = self.geometry.channels as usize;
        self.user = vec![vec![None; channels]; self.classes];
        self.user_cursor = vec![0; self.classes];
        self.gc = vec![vec![None; channels]; self.classes];
        self.free.clear();
        // A crash drops the submission queue; nothing is in flight anymore.
        self.inflight = vec![0; self.count as usize];
        self.inflight_blocks = 0;
        self.capture = None;
        for rel in 0..self.count {
            let frontier = nand.write_frontier(self.abs(rel));
            self.alloc_next[rel as usize] = frontier;
            if frontier == 0 {
                self.state[rel as usize] = BlockState::Free;
                self.class_of[rel as usize] = UNCLASSED;
                self.free.push(rel);
            } else {
                self.state[rel as usize] = BlockState::Closed;
                self.seal_counter += 1;
                self.seal_seq[rel as usize] = self.seal_counter;
                let tag = nand.block_tag(self.abs(rel));
                self.class_of[rel as usize] = if tag == UNTAGGED {
                    UNCLASSED
                } else {
                    tag.min(self.classes as u32 - 1) as u8
                };
            }
        }
    }

    /// Seal order of a closed block (lower = sealed earlier).
    pub fn seal_seq(&self, rel: u32) -> u64 {
        self.seal_seq[rel as usize]
    }

    /// Latest seal sequence handed out; `seal_counter() - seal_seq(rel)`
    /// is a block's age in seals (cost-benefit GC uses it).
    pub fn seal_counter(&self) -> u64 {
        self.seal_counter
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nand_sim::{NandTiming, SimClock};

    const USER: WritePoint = WritePoint::User { class: 0 };
    const GC0: WritePoint = WritePoint::Gc { class: 0, channel: 0 };

    fn setup() -> (BlockPool, NandArray) {
        let g = NandGeometry::new(512, 4, 10);
        let nand = NandArray::with_timing(g, NandTiming::zero(), SimClock::new());
        // Data pool: blocks 2..10 (first two "meta").
        (BlockPool::new(g, BlockId(2), 8), nand)
    }

    #[test]
    fn allocations_are_sequential_within_a_block() {
        let (mut pool, nand) = setup();
        let p0 = pool.alloc(&nand, USER).unwrap();
        let p1 = pool.alloc(&nand, USER).unwrap();
        assert_eq!(p1.0, p0.0 + 1);
        // Same block until it fills (4 pages).
        let p2 = pool.alloc(&nand, USER).unwrap();
        let p3 = pool.alloc(&nand, USER).unwrap();
        assert_eq!(nand.geometry().block_of(p0), nand.geometry().block_of(p3));
        let p4 = pool.alloc(&nand, USER).unwrap();
        assert_ne!(nand.geometry().block_of(p0), nand.geometry().block_of(p4));
        let _ = (p2, p4);
    }

    #[test]
    fn user_and_gc_write_points_use_distinct_blocks() {
        let (mut pool, nand) = setup();
        let u = pool.alloc(&nand, USER).unwrap();
        let g = pool.alloc(&nand, GC0).unwrap();
        assert_ne!(nand.geometry().block_of(u), nand.geometry().block_of(g));
    }

    #[test]
    fn classes_never_share_a_block() {
        let g = NandGeometry::new(512, 4, 12);
        let nand = NandArray::with_timing(g, NandTiming::zero(), SimClock::new());
        let mut pool = BlockPool::new(g, BlockId(0), 12).with_classes(3);
        let mut block_of_class = vec![Vec::new(); 3];
        for i in 0..24u32 {
            let class = (i % 3) as u8;
            let p = pool.alloc(&nand, WritePoint::User { class }).unwrap();
            block_of_class[class as usize].push(g.block_of(p));
        }
        for a in 0..3 {
            for b in (a + 1)..3 {
                for blk in &block_of_class[a] {
                    assert!(
                        !block_of_class[b].contains(blk),
                        "classes {a} and {b} share block {blk:?}"
                    );
                }
            }
        }
        // Class marking follows the allocation.
        let rel = pool.rel(block_of_class[1][0]).unwrap();
        assert_eq!(pool.block_class(rel), Some(1));
    }

    #[test]
    fn gc_lanes_are_per_channel() {
        let g = NandGeometry::new(512, 4, 16).with_parallelism(4, 1);
        let nand = NandArray::with_timing(g, NandTiming::zero(), SimClock::new());
        let mut pool = BlockPool::new(g, BlockId(0), 16);
        let a = pool.alloc(&nand, WritePoint::Gc { class: 0, channel: 0 }).unwrap();
        let b = pool.alloc(&nand, WritePoint::Gc { class: 0, channel: 1 }).unwrap();
        let c = pool.alloc(&nand, WritePoint::Gc { class: 0, channel: 0 }).unwrap();
        assert_ne!(g.block_of(a), g.block_of(b), "distinct channels, distinct GC blocks");
        assert_eq!(g.block_of(a), g.block_of(c), "same channel continues its open lane");
        assert_eq!(g.channel_of_block(g.block_of(a)), 0);
        assert_eq!(g.channel_of_block(g.block_of(b)), 1);
    }

    #[test]
    fn lane_steal_fires_when_preferred_channel_is_dry() {
        let g = NandGeometry::new(512, 4, 4).with_parallelism(2, 1);
        let nand = NandArray::with_timing(g, NandTiming::zero(), SimClock::new());
        let mut pool = BlockPool::new(g, BlockId(0), 4);
        // Blocks 0 and 2 are channel 0; drain them through the channel-0
        // GC lane (2 blocks x 4 pages).
        for _ in 0..8 {
            pool.alloc(&nand, WritePoint::Gc { class: 0, channel: 0 }).unwrap();
        }
        assert_eq!(pool.lane_steals(), 0);
        // The ninth allocation must open a third block for channel 0 —
        // only channel-1 blocks remain, so the lane steals one.
        let p = pool.alloc(&nand, WritePoint::Gc { class: 0, channel: 0 }).unwrap();
        assert_eq!(g.channel_of_block(g.block_of(p)), 1, "stolen block is foreign");
        assert_eq!(pool.lane_steals(), 1, "cross-channel fallback must be counted");
    }

    #[test]
    fn exhaustion_yields_device_full() {
        let (mut pool, nand) = setup();
        // 8 blocks * 4 pages = 32 allocations, all to the user point.
        for _ in 0..32 {
            pool.alloc(&nand, USER).unwrap();
        }
        assert_eq!(pool.alloc(&nand, USER), Err(FtlError::DeviceFull));
        assert_eq!(pool.free_count(), 0);
    }

    #[test]
    fn full_blocks_become_victim_eligible() {
        let (mut pool, mut nand) = setup();
        for _ in 0..4 {
            let p = pool.alloc(&nand, USER).unwrap();
            nand.program(p, &[0u8; 512]).unwrap();
        }
        // Block not yet closed: closing happens lazily on the next alloc.
        pool.alloc(&nand, USER).unwrap();
        let closed: Vec<u32> = (0..8).filter(|&r| pool.victim_eligible(r, &nand)).collect();
        assert_eq!(closed.len(), 1);
    }

    #[test]
    fn unprogrammed_batch_pages_block_victim_eligibility() {
        let (mut pool, mut nand) = setup();
        // Fill a block with allocations but only program three of the four
        // pages — the last allocation is still in flight.
        let mut pages = Vec::new();
        for _ in 0..4 {
            pages.push(pool.alloc(&nand, USER).unwrap());
        }
        for p in &pages[..3] {
            nand.program(*p, &[0u8; 512]).unwrap();
        }
        pool.alloc(&nand, USER).unwrap(); // closes the full block
        let rel = pool.rel(nand.geometry().block_of(pages[0])).unwrap();
        assert_eq!(pool.state(rel), BlockState::Closed);
        assert!(!pool.victim_eligible(rel, &nand), "in-flight page must pin the block");
        nand.program(pages[3], &[0u8; 512]).unwrap();
        assert!(pool.victim_eligible(rel, &nand));
    }

    #[test]
    fn release_returns_block_to_free_list() {
        let (mut pool, mut nand) = setup();
        for _ in 0..5 {
            let p = pool.alloc(&nand, USER).unwrap();
            nand.program(p, &[0u8; 512]).unwrap();
        }
        let victim = (0..8).find(|&r| pool.victim_eligible(r, &nand)).unwrap();
        let before = pool.free_count();
        nand.erase(pool.abs(victim)).unwrap();
        pool.release(victim);
        assert_eq!(pool.free_count(), before + 1);
        assert_eq!(pool.state(victim), BlockState::Free);
        assert_eq!(pool.block_class(victim), None, "release clears the class");
    }

    #[test]
    fn wear_leveling_prefers_low_erase_count() {
        let (mut pool, mut nand) = setup();
        // Wear out block rel=0 (abs 2) heavily.
        for _ in 0..5 {
            nand.erase(BlockId(2)).unwrap();
        }
        let p = pool.alloc(&nand, USER).unwrap();
        // Allocation should come from some block other than the worn one.
        assert_ne!(nand.geometry().block_of(p), BlockId(2));
    }

    #[test]
    fn rebuild_from_nand_seals_programmed_blocks() {
        let (mut pool, mut nand) = setup();
        let p = pool.alloc(&nand, USER).unwrap();
        nand.program(p, &[0u8; 512]).unwrap();
        pool.rebuild_from_nand(&nand);
        let rel = pool.rel(nand.geometry().block_of(p)).unwrap();
        assert_eq!(pool.state(rel), BlockState::Closed);
        assert_eq!(pool.free_count(), 7);
    }

    #[test]
    fn rebuild_recovers_classes_from_nand_tags() {
        let g = NandGeometry::new(512, 4, 8);
        let mut nand = NandArray::with_timing(g, NandTiming::zero(), SimClock::new());
        let mut pool = BlockPool::new(g, BlockId(0), 8).with_classes(3);
        let p0 = pool.alloc(&nand, WritePoint::User { class: 2 }).unwrap();
        let p1 = pool.alloc(&nand, WritePoint::User { class: 1 }).unwrap();
        nand.program(p0, &[0u8; 512]).unwrap();
        nand.program(p1, &[0u8; 512]).unwrap();
        // Mirror what the FTL does after alloc: tag the blocks.
        for (p, class) in [(p0, 2u32), (p1, 1)] {
            nand.set_block_tag(g.block_of(p), class);
        }
        pool.rebuild_from_nand(&nand);
        assert_eq!(pool.block_class(pool.rel(g.block_of(p0)).unwrap()), Some(2));
        assert_eq!(pool.block_class(pool.rel(g.block_of(p1)).unwrap()), Some(1));
        // An untagged programmed block (v2 image) recovers as unclassed.
        let mut nand2 = NandArray::with_timing(g, NandTiming::zero(), SimClock::new());
        nand2.program(g.first_ppn(BlockId(0)), &[0u8; 512]).unwrap();
        pool.rebuild_from_nand(&nand2);
        assert_eq!(pool.block_class(0), None);
    }

    #[test]
    fn user_allocations_stripe_across_channels() {
        let g = NandGeometry::new(512, 4, 16).with_parallelism(4, 1);
        let nand = NandArray::with_timing(g, NandTiming::zero(), SimClock::new());
        let mut pool = BlockPool::new(g, BlockId(0), 16);
        let ppns: Vec<Ppn> = (0..4).map(|_| pool.alloc(&nand, USER).unwrap()).collect();
        let mut channels: Vec<u32> =
            ppns.iter().map(|&p| g.channel_of_block(g.block_of(p))).collect();
        channels.sort_unstable();
        channels.dedup();
        assert_eq!(channels.len(), 4, "4 consecutive host pages span 4 channels");
        // The fifth allocation wraps back to the first lane's open block.
        let p4 = pool.alloc(&nand, USER).unwrap();
        assert_eq!(g.block_of(p4), g.block_of(ppns[0]));
        assert_eq!(p4.0, ppns[0].0 + 1);
    }

    #[test]
    fn captured_blocks_pin_victims_until_released() {
        let (mut pool, mut nand) = setup();
        // Fill one block inside a capture window, program every page.
        pool.begin_capture();
        let mut pages = Vec::new();
        for _ in 0..4 {
            let p = pool.alloc(&nand, USER).unwrap();
            nand.program(p, &[0u8; 512]).unwrap();
            pages.push(p);
        }
        let captured = pool.end_capture();
        assert_eq!(captured.len(), 4);
        pool.alloc(&nand, USER).unwrap(); // closes the full block
        let rel = pool.rel(nand.geometry().block_of(pages[0])).unwrap();
        assert_eq!(pool.state(rel), BlockState::Closed);
        assert_eq!(pool.inflight_pinned_blocks(), 1);
        assert!(
            !pool.victim_eligible(rel, &nand),
            "fully-programmed block must stay pinned while its command is unreaped"
        );
        pool.release_inflight(&captured);
        assert_eq!(pool.inflight_pinned_blocks(), 0);
        assert!(pool.victim_eligible(rel, &nand));
    }

    #[test]
    fn overlapping_command_pins_release_independently() {
        let (mut pool, mut nand) = setup();
        pool.begin_capture();
        let p0 = pool.alloc(&nand, USER).unwrap();
        nand.program(p0, &[0u8; 512]).unwrap();
        let first = pool.end_capture();
        pool.begin_capture();
        let p1 = pool.alloc(&nand, USER).unwrap();
        nand.program(p1, &[0u8; 512]).unwrap();
        let second = pool.end_capture();
        // Both commands touched the same open block.
        assert_eq!(first, second);
        assert_eq!(pool.inflight_pinned_blocks(), 1);
        pool.release_inflight(&first);
        assert_eq!(pool.inflight_pinned_blocks(), 1, "second command still pins");
        pool.release_inflight(&second);
        assert_eq!(pool.inflight_pinned_blocks(), 0);
    }

    #[test]
    fn rebuild_clears_inflight_pins() {
        let (mut pool, mut nand) = setup();
        pool.begin_capture();
        let p = pool.alloc(&nand, USER).unwrap();
        nand.program(p, &[0u8; 512]).unwrap();
        let _captured = pool.end_capture();
        assert_eq!(pool.inflight_pinned_blocks(), 1);
        pool.rebuild_from_nand(&nand);
        assert_eq!(pool.inflight_pinned_blocks(), 0);
    }

    #[test]
    fn placement_gauges_track_allocations() {
        let g = NandGeometry::new(512, 4, 12);
        let nand = NandArray::with_timing(g, NandTiming::zero(), SimClock::new());
        let mut pool = BlockPool::new(g, BlockId(0), 12).with_classes(2);
        for _ in 0..3 {
            pool.alloc(&nand, WritePoint::User { class: 1 }).unwrap();
        }
        pool.alloc(&nand, WritePoint::User { class: 0 }).unwrap();
        pool.alloc(&nand, WritePoint::Gc { class: 1, channel: 0 }).unwrap();
        assert_eq!(pool.placed_pages(0), 1);
        assert_eq!(pool.placed_pages(1), 3);
        assert_eq!(pool.gc_moved_pages(1), 1);
        assert_eq!(pool.open_blocks(0), 1);
        assert_eq!(pool.open_blocks(1), 2, "one user lane + one GC lane open");
    }

    #[test]
    fn rel_abs_round_trip() {
        let (pool, _) = setup();
        assert_eq!(pool.abs(3), BlockId(5));
        assert_eq!(pool.rel(BlockId(5)), Some(3));
        assert_eq!(pool.rel(BlockId(1)), None); // meta area
        assert_eq!(pool.rel(BlockId(10)), None); // beyond pool
    }
}
