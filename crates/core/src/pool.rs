//! Data-pool block management: free list, active write points, block states.
//!
//! The pool tracks which data blocks are free (erased), which two are open
//! as write points (one for host writes, one for GC copyback — keeping hot
//! host data and cold relocated data apart), and which are closed and thus
//! eligible as GC victims.

use crate::error::FtlError;
use nand_sim::{BlockId, NandArray, NandGeometry, Ppn};

/// Lifecycle of a data-pool block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockState {
    /// Erased, on the free list.
    Free,
    /// Open as the host-write point.
    UserOpen,
    /// Open as the GC copyback destination.
    GcOpen,
    /// Fully or partially programmed and sealed; GC victim candidate.
    Closed,
}

/// Which write point an allocation feeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WritePoint {
    /// Host data.
    User,
    /// GC copyback data.
    Gc,
}

#[derive(Debug, Clone, Copy)]
struct Open {
    block: u32, // relative block index
    next: u32,  // next in-block page
}

/// The data-pool allocator.
#[derive(Debug)]
pub struct BlockPool {
    geometry: NandGeometry,
    start: u32,
    count: u32,
    state: Vec<BlockState>,
    free: Vec<u32>,
    user: Option<Open>,
    gc: Option<Open>,
    /// Monotonic sequence assigned when a block is sealed (FIFO GC order).
    seal_seq: Vec<u64>,
    seal_counter: u64,
}

impl BlockPool {
    /// A pool over data blocks `[start, start + count)`, all erased.
    pub fn new(geometry: NandGeometry, start: BlockId, count: u32) -> Self {
        Self {
            geometry,
            start: start.0,
            count,
            state: vec![BlockState::Free; count as usize],
            free: (0..count).rev().collect(),
            user: None,
            gc: None,
            seal_seq: vec![0; count as usize],
            seal_counter: 0,
        }
    }

    /// Absolute block id for pool-relative index `rel`.
    #[inline]
    pub fn abs(&self, rel: u32) -> BlockId {
        BlockId(self.start + rel)
    }

    /// Pool-relative index for absolute `block`, if it is in the pool.
    #[inline]
    pub fn rel(&self, block: BlockId) -> Option<u32> {
        block.0.checked_sub(self.start).filter(|&r| r < self.count)
    }

    /// Number of erased blocks on the free list.
    pub fn free_count(&self) -> usize {
        self.free.len()
    }

    /// Number of blocks in the pool.
    pub fn block_count(&self) -> u32 {
        self.count
    }

    /// State of pool-relative block `rel`.
    pub fn state(&self, rel: u32) -> BlockState {
        self.state[rel as usize]
    }

    /// Pop the free block with the lowest erase count (simple wear leveling).
    fn pop_free(&mut self, nand: &NandArray) -> Option<u32> {
        if self.free.is_empty() {
            return None;
        }
        let (pos, _) = self
            .free
            .iter()
            .enumerate()
            .min_by_key(|(_, &rel)| nand.erase_count(self.abs(rel)))?;
        Some(self.free.swap_remove(pos))
    }

    fn open_mut(&mut self, wp: WritePoint) -> &mut Option<Open> {
        match wp {
            WritePoint::User => &mut self.user,
            WritePoint::Gc => &mut self.gc,
        }
    }

    /// Allocate the next physical page for `wp`, opening a fresh block from
    /// the free list when needed. Fails with `DeviceFull` when no block is
    /// available.
    pub fn alloc(&mut self, nand: &NandArray, wp: WritePoint) -> Result<Ppn, FtlError> {
        let ppb = self.geometry.pages_per_block;
        // Close a full write point first.
        if let Some(open) = *self.open_mut(wp) {
            if open.next >= ppb {
                self.state[open.block as usize] = BlockState::Closed;
                self.seal_counter += 1;
                self.seal_seq[open.block as usize] = self.seal_counter;
                *self.open_mut(wp) = None;
            }
        }
        if self.open_mut(wp).is_none() {
            let rel = self.pop_free(nand).ok_or(FtlError::DeviceFull)?;
            self.state[rel as usize] = match wp {
                WritePoint::User => BlockState::UserOpen,
                WritePoint::Gc => BlockState::GcOpen,
            };
            *self.open_mut(wp) = Some(Open { block: rel, next: 0 });
        }
        let geometry = self.geometry;
        let start = self.start;
        let open = self.open_mut(wp).as_mut().expect("opened above");
        let ppn = geometry.ppn_at(BlockId(start + open.block), open.next);
        open.next += 1;
        Ok(ppn)
    }

    /// Whether `rel` may be chosen as a GC victim (closed, not a write point).
    pub fn victim_eligible(&self, rel: u32) -> bool {
        self.state[rel as usize] == BlockState::Closed
    }

    /// Return an erased victim to the free list.
    pub fn release(&mut self, rel: u32) {
        debug_assert_eq!(self.state[rel as usize], BlockState::Closed);
        self.state[rel as usize] = BlockState::Free;
        self.free.push(rel);
    }

    /// Rebuild pool state after recovery from NAND program frontiers:
    /// untouched blocks are free, anything programmed is sealed. (Real MLC
    /// firmware also refuses to append to a block left open across power
    /// loss.)
    pub fn rebuild_from_nand(&mut self, nand: &NandArray) {
        self.user = None;
        self.gc = None;
        self.free.clear();
        for rel in 0..self.count {
            if nand.write_frontier(self.abs(rel)) == 0 {
                self.state[rel as usize] = BlockState::Free;
                self.free.push(rel);
            } else {
                self.state[rel as usize] = BlockState::Closed;
                self.seal_counter += 1;
                self.seal_seq[rel as usize] = self.seal_counter;
            }
        }
    }

    /// Seal order of a closed block (lower = sealed earlier).
    pub fn seal_seq(&self, rel: u32) -> u64 {
        self.seal_seq[rel as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nand_sim::{NandTiming, SimClock};

    fn setup() -> (BlockPool, NandArray) {
        let g = NandGeometry::new(512, 4, 10);
        let nand = NandArray::with_timing(g, NandTiming::zero(), SimClock::new());
        // Data pool: blocks 2..10 (first two "meta").
        (BlockPool::new(g, BlockId(2), 8), nand)
    }

    #[test]
    fn allocations_are_sequential_within_a_block() {
        let (mut pool, nand) = setup();
        let p0 = pool.alloc(&nand, WritePoint::User).unwrap();
        let p1 = pool.alloc(&nand, WritePoint::User).unwrap();
        assert_eq!(p1.0, p0.0 + 1);
        // Same block until it fills (4 pages).
        let p2 = pool.alloc(&nand, WritePoint::User).unwrap();
        let p3 = pool.alloc(&nand, WritePoint::User).unwrap();
        assert_eq!(nand.geometry().block_of(p0), nand.geometry().block_of(p3));
        let p4 = pool.alloc(&nand, WritePoint::User).unwrap();
        assert_ne!(nand.geometry().block_of(p0), nand.geometry().block_of(p4));
        let _ = (p2, p4);
    }

    #[test]
    fn user_and_gc_write_points_use_distinct_blocks() {
        let (mut pool, nand) = setup();
        let u = pool.alloc(&nand, WritePoint::User).unwrap();
        let g = pool.alloc(&nand, WritePoint::Gc).unwrap();
        assert_ne!(nand.geometry().block_of(u), nand.geometry().block_of(g));
    }

    #[test]
    fn exhaustion_yields_device_full() {
        let (mut pool, nand) = setup();
        // 8 blocks * 4 pages = 32 allocations, all to the user point.
        for _ in 0..32 {
            pool.alloc(&nand, WritePoint::User).unwrap();
        }
        assert_eq!(pool.alloc(&nand, WritePoint::User), Err(FtlError::DeviceFull));
        assert_eq!(pool.free_count(), 0);
    }

    #[test]
    fn full_blocks_become_victim_eligible() {
        let (mut pool, nand) = setup();
        for _ in 0..4 {
            pool.alloc(&nand, WritePoint::User).unwrap();
        }
        // Block not yet closed: closing happens lazily on the next alloc.
        pool.alloc(&nand, WritePoint::User).unwrap();
        let closed: Vec<u32> = (0..8).filter(|&r| pool.victim_eligible(r)).collect();
        assert_eq!(closed.len(), 1);
    }

    #[test]
    fn release_returns_block_to_free_list() {
        let (mut pool, nand) = setup();
        for _ in 0..5 {
            pool.alloc(&nand, WritePoint::User).unwrap();
        }
        let victim = (0..8).find(|&r| pool.victim_eligible(r)).unwrap();
        let before = pool.free_count();
        pool.release(victim);
        assert_eq!(pool.free_count(), before + 1);
        assert_eq!(pool.state(victim), BlockState::Free);
    }

    #[test]
    fn wear_leveling_prefers_low_erase_count() {
        let (mut pool, mut nand) = setup();
        // Wear out block rel=0 (abs 2) heavily.
        for _ in 0..5 {
            nand.erase(BlockId(2)).unwrap();
        }
        let p = pool.alloc(&nand, WritePoint::User).unwrap();
        // Allocation should come from some block other than the worn one.
        assert_ne!(nand.geometry().block_of(p), BlockId(2));
    }

    #[test]
    fn rebuild_from_nand_seals_programmed_blocks() {
        let (mut pool, mut nand) = setup();
        let p = pool.alloc(&nand, WritePoint::User).unwrap();
        nand.program(p, &[0u8; 512]).unwrap();
        pool.rebuild_from_nand(&nand);
        let rel = pool.rel(nand.geometry().block_of(p)).unwrap();
        assert_eq!(pool.state(rel), BlockState::Closed);
        assert_eq!(pool.free_count(), 7);
    }

    #[test]
    fn rel_abs_round_trip() {
        let (pool, _) = setup();
        assert_eq!(pool.abs(3), BlockId(5));
        assert_eq!(pool.rel(BlockId(5)), Some(3));
        assert_eq!(pool.rel(BlockId(1)), None); // meta area
        assert_eq!(pool.rel(BlockId(10)), None); // beyond pool
    }
}
