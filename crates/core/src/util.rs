//! Small utilities: CRC-32C checksums and little-endian codec helpers.
//!
//! The FTL persists mapping metadata (delta-log pages, checkpoint pages) to
//! flash; each such page carries a CRC so recovery can detect torn or
//! partially programmed meta pages.

/// CRC-32C (Castagnoli) over `data`, table-driven.
pub fn crc32c(data: &[u8]) -> u32 {
    const POLY: u32 = 0x82F6_3B78;
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            }
            *entry = crc;
        }
        t
    });
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ table[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Write a `u32` little-endian at `buf[off..off+4]` and return the next offset.
#[inline]
pub fn put_u32(buf: &mut [u8], off: usize, v: u32) -> usize {
    buf[off..off + 4].copy_from_slice(&v.to_le_bytes());
    off + 4
}

/// Write a `u64` little-endian at `buf[off..off+8]` and return the next offset.
#[inline]
pub fn put_u64(buf: &mut [u8], off: usize, v: u64) -> usize {
    buf[off..off + 8].copy_from_slice(&v.to_le_bytes());
    off + 8
}

/// Read a `u32` little-endian from `buf[off..off+4]`.
#[inline]
pub fn get_u32(buf: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(buf[off..off + 4].try_into().unwrap())
}

/// Read a `u64` little-endian from `buf[off..off+8]`.
#[inline]
pub fn get_u64(buf: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(buf[off..off + 8].try_into().unwrap())
}

/// Integer ceiling division.
#[inline]
pub fn div_ceil_u64(a: u64, b: u64) -> u64 {
    a.div_ceil(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32c_known_vector() {
        // RFC 3720 test vector: 32 bytes of zeros.
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        // "123456789"
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
    }

    #[test]
    fn crc32c_detects_single_bit_flip() {
        let mut data = vec![0xA5u8; 100];
        let c1 = crc32c(&data);
        data[50] ^= 0x01;
        assert_ne!(c1, crc32c(&data));
    }

    #[test]
    fn codec_round_trips() {
        let mut buf = [0u8; 16];
        let off = put_u32(&mut buf, 0, 0xDEAD_BEEF);
        let off = put_u64(&mut buf, off, 0x0123_4567_89AB_CDEF);
        assert_eq!(off, 12);
        assert_eq!(get_u32(&buf, 0), 0xDEAD_BEEF);
        assert_eq!(get_u64(&buf, 4), 0x0123_4567_89AB_CDEF);
    }

    #[test]
    fn div_ceil_matches_manual() {
        assert_eq!(div_ceil_u64(0, 4), 0);
        assert_eq!(div_ceil_u64(1, 4), 1);
        assert_eq!(div_ceil_u64(4, 4), 1);
        assert_eq!(div_ceil_u64(5, 4), 2);
    }
}
