//! Time-series flight recorder: per-epoch deltas of everything the device
//! already counts.
//!
//! The FTL calls [`FlightRecorder::due`] with the simulated clock at every
//! command completion; when an epoch boundary has passed it seals one
//! [`EpochRecord`] holding the *delta* of [`DeviceStats`], the per-stream
//! WA-ledger blame, per-unit busy time, free-block headroom and the
//! epoch's latency windows since the previous seal. Records land in a
//! fixed-capacity [`EpochRing`]; evicted epochs fold into an accumulator
//! so the standing guarantee holds for the whole run:
//!
//! > evicted + retained + current-partial deltas == cumulative counters,
//! > exactly, at every moment.
//!
//! Epochs are clock-driven but sealed lazily at command boundaries: the
//! sampler never advances the simulated clock (it only reads values the
//! FTL passes in), so a monitored run is bit-identical to an unmonitored
//! one — same clock, same on-disk image. A quiet device crossing several
//! boundary multiples seals a single epoch spanning them rather than a
//! train of empty records.
//!
//! At each seal the configured [`SloConfig`] thresholds are evaluated
//! against the epoch's observation; fired [`Alert`]s are stored here, put
//! on the telemetry command ring by the FTL, and exported by `sharectl
//! monitor`/`doctor`.

use crate::stats::DeviceStats;
use share_telemetry::json::{count, s, Json};
use share_telemetry::{Alert, EpochObservation, EpochRing, Histogram, SloConfig};

/// Hard cap on stored alert events (the ring of epochs is bounded, the
/// alert log should be too; beyond this only the count survives).
const MAX_ALERTS: usize = 4096;

/// Per-stream WA-ledger delta for one epoch: `(foreground write pages,
/// blamed background pages by BlameKind)`, indexed by stream id.
pub type WaDelta = (u64, [u64; 3]);

/// One sealed epoch: everything is a delta over `[start_ns, end_ns]`.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochRecord {
    /// Epoch index (0-based, monotonic across evictions).
    pub epoch: u64,
    /// Seal time of the previous epoch (device creation for epoch 0).
    pub start_ns: u64,
    /// Simulated time this epoch sealed at.
    pub end_ns: u64,
    /// Device-counter deltas accumulated during the epoch.
    pub stats: DeviceStats,
    /// Per-stream WA-ledger deltas, indexed by stream id.
    pub wa: Vec<WaDelta>,
    /// Free data blocks at seal time (gauge, not a delta).
    pub free_blocks: u64,
    /// Queued commands in flight at seal time (gauge).
    pub inflight: u64,
    /// Per-NAND-unit busy-time deltas, indexed like the device's units.
    pub unit_busy_ns: Vec<u64>,
    /// Host-read latency window for this epoch.
    pub read_hist: Histogram,
    /// Host-write latency window for this epoch.
    pub write_hist: Histogram,
    /// Alerts the SLO engine fired at this epoch's boundary.
    pub alerts: Vec<Alert>,
}

impl EpochRecord {
    /// JSON form (one row of `sharectl monitor --format json`). `labels`
    /// names the stream ids, `unit_labels` the NAND units.
    pub fn to_json(&self, labels: &[String], unit_labels: &[String]) -> Json {
        let wa = Json::Obj(
            self.wa
                .iter()
                .enumerate()
                .filter(|(_, &(fg, bg))| fg != 0 || bg != [0; 3])
                .map(|(i, &(fg, bg))| {
                    let label = labels
                        .get(i)
                        .cloned()
                        .unwrap_or_else(|| format!("stream{i}"));
                    (
                        label,
                        Json::obj(vec![
                            ("fg_pages", count(fg)),
                            ("bg_gc", count(bg[0])),
                            ("bg_log", count(bg[1])),
                            ("bg_ckpt", count(bg[2])),
                        ]),
                    )
                })
                .collect(),
        );
        let units = Json::Obj(
            self.unit_busy_ns
                .iter()
                .enumerate()
                .map(|(i, &busy)| {
                    let label =
                        unit_labels.get(i).cloned().unwrap_or_else(|| format!("u{i}"));
                    (label, count(busy))
                })
                .collect(),
        );
        let mut fields = vec![
            ("epoch", count(self.epoch)),
            ("start_ns", count(self.start_ns)),
            ("end_ns", count(self.end_ns)),
            ("host_reads", count(self.stats.host_reads)),
            ("host_writes", count(self.stats.host_writes)),
            ("nand_reads", count(self.stats.nand.page_reads)),
            ("nand_programs", count(self.stats.nand.page_programs)),
            ("nand_erases", count(self.stats.nand.block_erases)),
            ("gc_events", count(self.stats.gc_events)),
            ("copyback_pages", count(self.stats.copyback_pages)),
            ("gc_stall_ns", count(self.stats.gc_stall_ns)),
            ("meta_page_writes", count(self.stats.meta_page_writes)),
            ("free_blocks", count(self.free_blocks)),
            ("inflight", count(self.inflight)),
            ("wa", wa),
            ("unit_busy_ns", units),
        ];
        if !self.read_hist.is_empty() {
            fields.push(("read_p50_ns", count(self.read_hist.quantile(0.50))));
            fields.push(("read_p99_ns", count(self.read_hist.quantile(0.99))));
        }
        if !self.write_hist.is_empty() {
            fields.push(("write_p50_ns", count(self.write_hist.quantile(0.50))));
            fields.push(("write_p99_ns", count(self.write_hist.quantile(0.99))));
        }
        if !self.alerts.is_empty() {
            fields.push((
                "alerts",
                Json::Arr(self.alerts.iter().map(Alert::to_json).collect()),
            ));
        }
        Json::obj(fields)
    }
}

/// What the FTL samples and hands to [`FlightRecorder::seal`] — all plain
/// read-outs of state the device already tracks.
#[derive(Debug, Clone)]
pub struct EpochSample {
    /// Simulated clock now.
    pub now_ns: u64,
    /// Cumulative device counters now.
    pub stats: DeviceStats,
    /// Cumulative per-stream WA ledger now (`Telemetry::wa_raw`).
    pub wa: Vec<WaDelta>,
    /// Cumulative per-unit busy time now.
    pub unit_busy_ns: Vec<u64>,
    /// Free data blocks (gauge).
    pub free_blocks: u64,
    /// Queued commands in flight (gauge).
    pub inflight: u64,
    /// Wear skew now (for the SLO engine).
    pub wear_skew: f64,
    /// Remaining-life fraction now (for the SLO engine).
    pub remaining_life: f64,
    /// This epoch's latency windows (`Telemetry::take_epoch_windows`).
    pub read_hist: Histogram,
    pub write_hist: Histogram,
}

/// What one seal produced, for the FTL to forward (alerts onto the
/// command ring, the busy row into the tracer's utilization series).
#[derive(Debug, Clone)]
pub struct SealOutcome {
    /// Index of the epoch just sealed.
    pub epoch: u64,
    /// Its seal time.
    pub end_ns: u64,
    /// Alerts fired at this boundary.
    pub alerts: Vec<Alert>,
    /// The epoch's per-unit busy deltas (same row stored in the record).
    pub unit_busy_ns: Vec<u64>,
}

/// The sim-clock-driven epoch sampler owned by one device.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    epoch_ns: u64,
    slo: SloConfig,
    ring: EpochRing<EpochRecord>,
    /// First boundary not yet sealed past.
    next_boundary_ns: u64,
    /// Epochs sealed so far (index of the next epoch).
    sealed: u64,
    /// Read-outs at the previous seal (zeros at creation, so the sum of
    /// all epoch deltas equals the cumulative counters from zero).
    base_end_ns: u64,
    base_stats: DeviceStats,
    base_wa: Vec<WaDelta>,
    base_busy: Vec<u64>,
    /// Deltas of epochs that rolled off the ring, folded together.
    evicted_stats: DeviceStats,
    evicted_wa: Vec<WaDelta>,
    /// Every alert fired, capped at [`MAX_ALERTS`] stored events.
    alerts: Vec<Alert>,
    alerts_dropped: u64,
}

impl FlightRecorder {
    /// A recorder sealing every `epoch_ns` of simulated time into a ring
    /// of `ring_cap` records, starting its first epoch at `start_ns`.
    pub fn new(epoch_ns: u64, ring_cap: usize, slo: SloConfig, start_ns: u64) -> Self {
        debug_assert!(epoch_ns > 0);
        FlightRecorder {
            epoch_ns,
            slo,
            ring: EpochRing::new(ring_cap),
            next_boundary_ns: (start_ns / epoch_ns + 1) * epoch_ns,
            sealed: 0,
            base_end_ns: start_ns,
            base_stats: DeviceStats::default(),
            base_wa: Vec::new(),
            base_busy: Vec::new(),
            evicted_stats: DeviceStats::default(),
            evicted_wa: Vec::new(),
            alerts: Vec::new(),
            alerts_dropped: 0,
        }
    }

    /// The configured epoch length.
    pub fn epoch_ns(&self) -> u64 {
        self.epoch_ns
    }

    /// The configured thresholds.
    pub fn slo(&self) -> SloConfig {
        self.slo
    }

    /// Whether the clock has crossed the next epoch boundary (i.e. a
    /// `seal` is owed). Pure read — never advances anything.
    pub fn due(&self, now_ns: u64) -> bool {
        now_ns >= self.next_boundary_ns
    }

    /// Seal the epoch ending now. The record's deltas cover everything
    /// since the previous seal; the next boundary is the first multiple of
    /// `epoch_ns` strictly after `sample.now_ns` (a long-idle device seals
    /// one spanning epoch, not a train of empty ones).
    pub fn seal(&mut self, sample: EpochSample) -> SealOutcome {
        let now = sample.now_ns;
        let stats_delta = sample.stats.delta_since(&self.base_stats);
        let wa_delta = diff_wa(&sample.wa, &self.base_wa);
        let busy_delta: Vec<u64> = sample
            .unit_busy_ns
            .iter()
            .enumerate()
            .map(|(i, &b)| b - self.base_busy.get(i).copied().unwrap_or(0))
            .collect();

        let obs = EpochObservation {
            epoch: self.sealed,
            end_ns: now,
            write_p99_ns: (!sample.write_hist.is_empty())
                .then(|| sample.write_hist.quantile(0.99)),
            read_p99_ns: (!sample.read_hist.is_empty())
                .then(|| sample.read_hist.quantile(0.99)),
            gc_stall_delta_ns: stats_delta.gc_stall_ns,
            free_blocks: sample.free_blocks,
            wear_skew: sample.wear_skew,
            remaining_life: sample.remaining_life,
        };
        let fired = self.slo.evaluate(&obs);
        for &a in &fired {
            if self.alerts.len() < MAX_ALERTS {
                self.alerts.push(a);
            } else {
                self.alerts_dropped += 1;
            }
        }

        let record = EpochRecord {
            epoch: self.sealed,
            start_ns: self.base_end_ns,
            end_ns: now,
            stats: stats_delta,
            wa: wa_delta,
            free_blocks: sample.free_blocks,
            inflight: sample.inflight,
            unit_busy_ns: busy_delta.clone(),
            read_hist: sample.read_hist,
            write_hist: sample.write_hist,
            alerts: fired.clone(),
        };
        if let Some(evicted) = self.ring.push(record) {
            self.evicted_stats.accumulate(&evicted.stats);
            accumulate_wa(&mut self.evicted_wa, &evicted.wa);
        }

        let outcome = SealOutcome {
            epoch: self.sealed,
            end_ns: now,
            alerts: fired,
            unit_busy_ns: busy_delta,
        };
        self.sealed += 1;
        self.base_end_ns = now;
        self.base_stats = sample.stats;
        self.base_wa = sample.wa;
        self.base_busy = sample.unit_busy_ns;
        self.next_boundary_ns = (now / self.epoch_ns + 1) * self.epoch_ns;
        outcome
    }

    /// Every alert fired so far (capped; see `alerts_dropped`).
    pub fn alerts(&self) -> &[Alert] {
        &self.alerts
    }

    /// Whether any stored alert is critical.
    pub fn any_critical(&self) -> bool {
        self.alerts
            .iter()
            .any(|a| a.severity == share_telemetry::AlertSeverity::Critical)
    }

    /// A point-in-time copy of the series. `sample`-like read-outs of the
    /// *current* cumulative state close the books: `tail_stats` is the
    /// not-yet-sealed partial epoch, so `evicted + retained + tail` equals
    /// the cumulative counters exactly.
    pub fn snapshot(&self, now_ns: u64, stats: &DeviceStats, wa: &[WaDelta]) -> FlightSnapshot {
        FlightSnapshot {
            epoch_ns: self.epoch_ns,
            sealed: self.sealed,
            dropped: self.ring.evicted(),
            labels: Vec::new(),
            unit_labels: Vec::new(),
            epochs: self.ring.iter().cloned().collect(),
            evicted_stats: self.evicted_stats,
            evicted_wa: self.evicted_wa.clone(),
            tail_start_ns: self.base_end_ns,
            tail_end_ns: now_ns,
            tail_stats: stats.delta_since(&self.base_stats),
            tail_wa: diff_wa(wa, &self.base_wa),
            alerts: self.alerts.clone(),
            alerts_dropped: self.alerts_dropped,
        }
    }
}

/// Element-wise `current - base` over per-stream WA rows; streams interned
/// after the base was taken diff against zero.
fn diff_wa(current: &[WaDelta], base: &[WaDelta]) -> Vec<WaDelta> {
    current
        .iter()
        .enumerate()
        .map(|(i, &(fg, bg))| {
            let (bfg, bbg) = base.get(i).copied().unwrap_or((0, [0; 3]));
            (fg - bfg, [bg[0] - bbg[0], bg[1] - bbg[1], bg[2] - bbg[2]])
        })
        .collect()
}

/// Element-wise `acc += delta`, growing `acc` as streams appear.
fn accumulate_wa(acc: &mut Vec<WaDelta>, delta: &[WaDelta]) {
    if acc.len() < delta.len() {
        acc.resize(delta.len(), (0, [0; 3]));
    }
    for (a, &(fg, bg)) in acc.iter_mut().zip(delta) {
        a.0 += fg;
        a.1[0] += bg[0];
        a.1[1] += bg[1];
        a.1[2] += bg[2];
    }
}

/// A point-in-time export of the flight recorder's series.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightSnapshot {
    /// Configured epoch length.
    pub epoch_ns: u64,
    /// Epochs sealed over the run.
    pub sealed: u64,
    /// Sealed epochs that rolled off the ring.
    pub dropped: u64,
    /// Stream id → label (filled by the device).
    pub labels: Vec<String>,
    /// Unit index → label (filled by the device).
    pub unit_labels: Vec<String>,
    /// Retained epochs, oldest first.
    pub epochs: Vec<EpochRecord>,
    /// Folded deltas of the dropped epochs.
    pub evicted_stats: DeviceStats,
    /// Folded per-stream WA deltas of the dropped epochs.
    pub evicted_wa: Vec<WaDelta>,
    /// Start of the current partial epoch (last seal time).
    pub tail_start_ns: u64,
    /// Snapshot time.
    pub tail_end_ns: u64,
    /// Deltas accumulated since the last seal (the partial epoch).
    pub tail_stats: DeviceStats,
    /// Per-stream WA deltas since the last seal.
    pub tail_wa: Vec<WaDelta>,
    /// Every alert fired (capped).
    pub alerts: Vec<Alert>,
    /// Alerts beyond the cap (count only).
    pub alerts_dropped: u64,
}

impl FlightSnapshot {
    /// Sum of every delta the recorder has ever attributed — evicted +
    /// retained + the partial tail. Equals the device's cumulative
    /// [`DeviceStats`] exactly (the recorder's standing guarantee).
    pub fn total_stats(&self) -> DeviceStats {
        let mut total = self.evicted_stats;
        for e in &self.epochs {
            total.accumulate(&e.stats);
        }
        total.accumulate(&self.tail_stats);
        total
    }

    /// Same exact-sum property for one stream's WA-ledger row.
    pub fn total_wa(&self) -> Vec<WaDelta> {
        let mut total = self.evicted_wa.clone();
        for e in &self.epochs {
            accumulate_wa(&mut total, &e.wa);
        }
        accumulate_wa(&mut total, &self.tail_wa);
        total
    }

    /// JSON document: meta fields plus one row per retained epoch.
    pub fn to_json(&self) -> Json {
        let epochs = Json::Arr(
            self.epochs
                .iter()
                .map(|e| e.to_json(&self.labels, &self.unit_labels))
                .collect(),
        );
        Json::obj(vec![
            ("epoch_ns", count(self.epoch_ns)),
            ("sealed", count(self.sealed)),
            ("dropped", count(self.dropped)),
            ("streams", Json::Arr(self.labels.iter().map(|l| s(l)).collect())),
            ("units", Json::Arr(self.unit_labels.iter().map(|l| s(l)).collect())),
            ("tail_start_ns", count(self.tail_start_ns)),
            ("tail_end_ns", count(self.tail_end_ns)),
            ("tail_host_writes", count(self.tail_stats.host_writes)),
            ("alerts", Json::Arr(self.alerts.iter().map(Alert::to_json).collect())),
            ("alerts_dropped", count(self.alerts_dropped)),
            ("epochs", epochs),
        ])
    }

    /// Free-block trend: `(end_ns, free_blocks)` per retained epoch.
    pub fn free_block_series(&self) -> Vec<(u64, u64)> {
        self.epochs.iter().map(|e| (e.end_ns, e.free_blocks)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(now: u64, writes: u64, free: u64) -> EpochSample {
        EpochSample {
            now_ns: now,
            stats: DeviceStats { host_writes: writes, ..Default::default() },
            wa: vec![(writes, [0; 3])],
            unit_busy_ns: vec![now / 2, now / 4],
            free_blocks: free,
            inflight: 0,
            wear_skew: 1.0,
            remaining_life: 1.0,
            read_hist: Histogram::new(),
            write_hist: Histogram::new(),
        }
    }

    #[test]
    fn seals_deltas_and_spans_idle_gaps() {
        let mut r = FlightRecorder::new(1_000, 8, SloConfig::default(), 0);
        assert!(!r.due(999));
        assert!(r.due(1_000));
        let o1 = r.seal(sample(1_200, 10, 50));
        assert_eq!(o1.epoch, 0);
        assert_eq!(o1.unit_busy_ns, vec![600, 300]);
        // Next boundary is the multiple after 1200, i.e. 2000.
        assert!(!r.due(1_999));
        // A long idle gap seals one spanning epoch at the next command.
        let o2 = r.seal(sample(7_300, 25, 40));
        assert_eq!(o2.epoch, 1);
        assert!(!r.due(7_999));
        assert!(r.due(8_000));
        let snap = r.snapshot(7_300, &sample(7_300, 25, 40).stats, &[(25, [0; 3])]);
        assert_eq!(snap.sealed, 2);
        assert_eq!(snap.epochs.len(), 2);
        assert_eq!(snap.epochs[0].stats.host_writes, 10);
        assert_eq!(snap.epochs[1].stats.host_writes, 15);
        assert_eq!(snap.epochs[1].start_ns, 1_200);
        assert_eq!(snap.epochs[1].end_ns, 7_300);
        assert_eq!(snap.epochs[1].unit_busy_ns, vec![3_650 - 600, 1_825 - 300]);
        assert_eq!(snap.tail_stats, DeviceStats::default());
        assert_eq!(snap.total_stats().host_writes, 25);
        assert_eq!(snap.total_wa()[0], (25, [0; 3]));
    }

    #[test]
    fn eviction_folds_into_accumulator_exactly() {
        let mut r = FlightRecorder::new(100, 2, SloConfig::default(), 0);
        for i in 1..=10u64 {
            r.seal(sample(i * 100, i * 7, 50));
        }
        let cum = sample(1_000, 70, 50).stats;
        let snap = r.snapshot(1_000, &cum, &[(70, [0; 3])]);
        assert_eq!(snap.sealed, 10);
        assert_eq!(snap.dropped, 8);
        assert_eq!(snap.epochs.len(), 2);
        // Retained + evicted + tail reproduce the cumulative counters.
        assert_eq!(snap.total_stats(), cum);
        assert_eq!(snap.total_wa(), vec![(70, [0; 3])]);
        // And the partial tail shows up too.
        let cum2 = sample(1_050, 75, 50).stats;
        let snap2 = r.snapshot(1_050, &cum2, &[(75, [0; 3])]);
        assert_eq!(snap2.tail_stats.host_writes, 5);
        assert_eq!(snap2.total_stats(), cum2);
    }

    #[test]
    fn slo_fires_on_seal_and_lands_in_record_and_log() {
        let slo = SloConfig { free_block_floor: Some(45), ..Default::default() };
        let mut r = FlightRecorder::new(1_000, 8, slo, 0);
        let ok = r.seal(sample(1_000, 1, 50));
        assert!(ok.alerts.is_empty());
        let bad = r.seal(sample(2_000, 2, 40));
        assert_eq!(bad.alerts.len(), 1);
        assert_eq!(bad.alerts[0].kind, share_telemetry::AlertKind::FreeBlocks);
        assert_eq!(bad.alerts[0].epoch, 1);
        assert!(r.any_critical());
        let snap = r.snapshot(2_000, &sample(2_000, 2, 40).stats, &[(2, [0; 3])]);
        assert_eq!(snap.alerts.len(), 1);
        assert!(snap.epochs[0].alerts.is_empty());
        assert_eq!(snap.epochs[1].alerts.len(), 1);
        assert_eq!(snap.free_block_series(), vec![(1_000, 50), (2_000, 40)]);
    }

    #[test]
    fn snapshot_json_renders_and_parses() {
        let mut r = FlightRecorder::new(500, 4, SloConfig::default(), 0);
        let mut smp = sample(500, 3, 20);
        smp.write_hist.record(120);
        smp.write_hist.record(480);
        r.seal(smp);
        let mut snap = r.snapshot(700, &sample(700, 4, 20).stats, &[(4, [0; 3])]);
        snap.labels = vec!["host".into()];
        snap.unit_labels = vec!["ch0:w0".into(), "ch1:w0".into()];
        let doc = snap.to_json();
        let back = share_telemetry::json::parse(&doc.render()).expect("parses");
        assert_eq!(back.get("sealed").and_then(Json::as_u64), Some(1));
        assert_eq!(back.get("tail_host_writes").and_then(Json::as_u64), Some(1));
        let rows = back.get("epochs").and_then(Json::as_array).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("host_writes").and_then(Json::as_u64), Some(3));
        assert_eq!(rows[0].get("write_p99_ns").and_then(Json::as_u64), Some(480));
        assert!(rows[0].get("read_p99_ns").is_none(), "idle read window omitted");
        assert!(rows[0]
            .get("unit_busy_ns")
            .and_then(|u| u.get("ch0:w0"))
            .and_then(Json::as_u64)
            .is_some());
        assert!(rows[0].get("wa").and_then(|w| w.get("host")).is_some());
    }
}
