//! Base mapping-table checkpoints.
//!
//! The delta log (see [`crate::delta`]) is truncated by periodically
//! persisting a full snapshot of the L2P table — the "reliably persistent
//! version, i.e. a base mapping table" of the paper's §4.2.2. Two slots
//! alternate so a crash during checkpointing always leaves the previous
//! snapshot intact; a commit page written last makes the new snapshot
//! valid all-or-nothing.
//!
//! Image format v4 appends the serialized device snapshot table (see
//! [`crate::snapshot`]) between the L2P table pages and the commit page,
//! with its byte length and CRC recorded in the header and the CRC echoed
//! in the commit page. A device with no snapshots writes a zero-length
//! section — byte-identical layout to v3 — and v1–v3 images (whose header
//! bytes at those offsets are zero) decode as an empty snapshot table, so
//! old images load unchanged.

use crate::config::FtlConfig;
use crate::error::FtlError;
use crate::types::Ppn;
use crate::util::{crc32c, get_u32, get_u64, put_u32, put_u64};
use nand_sim::{BlockId, NandArray};

const CKPT_MAGIC: u32 = 0x434B_5054; // "CKPT"
const COMMIT_MAGIC: u32 = 0x4343_4D54; // "CCMT"

/// A recovered checkpoint: delta pages with `seq >= next_delta_seq` must be
/// replayed on top of `l2p`.
#[derive(Debug)]
pub struct RecoveredCheckpoint {
    /// Slot the snapshot was read from (0 or 1).
    pub slot: u32,
    /// Monotonic checkpoint generation (see [`write_checkpoint`]).
    pub generation: u64,
    /// Delta sequence number from which the log continues.
    pub next_delta_seq: u64,
    /// The snapshotted L2P table.
    pub l2p: Vec<Ppn>,
    /// Serialized device snapshot table (empty for pre-v4 images and
    /// snapshot-free devices); decode with
    /// [`crate::snapshot::SnapshotTable::decode`].
    pub snap: Vec<u8>,
}

/// Serialize the L2P table into little-endian bytes.
fn encode_table(l2p: &[Ppn]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(l2p.len() * 4);
    for p in l2p {
        bytes.extend_from_slice(&p.0.to_le_bytes());
    }
    bytes
}

fn slot_ppn(cfg: &FtlConfig, slot: u32, page_idx: u32) -> nand_sim::Ppn {
    let start = cfg.ckpt_slot_start(slot);
    let ppb = cfg.geometry.pages_per_block;
    let block = BlockId(start.0 + page_idx / ppb);
    nand_sim::Ppn(block.0 * ppb + page_idx % ppb)
}

/// Number of meta pages a checkpoint occupies (header + table + commit),
/// *excluding* any snapshot-table section.
pub fn checkpoint_pages(cfg: &FtlConfig) -> u32 {
    let table_pages = (cfg.logical_pages * 4).div_ceil(cfg.geometry.page_size as u64) as u32;
    table_pages + 2
}

/// Meta pages a serialized snapshot table of `snap_bytes` occupies in a
/// checkpoint (0 when empty).
pub fn snapshot_section_pages(cfg: &FtlConfig, snap_bytes: usize) -> u32 {
    snap_bytes.div_ceil(cfg.geometry.page_size) as u32
}

/// Largest serialized snapshot table a checkpoint slot can hold: the slot
/// blocks are sized for header + L2P table + commit, and the snapshot
/// section lives in the remaining slack pages.
pub fn max_snapshot_bytes(cfg: &FtlConfig) -> usize {
    let slot_pages = cfg.ckpt_slot_blocks() as u64 * cfg.geometry.pages_per_block as u64;
    let slack = slot_pages.saturating_sub(checkpoint_pages(cfg) as u64);
    slack as usize * cfg.geometry.page_size
}

/// Write a full snapshot into `slot`. `next_delta_seq` is the delta
/// sequence number the log continues from after this checkpoint;
/// `generation` must strictly increase across checkpoints. The delta
/// sequence alone cannot order the two slots: consecutive checkpoints
/// with only RAM-buffered deltas between them (plain writes, no flush)
/// carry the *same* `next_delta_seq`, and recovery picking the stale
/// slot on that tie silently rolls back committed writes. `snap` is the
/// serialized snapshot table (empty for a snapshot-free device — the
/// layout then matches v3 byte for byte). Returns the number of meta
/// pages programmed.
pub fn write_checkpoint(
    cfg: &FtlConfig,
    nand: &mut NandArray,
    slot: u32,
    generation: u64,
    next_delta_seq: u64,
    l2p: &[Ppn],
    snap: &[u8],
) -> Result<u64, FtlError> {
    debug_assert_eq!(l2p.len() as u64, cfg.logical_pages);
    if snap.len() > max_snapshot_bytes(cfg) {
        return Err(FtlError::SnapshotTableFull);
    }
    let page_size = cfg.geometry.page_size;
    let slot_blocks: Vec<BlockId> =
        (0..cfg.ckpt_slot_blocks()).map(|b| BlockId(cfg.ckpt_slot_start(slot).0 + b)).collect();
    nand.erase_batch(&slot_blocks)?;

    let table = encode_table(l2p);
    let table_crc = crc32c(&table);
    let table_pages = table.len().div_ceil(page_size) as u32;
    let snap_crc = if snap.is_empty() { 0 } else { crc32c(snap) };
    let snap_pages = snapshot_section_pages(cfg, snap.len());

    // Header page, then the table, then the snapshot section, as one
    // batched submission. Correctness never depends on their order: only
    // the commit page (programmed strictly after, as its own submission)
    // validates the snapshot, and a fault mid-batch stops the batch
    // before it.
    let mut pages = Vec::with_capacity(1 + table_pages as usize + snap_pages as usize);
    let mut header = vec![0u8; page_size];
    put_u32(&mut header, 0, CKPT_MAGIC);
    put_u64(&mut header, 4, next_delta_seq);
    put_u64(&mut header, 12, cfg.logical_pages);
    put_u32(&mut header, 20, table_crc);
    put_u64(&mut header, 24, generation);
    put_u64(&mut header, 32, snap.len() as u64);
    put_u32(&mut header, 40, snap_crc);
    pages.push(header);
    for i in 0..table_pages {
        let mut page = vec![0u8; page_size];
        let start = i as usize * page_size;
        let end = (start + page_size).min(table.len());
        page[..end - start].copy_from_slice(&table[start..end]);
        pages.push(page);
    }
    for i in 0..snap_pages {
        let mut page = vec![0u8; page_size];
        let start = i as usize * page_size;
        let end = (start + page_size).min(snap.len());
        page[..end - start].copy_from_slice(&snap[start..end]);
        pages.push(page);
    }
    let programs: Vec<(nand_sim::Ppn, &[u8])> = pages
        .iter()
        .enumerate()
        .map(|(i, p)| (slot_ppn(cfg, slot, i as u32), p.as_slice()))
        .collect();
    nand.program_batch(&programs)?;

    // Commit page — programmed last; its presence validates the snapshot.
    let mut page = vec![0u8; page_size];
    put_u32(&mut page, 0, COMMIT_MAGIC);
    put_u64(&mut page, 4, next_delta_seq);
    put_u32(&mut page, 12, table_crc);
    put_u64(&mut page, 16, generation);
    put_u32(&mut page, 24, snap_crc);
    nand.program(slot_ppn(cfg, slot, 1 + table_pages + snap_pages), &page)?;

    Ok(table_pages as u64 + snap_pages as u64 + 2)
}

fn read_slot(cfg: &FtlConfig, nand: &mut NandArray, slot: u32) -> Option<RecoveredCheckpoint> {
    let page_size = cfg.geometry.page_size;
    let mut buf = vec![0u8; page_size];
    nand.read(slot_ppn(cfg, slot, 0), &mut buf).ok()?;
    if get_u32(&buf, 0) != CKPT_MAGIC {
        return None;
    }
    let seq = get_u64(&buf, 4);
    let count = get_u64(&buf, 12);
    let table_crc = get_u32(&buf, 20);
    let generation = get_u64(&buf, 24);
    // v1–v3 images left these header bytes zeroed: snap_bytes 0 decodes
    // as an empty snapshot table.
    let snap_bytes = get_u64(&buf, 32) as usize;
    let snap_crc = get_u32(&buf, 40);
    if count != cfg.logical_pages {
        return None;
    }
    let table_bytes = (count * 4) as usize;
    let table_pages = table_bytes.div_ceil(page_size) as u32;
    let snap_pages = snapshot_section_pages(cfg, snap_bytes);

    // Commit page first: cheap validity check before reading the table.
    // (For pre-v4 images snap_pages is 0 and the commit page's byte 24
    // region was zero, so both the position and the CRC echo match.)
    nand.read(slot_ppn(cfg, slot, 1 + table_pages + snap_pages), &mut buf).ok()?;
    if get_u32(&buf, 0) != COMMIT_MAGIC
        || get_u64(&buf, 4) != seq
        || get_u32(&buf, 12) != table_crc
        || get_u64(&buf, 16) != generation
        || get_u32(&buf, 24) != snap_crc
    {
        return None;
    }

    let mut table = vec![0u8; table_pages as usize * page_size];
    for i in 0..table_pages {
        let dst = i as usize * page_size;
        nand.read(slot_ppn(cfg, slot, 1 + i), &mut table[dst..dst + page_size]).ok()?;
    }
    table.truncate(table_bytes);
    if crc32c(&table) != table_crc {
        return None;
    }
    let mut snap = vec![0u8; snap_pages as usize * page_size];
    for i in 0..snap_pages {
        let dst = i as usize * page_size;
        nand.read(slot_ppn(cfg, slot, 1 + table_pages + i), &mut snap[dst..dst + page_size])
            .ok()?;
    }
    snap.truncate(snap_bytes);
    if !snap.is_empty() && crc32c(&snap) != snap_crc {
        return None;
    }
    let l2p = table
        .chunks_exact(4)
        .map(|c| Ppn(u32::from_le_bytes(c.try_into().unwrap())))
        .collect();
    Some(RecoveredCheckpoint { slot, generation, next_delta_seq: seq, l2p, snap })
}

/// Read the newest valid checkpoint, if any slot holds one. Ordered by
/// generation — delta sequence numbers tie across checkpoints that had
/// no intervening log flush, so they cannot order the slots.
pub fn read_latest(cfg: &FtlConfig, nand: &mut NandArray) -> Option<RecoveredCheckpoint> {
    let a = read_slot(cfg, nand, 0);
    let b = read_slot(cfg, nand, 1);
    match (a, b) {
        (Some(a), Some(b)) => Some(if a.generation >= b.generation { a } else { b }),
        (Some(a), None) => Some(a),
        (None, Some(b)) => Some(b),
        (None, None) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nand_sim::{NandArray, NandTiming, SimClock};

    fn setup() -> (FtlConfig, NandArray) {
        let cfg = FtlConfig::for_capacity_with(1 << 20, 0.3, 4096, 16, NandTiming::zero());
        let nand = NandArray::with_timing(cfg.geometry, cfg.timing, SimClock::new());
        (cfg, nand)
    }

    fn sample_l2p(cfg: &FtlConfig) -> Vec<Ppn> {
        (0..cfg.logical_pages)
            .map(|i| if i % 3 == 0 { Ppn(i as u32 + 1000) } else { Ppn::INVALID })
            .collect()
    }

    #[test]
    fn write_then_read_round_trips() {
        let (cfg, mut nand) = setup();
        let l2p = sample_l2p(&cfg);
        write_checkpoint(&cfg, &mut nand, 0, 1, 42, &l2p, &[]).unwrap();
        let r = read_latest(&cfg, &mut nand).unwrap();
        assert_eq!(r.slot, 0);
        assert_eq!(r.next_delta_seq, 42);
        assert_eq!(r.l2p, l2p);
    }

    #[test]
    fn empty_device_has_no_checkpoint() {
        let (cfg, mut nand) = setup();
        assert!(read_latest(&cfg, &mut nand).is_none());
    }

    #[test]
    fn newer_slot_wins() {
        let (cfg, mut nand) = setup();
        let old = sample_l2p(&cfg);
        let mut new = old.clone();
        new[0] = Ppn(777);
        write_checkpoint(&cfg, &mut nand, 0, 1, 10, &old, &[]).unwrap();
        write_checkpoint(&cfg, &mut nand, 1, 2, 20, &new, &[]).unwrap();
        let r = read_latest(&cfg, &mut nand).unwrap();
        assert_eq!(r.slot, 1);
        assert_eq!(r.l2p[0], Ppn(777));
    }

    #[test]
    fn slots_alternate_by_erasure() {
        let (cfg, mut nand) = setup();
        let l2p = sample_l2p(&cfg);
        write_checkpoint(&cfg, &mut nand, 0, 1, 10, &l2p, &[]).unwrap();
        write_checkpoint(&cfg, &mut nand, 1, 2, 20, &l2p, &[]).unwrap();
        write_checkpoint(&cfg, &mut nand, 0, 3, 30, &l2p, &[]).unwrap(); // reuse slot 0
        let r = read_latest(&cfg, &mut nand).unwrap();
        assert_eq!(r.next_delta_seq, 30);
        assert_eq!(r.slot, 0);
    }

    #[test]
    fn crash_during_checkpoint_preserves_previous_snapshot() {
        let (cfg, mut nand) = setup();
        let old = sample_l2p(&cfg);
        write_checkpoint(&cfg, &mut nand, 0, 1, 10, &old, &[]).unwrap();
        // Crash while writing slot 1, before its commit page lands.
        nand.fault_handle().arm_after_programs(2, nand_sim::FaultMode::TornHalf);
        let mut new = old.clone();
        new[1] = Ppn(555);
        assert!(write_checkpoint(&cfg, &mut nand, 1, 2, 20, &new, &[]).is_err());
        nand.power_cycle();
        let r = read_latest(&cfg, &mut nand).unwrap();
        assert_eq!(r.next_delta_seq, 10, "old snapshot must survive");
        assert_eq!(r.l2p, old);
    }

    #[test]
    fn corrupt_commit_page_invalidates_slot() {
        let (cfg, mut nand) = setup();
        let l2p = sample_l2p(&cfg);
        write_checkpoint(&cfg, &mut nand, 0, 1, 5, &l2p, &[]).unwrap();
        // Fault exactly on the commit page of the second checkpoint.
        let pages = checkpoint_pages(&cfg);
        nand.fault_handle().arm_after_programs(pages as u64, nand_sim::FaultMode::DroppedWrite);
        assert!(write_checkpoint(&cfg, &mut nand, 1, 2, 6, &l2p, &[]).is_err());
        nand.power_cycle();
        let r = read_latest(&cfg, &mut nand).unwrap();
        assert_eq!(r.slot, 0);
        assert_eq!(r.next_delta_seq, 5);
    }

    #[test]
    fn checkpoint_page_count_matches_layout() {
        let (cfg, mut nand) = setup();
        let l2p = sample_l2p(&cfg);
        let written = write_checkpoint(&cfg, &mut nand, 0, 1, 1, &l2p, &[]).unwrap();
        assert_eq!(written, checkpoint_pages(&cfg) as u64);
    }

    #[test]
    fn generation_breaks_the_delta_seq_tie() {
        // Two checkpoints with no log flush between them carry the same
        // next_delta_seq; before generations, recovery could pick the
        // stale slot and roll back committed writes.
        let (cfg, mut nand) = setup();
        let old = sample_l2p(&cfg);
        let mut new = old.clone();
        new[0] = Ppn(777);
        write_checkpoint(&cfg, &mut nand, 0, 1, 10, &old, &[]).unwrap();
        write_checkpoint(&cfg, &mut nand, 1, 2, 10, &new, &[]).unwrap();
        let r = read_latest(&cfg, &mut nand).unwrap();
        assert_eq!(r.slot, 1, "the higher generation must win the seq tie");
        assert_eq!(r.generation, 2);
        assert_eq!(r.l2p[0], Ppn(777));
    }

    #[test]
    fn snapshot_section_round_trips() {
        let (cfg, mut nand) = setup();
        let l2p = sample_l2p(&cfg);
        // Over a page of section bytes: exercises the multi-page path.
        let snap: Vec<u8> = (0..cfg.geometry.page_size + 100).map(|i| (i % 251) as u8).collect();
        let written = write_checkpoint(&cfg, &mut nand, 0, 1, 7, &l2p, &snap).unwrap();
        assert_eq!(
            written,
            checkpoint_pages(&cfg) as u64 + snapshot_section_pages(&cfg, snap.len()) as u64
        );
        let r = read_latest(&cfg, &mut nand).unwrap();
        assert_eq!(r.snap, snap);
        assert_eq!(r.l2p, l2p);
    }

    #[test]
    fn empty_snapshot_section_is_byte_identical_to_v3() {
        // A v4 checkpoint of a snapshot-free device must program exactly
        // the v3 pages: same count, same commit position, and a pre-v4
        // reader (which ignores bytes 32.. of the header) sees the same
        // zeros there.
        let (cfg, mut nand) = setup();
        let l2p = sample_l2p(&cfg);
        let written = write_checkpoint(&cfg, &mut nand, 0, 3, 9, &l2p, &[]).unwrap();
        assert_eq!(written, checkpoint_pages(&cfg) as u64);
        let r = read_latest(&cfg, &mut nand).unwrap();
        assert!(r.snap.is_empty());
        let mut header = vec![0u8; cfg.geometry.page_size];
        nand.read(slot_ppn(&cfg, 0, 0), &mut header).unwrap();
        assert_eq!(get_u64(&header, 32), 0, "snap_bytes field zero");
        assert_eq!(get_u32(&header, 40), 0, "snap_crc field zero");
    }

    #[test]
    fn oversized_snapshot_section_is_rejected() {
        let (cfg, mut nand) = setup();
        let l2p = sample_l2p(&cfg);
        let too_big = vec![0u8; max_snapshot_bytes(&cfg) + 1];
        assert_eq!(
            write_checkpoint(&cfg, &mut nand, 0, 1, 1, &l2p, &too_big),
            Err(FtlError::SnapshotTableFull)
        );
    }

    #[test]
    fn corrupt_snapshot_section_invalidates_slot() {
        let (cfg, mut nand) = setup();
        let l2p = sample_l2p(&cfg);
        write_checkpoint(&cfg, &mut nand, 0, 1, 5, &l2p, &[]).unwrap();
        let snap = vec![0xabu8; 64];
        // Fault on the snapshot-section page of the slot-1 checkpoint
        // (header + table pages land first).
        let table_pages = checkpoint_pages(&cfg) - 2;
        nand.fault_handle()
            .arm_after_programs(1 + table_pages as u64, nand_sim::FaultMode::DroppedWrite);
        assert!(write_checkpoint(&cfg, &mut nand, 1, 2, 6, &l2p, &snap).is_err());
        nand.power_cycle();
        let r = read_latest(&cfg, &mut nand).unwrap();
        assert_eq!(r.slot, 0, "torn snapshot section must not validate");
    }
}
