//! FTL configuration and on-flash layout.
//!
//! Physical blocks are partitioned into a **meta area** and a **data pool**:
//!
//! ```text
//! | ckpt slot A | ckpt slot B | delta-log ring | ............ data pool ............ |
//! ```
//!
//! * The two checkpoint slots alternate full snapshots of the L2P table.
//! * The delta-log ring holds page-sized groups of mapping deltas
//!   (`(LPN, old PPN, new PPN)` — the paper's §4.2.2 "Delta" records).
//! * The data pool serves host writes and GC copyback, with
//!   over-provisioning beyond the exported logical capacity.

use crate::mapping::RevMapPolicy;
use crate::util::div_ceil_u64;
use nand_sim::{BlockId, NandGeometry, NandTiming};
use share_telemetry::{SloConfig, TelemetryConfig};

/// Garbage-collection victim-selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GcPolicy {
    /// Block with the fewest valid pages (standard, minimizes copyback).
    #[default]
    Greedy,
    /// Oldest sealed block first (simple firmware, baseline for ablation).
    Fifo,
    /// Maximize reclaimable space × block age: prefers blocks that free
    /// many pages *and* have sat sealed long enough that their remaining
    /// valid pages are likely cold, so the same pages are not recopied
    /// every few victim rounds (the classic cost-benefit heuristic).
    CostBenefit,
}

/// Background GC pipeline settings. Off (the default) the FTL reclaims
/// space exactly like the historical firmware: `ensure_free` runs whole
/// victim collections synchronously inside the foreground command that
/// tripped the low watermark, and the command's completion time absorbs
/// every copyback. On, GC becomes an incrementally-budgeted background
/// pipeline: above the hard floor, at most `budget_pages` relocations run
/// per foreground command in a background timing window that reserves
/// *idle* channel/way lanes (foreground ops only pay for GC via lane
/// contention), and the synchronous drain survives solely as a last
/// resort at the hard floor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcPipelineConfig {
    /// Enable the background pipeline. Off = bit-identical to the
    /// historical synchronous GC (state, stats, and timing).
    pub enabled: bool,
    /// Max pages relocated per foreground command while above the hard
    /// floor. Exhausting it defers the rest of the victim to later
    /// commands (`gc_budget_deferrals` counts these).
    pub budget_pages: u32,
    /// Free blocks above the hard floor at which background collection
    /// starts. Larger headroom starts GC earlier and spreads it thinner.
    pub soft_headroom: usize,
}

impl Default for GcPipelineConfig {
    fn default() -> Self {
        // Small budget + tight headroom: collection starts only when the
        // free pool is nearly drained (victims have had maximal time to
        // accumulate invalidations, so write amplification matches the
        // legacy burst collector) and each step reserves few lanes (the
        // foreground tail pays little contention). Large budgets with a
        // wide soft band collect victims young and hog lanes — measured
        // 4x worse WA and 5x worse write p99 on a steady-state aged
        // device (`bench_gc`).
        Self { enabled: false, budget_pages: 4, soft_headroom: 1 }
    }
}

/// Multi-streamed data-placement settings (SHARE paper §5 evaluation
/// setups separate journal/WAL traffic from data; this models the same
/// idea as firmware-side lifetime classes).
///
/// When enabled, interned stream labels are classified by expected data
/// lifetime and the data pool keeps separate write points per class, so
/// short-lived journal pages never share a block with long-lived data.
/// GC also becomes class-aware: survivors relocate into a block of the
/// victim's class. Disabled (the default) the device behaves exactly like
/// the historical single-class allocator — bit-identical results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlacementConfig {
    /// Separate write points per lifetime class.
    pub enabled: bool,
}

/// Lifetime class: default / long-lived data.
pub const CLASS_DEFAULT: u8 = 0;
/// Lifetime class: short-lived (journals, WAL, doublewrite buffers) —
/// overwritten or trimmed quickly, so its blocks die nearly whole.
pub const CLASS_SHORT: u8 = 1;
/// Lifetime class: cold / sequentially-rewritten (compaction output).
pub const CLASS_COLD: u8 = 2;

impl PlacementConfig {
    /// Number of lifetime classes the data pool partitions into.
    pub fn classes(&self) -> usize {
        if self.enabled { 3 } else { 1 }
    }

    /// Map a stream label to its lifetime class. Labels naming journal-like
    /// files (`journal`, `wal`, `log`, `doublewrite`) are short-lived;
    /// compaction output is cold; everything else is default. With
    /// placement disabled every label is the default class.
    pub fn classify(&self, label: &str) -> u8 {
        if !self.enabled {
            return CLASS_DEFAULT;
        }
        let l = label.to_ascii_lowercase();
        if l.contains("journal") || l.contains("wal") || l.contains("doublewrite") || l.contains("log")
        {
            CLASS_SHORT
        } else if l.contains("compact") {
            CLASS_COLD
        } else {
            CLASS_DEFAULT
        }
    }

    /// Human label for a class index (telemetry exports).
    pub fn class_label(class: u8) -> &'static str {
        match class {
            CLASS_SHORT => "short-lived",
            CLASS_COLD => "cold",
            _ => "default",
        }
    }
}

/// Bytes of one serialized mapping delta: LPN (8) + old PPN (4) + new PPN (4).
pub const DELTA_BYTES: usize = 16;
/// Bytes of the delta-log / checkpoint page header (magic, seq, count, crc).
pub const META_PAGE_HEADER: usize = 32;

/// Configuration of a [`crate::Ftl`] instance.
#[derive(Debug, Clone)]
pub struct FtlConfig {
    /// NAND geometry (page size is the mapping unit).
    pub geometry: NandGeometry,
    /// NAND latency model.
    pub timing: NandTiming,
    /// Exported logical capacity in pages.
    pub logical_pages: u64,
    /// Capacity of the shared-page reverse-mapping table. The OpenSSD
    /// prototype used 250 (4 KB) or 500 (8 KB) entries (§4.2.1).
    /// `usize::MAX` models an unbounded table (for ablation).
    pub revmap_capacity: usize,
    /// What happens when the reverse map runs out of slots.
    pub revmap_policy: RevMapPolicy,
    /// GC victim-selection policy.
    pub gc_policy: GcPolicy,
    /// Number of blocks in the delta-log ring.
    pub log_blocks: u32,
    /// GC starts when free data blocks drop to this count.
    pub gc_low_water: usize,
    /// GC stops when free data blocks reach this count.
    pub gc_high_water: usize,
    /// Host-to-device command round-trip latency (share/trim/flush), ns.
    /// Models the ioctl/SATA path the paper batches SHARE pairs to amortize.
    pub command_ns: u64,
    /// Submission-queue depth: how many queued commands may be in flight
    /// (submitted, not yet reaped) at once. Synchronous commands ignore
    /// this entirely; `submit` returns `QueueFull` beyond it.
    pub queue_depth: usize,
    /// Telemetry collection settings. Counters are always on; latency
    /// histograms and the command ring are opt-in. Telemetry only reads
    /// the simulated clock, so no setting can change simulated results.
    pub telemetry: TelemetryConfig,
    /// SLO thresholds evaluated at flight-recorder epoch boundaries.
    /// Inert unless `telemetry.epoch_ns` turns the recorder on.
    pub slo: SloConfig,
    /// Multi-streamed data-placement settings (off by default).
    pub placement: PlacementConfig,
    /// Background GC pipeline settings (off by default).
    pub gc_pipeline: GcPipelineConfig,
}

impl FtlConfig {
    /// Build a config exporting `logical_bytes` with `over_provision`
    /// (e.g. 0.15 = 15 %) spare data-pool space, 4 KiB pages, 128-page blocks.
    pub fn for_capacity(logical_bytes: u64, over_provision: f64) -> Self {
        Self::for_capacity_with(logical_bytes, over_provision, 4096, 128, NandTiming::default())
    }

    /// [`Self::for_capacity`] with explicit page size, block size, timing.
    pub fn for_capacity_with(
        logical_bytes: u64,
        over_provision: f64,
        page_size: usize,
        pages_per_block: u32,
        timing: NandTiming,
    ) -> Self {
        assert!(over_provision > 0.0, "over-provisioning must be positive");
        let logical_pages = div_ceil_u64(logical_bytes, page_size as u64);
        let data_pages = (logical_pages as f64 * (1.0 + over_provision)).ceil() as u64;
        // Slack for the two active write points and GC headroom.
        let data_blocks = div_ceil_u64(data_pages, pages_per_block as u64) as u32 + 10;
        let log_blocks = 4;
        let mut cfg = Self {
            geometry: NandGeometry::new(page_size, pages_per_block, 1),
            timing,
            logical_pages,
            revmap_capacity: 500,
            revmap_policy: RevMapPolicy::default(),
            gc_policy: GcPolicy::default(),
            log_blocks,
            gc_low_water: 3,
            gc_high_water: 6,
            command_ns: 20_000,
            queue_depth: 32,
            telemetry: TelemetryConfig::default(),
            slo: SloConfig::default(),
            placement: PlacementConfig::default(),
            gc_pipeline: GcPipelineConfig::default(),
        };
        let meta = 2 * cfg.ckpt_slot_blocks_for(logical_pages, page_size, pages_per_block) + log_blocks;
        cfg.geometry = NandGeometry::new(page_size, pages_per_block, meta + data_blocks);
        cfg.validate();
        cfg
    }

    /// Spread the NAND over `channels` x `ways` independently-timed units
    /// (blocks interleave across units; see [`NandGeometry::unit_of_block`]).
    /// Capacity and layout are unchanged — only the timing parallelism.
    pub fn with_parallelism(mut self, channels: u32, ways: u32) -> Self {
        self.geometry = self.geometry.with_parallelism(channels, ways);
        self
    }

    /// Set the telemetry collection level.
    pub fn with_telemetry(mut self, telemetry: TelemetryConfig) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Set the SLO thresholds the flight recorder evaluates per epoch.
    pub fn with_slo(mut self, slo: SloConfig) -> Self {
        self.slo = slo;
        self
    }

    /// Set the submission-queue depth (must be at least 1).
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        assert!(depth >= 1, "queue depth must be at least 1");
        self.queue_depth = depth;
        self
    }

    /// Enable (or disable) multi-streamed data placement.
    pub fn with_placement(mut self, enabled: bool) -> Self {
        self.placement = PlacementConfig { enabled };
        self
    }

    /// Enable (or disable) the background GC pipeline with its default
    /// budget and headroom.
    pub fn with_gc_pipeline(mut self, enabled: bool) -> Self {
        self.gc_pipeline.enabled = enabled;
        self
    }

    /// Set the background GC per-command page budget and soft headroom
    /// (implies enabling the pipeline).
    pub fn with_gc_budget(mut self, budget_pages: u32, soft_headroom: usize) -> Self {
        self.gc_pipeline = GcPipelineConfig { enabled: true, budget_pages, soft_headroom };
        self
    }

    /// Panic if the layout is internally inconsistent.
    pub fn validate(&self) {
        assert!(self.logical_pages > 0, "logical capacity must be positive");
        assert!(self.gc_high_water > self.gc_low_water, "GC watermarks inverted");
        assert!(self.log_blocks >= 2, "need at least two log blocks");
        let data_blocks = self.data_blocks();
        assert!(
            (data_blocks as u64 * self.geometry.pages_per_block as u64)
                > self.logical_pages + (self.gc_high_water as u64 + 2) * self.geometry.pages_per_block as u64,
            "data pool too small for logical capacity plus GC headroom"
        );
        assert!(self.deltas_per_page() >= 1, "page too small for delta records");
        if self.gc_pipeline.enabled {
            assert!(self.gc_pipeline.budget_pages >= 1, "GC budget must be at least one page");
        }
    }

    /// Mapping deltas that fit one meta page — the atomic SHARE batch limit.
    #[inline]
    pub fn deltas_per_page(&self) -> usize {
        (self.geometry.page_size - META_PAGE_HEADER) / DELTA_BYTES
    }

    fn ckpt_slot_blocks_for(&self, logical_pages: u64, page_size: usize, ppb: u32) -> u32 {
        // Header page + table pages + commit page.
        let table_pages = div_ceil_u64(logical_pages * 4, page_size as u64);
        div_ceil_u64(table_pages + 2, ppb as u64) as u32
    }

    /// Blocks per checkpoint slot.
    pub fn ckpt_slot_blocks(&self) -> u32 {
        self.ckpt_slot_blocks_for(self.logical_pages, self.geometry.page_size, self.geometry.pages_per_block)
    }

    /// First block of checkpoint slot `slot` (0 or 1).
    pub fn ckpt_slot_start(&self, slot: u32) -> BlockId {
        debug_assert!(slot < 2);
        BlockId(slot * self.ckpt_slot_blocks())
    }

    /// First block of the delta-log ring.
    pub fn log_ring_start(&self) -> BlockId {
        BlockId(2 * self.ckpt_slot_blocks())
    }

    /// Total meta-area blocks (checkpoints + log ring).
    pub fn meta_blocks(&self) -> u32 {
        2 * self.ckpt_slot_blocks() + self.log_blocks
    }

    /// First data-pool block.
    pub fn data_start(&self) -> BlockId {
        BlockId(self.meta_blocks())
    }

    /// Number of data-pool blocks.
    pub fn data_blocks(&self) -> u32 {
        self.geometry.blocks - self.meta_blocks()
    }

    /// Exported logical capacity in bytes.
    pub fn logical_bytes(&self) -> u64 {
        self.logical_pages * self.geometry.page_size as u64
    }

    /// Effective over-provisioning ratio of the data pool.
    pub fn effective_over_provision(&self) -> f64 {
        let data_pages = self.data_blocks() as u64 * self.geometry.pages_per_block as u64;
        data_pages as f64 / self.logical_pages as f64 - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_builder_lays_out_regions() {
        let cfg = FtlConfig::for_capacity(64 << 20, 0.15); // 64 MiB logical
        assert_eq!(cfg.logical_pages, (64 << 20) / 4096);
        let slot = cfg.ckpt_slot_blocks();
        assert!(slot >= 1);
        assert_eq!(cfg.ckpt_slot_start(0), BlockId(0));
        assert_eq!(cfg.ckpt_slot_start(1), BlockId(slot));
        assert_eq!(cfg.log_ring_start(), BlockId(2 * slot));
        assert_eq!(cfg.data_start().0, cfg.meta_blocks());
        assert!(cfg.data_blocks() > 0);
        assert!(cfg.effective_over_provision() > 0.15);
    }

    #[test]
    fn deltas_per_page_matches_layout_constants() {
        let cfg = FtlConfig::for_capacity(16 << 20, 0.2);
        assert_eq!(cfg.deltas_per_page(), (4096 - META_PAGE_HEADER) / DELTA_BYTES);
        assert_eq!(cfg.deltas_per_page(), 254);
    }

    #[test]
    fn page_size_scales_batch_limit() {
        let cfg = FtlConfig::for_capacity_with(16 << 20, 0.2, 8192, 128, NandTiming::zero());
        assert_eq!(cfg.deltas_per_page(), (8192 - META_PAGE_HEADER) / DELTA_BYTES);
    }

    #[test]
    fn over_provision_grows_data_pool() {
        let lean = FtlConfig::for_capacity(32 << 20, 0.07);
        let fat = FtlConfig::for_capacity(32 << 20, 0.30);
        assert!(fat.data_blocks() > lean.data_blocks());
        assert_eq!(lean.logical_pages, fat.logical_pages);
    }

    #[test]
    #[should_panic(expected = "GC watermarks")]
    fn validate_rejects_inverted_watermarks() {
        let mut cfg = FtlConfig::for_capacity(16 << 20, 0.2);
        cfg.gc_low_water = 8;
        cfg.gc_high_water = 4;
        cfg.validate();
    }

    #[test]
    fn gc_pipeline_defaults_off_and_builders_enable() {
        let cfg = FtlConfig::for_capacity(16 << 20, 0.2);
        assert!(!cfg.gc_pipeline.enabled, "pipeline must be opt-in");
        let on = cfg.clone().with_gc_pipeline(true);
        assert!(on.gc_pipeline.enabled);
        assert_eq!(on.gc_pipeline.budget_pages, GcPipelineConfig::default().budget_pages);
        let tuned = cfg.with_gc_budget(8, 2);
        assert!(tuned.gc_pipeline.enabled);
        assert_eq!(tuned.gc_pipeline.budget_pages, 8);
        assert_eq!(tuned.gc_pipeline.soft_headroom, 2);
        tuned.validate();
    }

    #[test]
    #[should_panic(expected = "GC budget")]
    fn validate_rejects_zero_gc_budget() {
        let cfg = FtlConfig::for_capacity(16 << 20, 0.2).with_gc_budget(0, 2);
        cfg.validate();
    }

    #[test]
    fn classify_maps_labels_to_lifetime_classes() {
        let on = PlacementConfig { enabled: true };
        assert_eq!(on.classes(), 3);
        for label in ["journal", "wal", "pg_wal", "doublewrite", "fs-journal", "redo-log"] {
            assert_eq!(on.classify(label), CLASS_SHORT, "{label}");
        }
        assert_eq!(on.classify("compact"), CLASS_COLD);
        for label in ["db", "store", "pgdata", "ibdata", "fs-meta"] {
            assert_eq!(on.classify(label), CLASS_DEFAULT, "{label}");
        }
        let off = PlacementConfig::default();
        assert_eq!(off.classes(), 1);
        assert_eq!(off.classify("journal"), CLASS_DEFAULT);
    }

    #[test]
    fn checkpoint_slot_fits_whole_table() {
        let cfg = FtlConfig::for_capacity(128 << 20, 0.1);
        let table_bytes = cfg.logical_pages * 4;
        let slot_bytes = cfg.ckpt_slot_blocks() as u64
            * cfg.geometry.pages_per_block as u64
            * cfg.geometry.page_size as u64;
        assert!(slot_bytes >= table_bytes + 2 * cfg.geometry.page_size as u64);
    }
}
