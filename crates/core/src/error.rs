//! Error type for FTL / block-device operations.

use crate::types::Lpn;
use nand_sim::NandError;
use std::fmt;

/// Errors surfaced by the SHARE FTL and other block devices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FtlError {
    /// Underlying NAND failure (including injected power loss).
    Nand(NandError),
    /// LPN beyond the exported logical capacity.
    LpnOutOfRange { lpn: Lpn, capacity: u64 },
    /// SHARE source LPN has no current mapping.
    SrcUnmapped(Lpn),
    /// A SHARE batch exceeds what one mapping-log page can hold atomically.
    ///
    /// The paper (§4.2.2): "The maximum size of Deltas cannot exceed the
    /// mapping page size because only a page is written atomically."
    BatchTooLarge { got: usize, max: usize },
    /// A SHARE batch is malformed (duplicate destination, unknown LPN, ...).
    InvalidBatch(&'static str),
    /// The bounded shared-page reverse-mapping table is full; the caller
    /// should fall back to a plain write (§4.2.1 sizes it at 250/500).
    RevMapFull { capacity: usize },
    /// Too many logical pages share one physical page.
    RefOverflow,
    /// No reclaimable space remains (over-provisioning exhausted).
    DeviceFull,
    /// The device does not implement this command (e.g. SHARE on a
    /// conventional SSD).
    Unsupported(&'static str),
    /// The submission queue is at its configured depth; the host must reap
    /// completions before submitting more commands.
    QueueFull { depth: usize },
    /// Buffer length does not match the device page size.
    BadBufferLength { got: usize, want: usize },
    /// Recovery found an unusable on-flash state.
    RecoveryCorrupt(String),
    /// No live snapshot has the requested name.
    SnapshotNotFound,
    /// A live snapshot already has the requested name.
    SnapshotExists,
    /// The snapshot table cannot grow: the id/offset space is exhausted or
    /// the serialized table would no longer fit its checkpoint slot.
    SnapshotTableFull,
}

impl fmt::Display for FtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FtlError::Nand(e) => write!(f, "nand: {e}"),
            FtlError::LpnOutOfRange { lpn, capacity } => {
                write!(f, "{lpn} out of range (logical capacity {capacity} pages)")
            }
            FtlError::SrcUnmapped(lpn) => write!(f, "share source {lpn} is unmapped"),
            FtlError::BatchTooLarge { got, max } => {
                write!(f, "share batch of {got} pairs exceeds atomic limit {max}")
            }
            FtlError::InvalidBatch(reason) => write!(f, "invalid share batch: {reason}"),
            FtlError::RevMapFull { capacity } => {
                write!(f, "reverse-mapping table full ({capacity} entries)")
            }
            FtlError::RefOverflow => write!(f, "physical page reference count overflow"),
            FtlError::DeviceFull => write!(f, "no reclaimable flash space left"),
            FtlError::Unsupported(cmd) => write!(f, "command not supported by device: {cmd}"),
            FtlError::QueueFull { depth } => {
                write!(f, "submission queue full ({depth} commands in flight)")
            }
            FtlError::BadBufferLength { got, want } => {
                write!(f, "buffer length {got} does not match page size {want}")
            }
            FtlError::RecoveryCorrupt(msg) => write!(f, "recovery: {msg}"),
            FtlError::SnapshotNotFound => write!(f, "no snapshot with that name"),
            FtlError::SnapshotExists => write!(f, "a snapshot with that name already exists"),
            FtlError::SnapshotTableFull => {
                write!(f, "snapshot table full (id space or checkpoint slot exhausted)")
            }
        }
    }
}

impl std::error::Error for FtlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FtlError::Nand(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NandError> for FtlError {
    fn from(e: NandError) -> Self {
        FtlError::Nand(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nand_errors_convert_and_chain() {
        let e: FtlError = NandError::PowerLoss.into();
        assert_eq!(e, FtlError::Nand(NandError::PowerLoss));
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("power loss"));
    }

    #[test]
    fn messages_are_descriptive() {
        assert!(FtlError::SrcUnmapped(Lpn(9)).to_string().contains("L9"));
        assert!(FtlError::BatchTooLarge { got: 300, max: 254 }.to_string().contains("300"));
        assert!(FtlError::RevMapFull { capacity: 250 }.to_string().contains("250"));
        assert!(FtlError::Unsupported("share").to_string().contains("share"));
        assert!(FtlError::QueueFull { depth: 16 }.to_string().contains("16"));
        assert!(FtlError::SnapshotNotFound.to_string().contains("snapshot"));
        assert!(FtlError::SnapshotExists.to_string().contains("already exists"));
        assert!(FtlError::SnapshotTableFull.to_string().contains("full"));
    }
}
