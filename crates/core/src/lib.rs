//! # share-core — the SHARE flash-storage interface
//!
//! Reproduction of the FTL described in *"SHARE Interface in Flash Storage
//! for Relational and NoSQL Databases"* (SIGMOD 2016): a page-mapping flash
//! translation layer that exposes an explicit **address remapping** command
//! to the host.
//!
//! ## The idea
//!
//! Databases guarantee atomic page propagation with two-phase write schemes
//! (journaling, copy-on-write): data is written once to a safe location and
//! a second time to its live location. Flash storage *already* writes
//! out-of-place and keeps a logical-to-physical mapping; `share(dest, src)`
//! lets the host turn the second write into a mapping update, eliminating
//! the doubled write entirely while keeping crash atomicity — the FTL logs
//! the batch's mapping deltas in a single atomically-programmed flash page.
//!
//! ## Quick start
//!
//! ```
//! use share_core::{BlockDevice, Ftl, FtlConfig, Lpn, SharePair};
//!
//! let mut dev = Ftl::new(FtlConfig::for_capacity(16 << 20, 0.2));
//! let page = vec![42u8; dev.page_size()];
//!
//! // Journal-style protocol: write once to the "journal" location...
//! dev.write(Lpn(1000), &page).unwrap();
//! dev.flush().unwrap();
//! // ...then atomically remap the "home" location instead of rewriting.
//! dev.share(&[SharePair::new(Lpn(0), Lpn(1000))]).unwrap();
//!
//! let mut check = vec![0u8; dev.page_size()];
//! dev.read(Lpn(0), &mut check).unwrap();
//! assert_eq!(check, page);
//! ```
//!
//! ## Modules
//!
//! * [`Ftl`] — the SHARE-capable device (mapping, delta log, GC, recovery)
//! * [`SimpleSsd`] — a conventional SSD without SHARE (log device, baseline)
//! * [`BlockDevice`] — the command-set trait engines program against
//! * [`SharedDevice`] — thread-safe front-end for multi-client drivers
//! * [`FtlConfig`] — geometry, over-provisioning, reverse-map sizing

mod ckpt;
mod config;
mod delta;
mod device;
mod error;
mod ftl;
pub mod health;
mod mapping;
pub mod monitor;
mod pool;
mod queue;
mod shared;
pub mod snapshot;
mod stats;
mod types;
mod util;

pub use ckpt::{checkpoint_pages, max_snapshot_bytes, snapshot_section_pages};
pub use config::{
    FtlConfig, GcPolicy, PlacementConfig, CLASS_COLD, CLASS_DEFAULT, CLASS_SHORT, DELTA_BYTES,
    META_PAGE_HEADER,
};
pub use delta::{Delta, DeltaLog, DeltaPage};
pub use device::{BlockDevice, SimpleSsd};
pub use error::FtlError;
pub use ftl::{Ftl, WearStats};
pub use health::{HealthReport, WearBucket, DEFAULT_ENDURANCE_CYCLES, WEAR_HIST_BINS};
pub use mapping::{MappingTable, RevMap, RevMapPolicy, Unmapped};
pub use monitor::{EpochRecord, EpochSample, FlightRecorder, FlightSnapshot, SealOutcome};
pub use pool::{BlockPool, BlockState, WritePoint};
pub use queue::{CmdOutput, CmdTag, Completion, QueuedCmd};
pub use shared::SharedDevice;
pub use snapshot::{SnapshotInfo, SnapshotTable};
pub use stats::DeviceStats;
pub use types::{Lpn, SharePair};
pub use util::crc32c;

/// Re-exported observability subsystem (see the `share-telemetry` crate):
/// op-class counters, latency histograms, command ring, exporters.
pub use share_telemetry as telemetry;
pub use share_telemetry::{
    Alert, AlertKind, AlertSeverity, Layer, OpClass, SloConfig, Snapshot, Span, SpanId, Telemetry,
    TelemetryConfig, Track, Tracer,
};

/// Result alias for device operations.
pub type Result<T> = std::result::Result<T, FtlError>;
