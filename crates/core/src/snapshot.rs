//! Device-level snapshot table: named, frozen alias namespaces over the
//! live L2P map, built on the same refcount machinery as SHARE.
//!
//! `snapshot_create` freezes the physical pages currently backing a
//! logical range into a [`SnapshotRecord`] — O(mapped pages) map reads and
//! **zero NAND programs**. The frozen PPNs *pin* their physical pages:
//! GC may relocate a pinned page (rewriting the frozen entry) but never
//! reclaims it while any snapshot references it, even after the live map
//! has moved on. Clones re-enter frozen pages into the live map through
//! the ordinary shared-mapping path, so copy-on-write falls out of the
//! existing refcount/invalidation machinery for free.
//!
//! Durability: the whole table is serialized into checkpoint images
//! (format v4; older images decode as an empty table), and incremental
//! changes between checkpoints ride the delta log as *tagged* deltas —
//! `Delta.lpn` bit 63 marks a snapshot record carrying `(snap id, page
//! offset)` instead of a logical page. Replaying a tagged delta against an
//! unknown snapshot id is a no-op: a snapshot created after the last
//! checkpoint was never durable, so losing it at a crash is the documented
//! (fsync-like) contract — `snapshot_persist` checkpoints to harden it.

use crate::error::FtlError;
use crate::types::Lpn;
use nand_sim::Ppn;
use std::collections::HashMap;

/// Tag bit marking a delta-log record as a snapshot-table delta.
pub const SNAP_DELTA_TAG: u64 = 1 << 63;
/// Snapshot ids fit 23 bits (bits 40..63 of a tagged delta LPN).
pub const SNAP_MAX_ID: u32 = (1 << 23) - 1;
/// Page offsets within a snapshot fit 40 bits; the all-ones offset is the
/// drop tombstone.
pub const SNAP_MAX_OFFSET: u64 = (1 << 40) - 2;
const SNAP_TOMBSTONE_OFFSET: u64 = (1 << 40) - 1;

/// Magic prefixing the serialized snapshot table ("SNAP").
const SNAP_MAGIC: u32 = 0x534E_4150;

/// Pack `(snap id, page offset)` into a tagged delta LPN.
#[inline]
pub fn snap_delta_lpn(id: u32, offset: u64) -> Lpn {
    debug_assert!(id <= SNAP_MAX_ID);
    debug_assert!(offset <= SNAP_TOMBSTONE_OFFSET);
    Lpn(SNAP_DELTA_TAG | ((id as u64) << 40) | offset)
}

/// Tombstone delta LPN recording the drop of snapshot `id`.
#[inline]
pub fn snap_tombstone_lpn(id: u32) -> Lpn {
    snap_delta_lpn(id, SNAP_TOMBSTONE_OFFSET)
}

/// What a tagged delta-log record means for the snapshot table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapDelta {
    /// Frozen entry `(snap id, offset)` moved to a new physical page
    /// (GC relocation of a pinned page).
    Relocate {
        /// Snapshot id the entry belongs to.
        id: u32,
        /// Page offset within the snapshot's range.
        offset: u64,
    },
    /// Snapshot `id` was dropped.
    Tombstone {
        /// Snapshot id that was dropped.
        id: u32,
    },
}

/// Decode a delta LPN: `None` for an ordinary logical-page delta,
/// `Some(..)` for a snapshot-table delta.
#[inline]
pub fn decode_snap_delta(lpn: Lpn) -> Option<SnapDelta> {
    if lpn.0 & SNAP_DELTA_TAG == 0 {
        return None;
    }
    let id = ((lpn.0 >> 40) & SNAP_MAX_ID as u64) as u32;
    let offset = lpn.0 & ((1 << 40) - 1);
    Some(if offset == SNAP_TOMBSTONE_OFFSET {
        SnapDelta::Tombstone { id }
    } else {
        SnapDelta::Relocate { id, offset }
    })
}

/// Host-visible description of one snapshot (for `snapshot_list`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotInfo {
    /// Monotonically-assigned snapshot id (device-lifetime unique).
    pub id: u32,
    /// Host-chosen name.
    pub name: String,
    /// First logical page of the frozen range.
    pub start: Lpn,
    /// Length of the frozen range in pages.
    pub len: u64,
    /// Pages that were mapped (non-hole) at create time.
    pub mapped_pages: u64,
}

/// One frozen alias namespace: the physical pages backing a logical range
/// at create time. Holes (unmapped pages at create) are absent and read
/// back as zeroes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotRecord {
    /// Device-lifetime-unique id (also the delta-log tag id).
    pub id: u32,
    /// Host-chosen name, unique among live snapshots.
    pub name: String,
    /// First logical page of the frozen range.
    pub start: Lpn,
    /// Length of the frozen range in pages.
    pub len: u64,
    /// `(offset, ppn)` for every page mapped at create time, sorted by
    /// offset (offset is relative to `start`).
    pub pages: Vec<(u64, Ppn)>,
}

impl SnapshotRecord {
    /// Frozen physical page at `offset`, or `None` for a hole.
    pub fn page_at(&self, offset: u64) -> Option<Ppn> {
        self.pages.binary_search_by_key(&offset, |&(o, _)| o).ok().map(|i| self.pages[i].1)
    }

    fn info(&self) -> SnapshotInfo {
        SnapshotInfo {
            id: self.id,
            name: self.name.clone(),
            start: self.start,
            len: self.len,
            mapped_pages: self.pages.len() as u64,
        }
    }
}

/// The device snapshot table: live snapshots plus a reverse index from
/// pinned physical pages to the frozen entries referencing them.
#[derive(Debug, Default)]
pub struct SnapshotTable {
    /// Live snapshots, sorted by id.
    snaps: Vec<SnapshotRecord>,
    /// Next id to assign (monotonic across drops — ids are never reused,
    /// so a stale tagged delta can never resurrect onto a new snapshot).
    next_id: u32,
    /// `ppn -> [(snap id, offset)]` for every frozen entry. Pin lookups
    /// and GC relocation rewrites are O(refs) through this index. Never
    /// iterated for ordered effects (HashMap order is nondeterministic);
    /// only per-key lookups and order-independent aggregation.
    rev: HashMap<u32, Vec<(u32, u64)>>,
}

impl SnapshotTable {
    /// An empty table (fresh device or pre-v4 image).
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether no snapshot is live (the off-path fast test).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.snaps.is_empty()
    }

    /// Number of live snapshots.
    pub fn count(&self) -> usize {
        self.snaps.len()
    }

    /// Total frozen (non-hole) entries across all snapshots.
    pub fn frozen_pages(&self) -> u64 {
        self.snaps.iter().map(|s| s.pages.len() as u64).sum()
    }

    /// Distinct physical pages pinned by at least one snapshot.
    pub fn pinned_pages(&self) -> u64 {
        self.rev.len() as u64
    }

    /// Look up a live snapshot by name.
    pub fn get(&self, name: &str) -> Option<&SnapshotRecord> {
        self.snaps.iter().find(|s| s.name == name)
    }

    /// Host-visible listing, sorted by id.
    pub fn list(&self) -> Vec<SnapshotInfo> {
        self.snaps.iter().map(|s| s.info()).collect()
    }

    /// Whether `ppn` is referenced by any frozen entry (GC must relocate,
    /// never reclaim, such a page).
    #[inline]
    pub fn is_pinned(&self, ppn: Ppn) -> bool {
        self.rev.contains_key(&ppn.0)
    }

    /// Create a snapshot freezing `pages` (sorted `(offset, ppn)` pairs).
    /// Fails if the name is already live or the id/offset space is
    /// exhausted.
    pub fn create(
        &mut self,
        name: &str,
        start: Lpn,
        len: u64,
        pages: Vec<(u64, Ppn)>,
    ) -> Result<u32, FtlError> {
        if self.get(name).is_some() {
            return Err(FtlError::SnapshotExists);
        }
        if self.next_id > SNAP_MAX_ID || len > SNAP_MAX_OFFSET + 1 {
            return Err(FtlError::SnapshotTableFull);
        }
        debug_assert!(pages.windows(2).all(|w| w[0].0 < w[1].0), "offsets sorted unique");
        let id = self.next_id;
        self.next_id += 1;
        for &(offset, ppn) in &pages {
            self.rev.entry(ppn.0).or_default().push((id, offset));
        }
        self.snaps.push(SnapshotRecord {
            id,
            name: name.to_string(),
            start,
            len,
            pages,
        });
        Ok(id)
    }

    /// Drop the snapshot named `name`, unpinning its entries. Returns the
    /// record so the caller can settle invalidation blame for pages whose
    /// last reference just died.
    pub fn remove(&mut self, name: &str) -> Result<SnapshotRecord, FtlError> {
        let pos = self
            .snaps
            .iter()
            .position(|s| s.name == name)
            .ok_or(FtlError::SnapshotNotFound)?;
        let rec = self.snaps.remove(pos);
        self.unpin(&rec);
        Ok(rec)
    }

    /// Drop by id (tagged-tombstone replay). Unknown ids are a no-op.
    pub fn remove_by_id(&mut self, id: u32) -> Option<SnapshotRecord> {
        let pos = self.snaps.iter().position(|s| s.id == id)?;
        let rec = self.snaps.remove(pos);
        self.unpin(&rec);
        Some(rec)
    }

    fn unpin(&mut self, rec: &SnapshotRecord) {
        for &(offset, ppn) in &rec.pages {
            if let Some(refs) = self.rev.get_mut(&ppn.0) {
                refs.retain(|&(id, o)| !(id == rec.id && o == offset));
                if refs.is_empty() {
                    self.rev.remove(&ppn.0);
                }
            }
        }
    }

    /// Rewrite every frozen entry referencing `from` to `to` (GC moved the
    /// physical page). Returns the rewritten `(snap id, offset)` entries so
    /// the caller can log tagged relocation deltas. Deterministic: the
    /// per-PPN ref list preserves insertion order.
    pub fn relocate(&mut self, from: Ppn, to: Ppn) -> Vec<(u32, u64)> {
        let Some(refs) = self.rev.remove(&from.0) else {
            return Vec::new();
        };
        for &(id, offset) in &refs {
            let snap = self
                .snaps
                .iter_mut()
                .find(|s| s.id == id)
                .expect("rev index names a live snapshot");
            let i = snap
                .pages
                .binary_search_by_key(&offset, |&(o, _)| o)
                .expect("rev index names a frozen entry");
            snap.pages[i].1 = to;
        }
        self.rev.entry(to.0).or_default().extend(refs.iter().copied());
        refs
    }

    /// Replay a tagged relocation delta: move snapshot `id`'s entry at
    /// `offset` to `new`. Unknown ids (snapshot never persisted) and
    /// missing offsets are ignored.
    pub fn replay_relocate(&mut self, id: u32, offset: u64, new: Ppn) {
        let Some(snap) = self.snaps.iter_mut().find(|s| s.id == id) else {
            return;
        };
        if let Ok(i) = snap.pages.binary_search_by_key(&offset, |&(o, _)| o) {
            snap.pages[i].1 = new;
        }
    }

    /// Rebuild the reverse pin index from the records (after checkpoint
    /// decode plus delta replay).
    pub fn rebuild_rev(&mut self) {
        self.rev.clear();
        for snap in &self.snaps {
            for &(offset, ppn) in &snap.pages {
                self.rev.entry(ppn.0).or_default().push((snap.id, offset));
            }
        }
    }

    /// Per-block count of *pinned-dead* pages (pinned by a snapshot but no
    /// longer live in the L2P map): pages GC must relocate even though the
    /// mapping's valid count ignores them. `block_of` maps a PPN to a
    /// pool-relative block index (or `None` outside the pool); `is_live`
    /// is the live-map test. Order-independent aggregation over the rev
    /// index, so HashMap iteration order cannot leak into results.
    pub fn pinned_dead_by_block(
        &self,
        blocks: usize,
        block_of: impl Fn(Ppn) -> Option<u32>,
        is_live: impl Fn(Ppn) -> bool,
    ) -> Vec<u32> {
        let mut counts = vec![0u32; blocks];
        for &ppn in self.rev.keys() {
            let ppn = Ppn(ppn);
            if !is_live(ppn) {
                if let Some(rel) = block_of(ppn) {
                    counts[rel as usize] += 1;
                }
            }
        }
        counts
    }

    /// Serialize the whole table (checkpoint image v4 section). An empty
    /// table serializes to an empty byte string, keeping v4 images of
    /// snapshot-free devices byte-identical to v3.
    pub fn encode(&self) -> Vec<u8> {
        if self.is_empty() && self.next_id == 0 {
            return Vec::new();
        }
        let mut out = Vec::new();
        out.extend_from_slice(&SNAP_MAGIC.to_le_bytes());
        out.extend_from_slice(&self.next_id.to_le_bytes());
        out.extend_from_slice(&(self.snaps.len() as u32).to_le_bytes());
        for snap in &self.snaps {
            out.extend_from_slice(&snap.id.to_le_bytes());
            let name = snap.name.as_bytes();
            out.extend_from_slice(&(name.len() as u16).to_le_bytes());
            out.extend_from_slice(name);
            out.extend_from_slice(&snap.start.0.to_le_bytes());
            out.extend_from_slice(&snap.len.to_le_bytes());
            out.extend_from_slice(&(snap.pages.len() as u64).to_le_bytes());
            for &(offset, ppn) in &snap.pages {
                out.extend_from_slice(&offset.to_le_bytes());
                out.extend_from_slice(&ppn.0.to_le_bytes());
            }
        }
        out
    }

    /// Decode a serialized table. Empty input decodes as the empty table
    /// (pre-v4 images). The rev index is rebuilt.
    pub fn decode(bytes: &[u8]) -> Result<Self, FtlError> {
        if bytes.is_empty() {
            return Ok(Self::new());
        }
        let mut r = Reader { bytes, pos: 0 };
        if r.u32()? != SNAP_MAGIC {
            return Err(FtlError::RecoveryCorrupt("snapshot table magic".into()));
        }
        let next_id = r.u32()?;
        let count = r.u32()? as usize;
        let mut snaps = Vec::with_capacity(count);
        let mut prev_id = None;
        for _ in 0..count {
            let id = r.u32()?;
            if id >= next_id || prev_id.is_some_and(|p| id <= p) {
                return Err(FtlError::RecoveryCorrupt("snapshot table ids".into()));
            }
            prev_id = Some(id);
            let name_len = r.u16()? as usize;
            let name = String::from_utf8(r.take(name_len)?.to_vec())
                .map_err(|_| FtlError::RecoveryCorrupt("snapshot name".into()))?;
            let start = Lpn(r.u64()?);
            let len = r.u64()?;
            let mapped = r.u64()? as usize;
            let mut pages = Vec::with_capacity(mapped);
            let mut prev_off = None;
            for _ in 0..mapped {
                let offset = r.u64()?;
                let ppn = Ppn(r.u32()?);
                if offset >= len || prev_off.is_some_and(|p| offset <= p) {
                    return Err(FtlError::RecoveryCorrupt("snapshot entry offsets".into()));
                }
                prev_off = Some(offset);
                pages.push((offset, ppn));
            }
            snaps.push(SnapshotRecord { id, name, start, len, pages });
        }
        if r.pos != bytes.len() {
            return Err(FtlError::RecoveryCorrupt("snapshot table trailing bytes".into()));
        }
        let mut table = Self { snaps, next_id, rev: HashMap::new() };
        table.rebuild_rev();
        Ok(table)
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], FtlError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(FtlError::RecoveryCorrupt("snapshot table truncated".into()))?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u16(&mut self) -> Result<u16, FtlError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len checked")))
    }

    fn u32(&mut self) -> Result<u32, FtlError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len checked")))
    }

    fn u64(&mut self) -> Result<u64, FtlError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len checked")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pages(list: &[(u64, u32)]) -> Vec<(u64, Ppn)> {
        list.iter().map(|&(o, p)| (o, Ppn(p))).collect()
    }

    #[test]
    fn create_pins_and_drop_unpins() {
        let mut t = SnapshotTable::new();
        let id = t.create("a", Lpn(0), 8, pages(&[(0, 100), (3, 101)])).unwrap();
        assert_eq!(id, 0);
        assert!(t.is_pinned(Ppn(100)));
        assert!(t.is_pinned(Ppn(101)));
        assert!(!t.is_pinned(Ppn(102)));
        assert_eq!(t.frozen_pages(), 2);
        assert_eq!(t.pinned_pages(), 2);
        let rec = t.remove("a").unwrap();
        assert_eq!(rec.id, 0);
        assert!(!t.is_pinned(Ppn(100)));
        assert!(t.is_empty());
    }

    #[test]
    fn shared_pin_survives_one_drop() {
        let mut t = SnapshotTable::new();
        t.create("a", Lpn(0), 4, pages(&[(0, 7)])).unwrap();
        t.create("b", Lpn(0), 4, pages(&[(1, 7)])).unwrap();
        t.remove("a").unwrap();
        assert!(t.is_pinned(Ppn(7)), "second snapshot still pins the page");
        t.remove("b").unwrap();
        assert!(!t.is_pinned(Ppn(7)));
    }

    #[test]
    fn duplicate_name_rejected_ids_monotonic() {
        let mut t = SnapshotTable::new();
        assert_eq!(t.create("a", Lpn(0), 1, vec![]).unwrap(), 0);
        assert_eq!(t.create("a", Lpn(0), 1, vec![]), Err(FtlError::SnapshotExists));
        t.remove("a").unwrap();
        // Ids are never reused after a drop.
        assert_eq!(t.create("a", Lpn(0), 1, vec![]).unwrap(), 1);
        assert_eq!(t.remove("missing"), Err(FtlError::SnapshotNotFound));
    }

    #[test]
    fn relocate_rewrites_entries_and_rev() {
        let mut t = SnapshotTable::new();
        t.create("a", Lpn(0), 8, pages(&[(2, 50)])).unwrap();
        t.create("b", Lpn(8), 8, pages(&[(5, 50), (6, 60)])).unwrap();
        let moved = t.relocate(Ppn(50), Ppn(99));
        assert_eq!(moved, vec![(0, 2), (1, 5)]);
        assert!(!t.is_pinned(Ppn(50)));
        assert!(t.is_pinned(Ppn(99)));
        assert_eq!(t.get("a").unwrap().page_at(2), Some(Ppn(99)));
        assert_eq!(t.get("b").unwrap().page_at(5), Some(Ppn(99)));
        assert_eq!(t.get("b").unwrap().page_at(6), Some(Ppn(60)));
        assert!(t.relocate(Ppn(1234), Ppn(5)).is_empty());
    }

    #[test]
    fn pinned_dead_counts_per_block() {
        let mut t = SnapshotTable::new();
        t.create("a", Lpn(0), 16, pages(&[(0, 4), (1, 5), (2, 12)])).unwrap();
        // 4 pages per block; ppn 4,5 -> block 1, ppn 12 -> block 3.
        // ppn 5 is still live; only dead pins count.
        let counts = t.pinned_dead_by_block(4, |p| Some(p.0 / 4), |p| p.0 == 5);
        assert_eq!(counts, vec![0, 1, 0, 1]);
    }

    #[test]
    fn encode_decode_round_trips() {
        let mut t = SnapshotTable::new();
        t.create("db-main", Lpn(64), 32, pages(&[(0, 9), (7, 12), (31, 80)])).unwrap();
        t.create("backup", Lpn(0), 4, vec![]).unwrap();
        t.remove("db-main").unwrap();
        let bytes = t.encode();
        let back = SnapshotTable::decode(&bytes).unwrap();
        assert_eq!(back.count(), 1);
        assert_eq!(back.next_id, 2, "monotonic id cursor survives");
        let b = back.get("backup").unwrap();
        assert_eq!((b.id, b.start, b.len), (1, Lpn(0), 4));
        assert!(!back.is_pinned(Ppn(9)), "dropped snapshot left no pins");
    }

    #[test]
    fn empty_table_encodes_to_nothing() {
        let t = SnapshotTable::new();
        assert!(t.encode().is_empty());
        let back = SnapshotTable::decode(&[]).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn decode_rejects_corruption() {
        let mut t = SnapshotTable::new();
        t.create("a", Lpn(0), 8, pages(&[(1, 3)])).unwrap();
        let good = t.encode();
        assert!(SnapshotTable::decode(&good[..good.len() - 1]).is_err(), "truncated");
        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xff;
        assert!(SnapshotTable::decode(&bad_magic).is_err(), "magic");
        let mut extra = good.clone();
        extra.push(0);
        assert!(SnapshotTable::decode(&extra).is_err(), "trailing bytes");
    }

    #[test]
    fn tagged_delta_lpns_round_trip() {
        for (id, offset) in [(0u32, 0u64), (7, 1 << 20), (SNAP_MAX_ID, SNAP_MAX_OFFSET)] {
            let lpn = snap_delta_lpn(id, offset);
            assert_eq!(decode_snap_delta(lpn), Some(SnapDelta::Relocate { id, offset }));
        }
        assert_eq!(
            decode_snap_delta(snap_tombstone_lpn(42)),
            Some(SnapDelta::Tombstone { id: 42 })
        );
        assert_eq!(decode_snap_delta(Lpn(12345)), None, "ordinary LPNs untagged");
    }

    #[test]
    fn replay_relocate_ignores_unknown_ids() {
        let mut t = SnapshotTable::new();
        t.create("a", Lpn(0), 8, pages(&[(2, 50)])).unwrap();
        t.replay_relocate(99, 2, Ppn(7)); // unknown id: no-op
        t.replay_relocate(0, 3, Ppn(7)); // hole offset: no-op
        t.replay_relocate(0, 2, Ppn(70));
        assert_eq!(t.get("a").unwrap().page_at(2), Some(Ppn(70)));
    }
}
