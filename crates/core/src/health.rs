//! SMART-style device health and wear model.
//!
//! Everything here is derived read-only from state the device already
//! persists — per-block erase counts (NAND image), pool free-block state,
//! and the cumulative [`DeviceStats`] — so a health report can be taken
//! from any image without changing it, and the image format is untouched.
//!
//! The centerpiece is [`HealthReport`]: the erase-count distribution as a
//! bucketed wear histogram plus summary moments, free-block headroom,
//! cumulative write amplification, and a remaining-life estimate in the
//! spirit of SMART attribute 177 (wear leveling) / 231 (life left):
//! `1 - mean_erases / endurance_cycles`, clamped to `[0, 1]`.

use crate::ftl::WearStats;
use crate::stats::DeviceStats;
use share_telemetry::json::{count, num, Json};
use share_telemetry::HealthGauges;

/// Rated program/erase cycles assumed when no override is given. Mid-range
/// MLC endurance; `sharectl doctor --endurance` overrides it per report.
pub const DEFAULT_ENDURANCE_CYCLES: u64 = 3_000;

/// Number of equal-width bins in the erase-count histogram.
pub const WEAR_HIST_BINS: usize = 12;

/// One bin of the erase-count histogram: blocks whose erase count lies in
/// `[lo, hi]` (inclusive).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WearBucket {
    /// Lowest erase count this bin covers.
    pub lo: u32,
    /// Highest erase count this bin covers.
    pub hi: u32,
    /// Data blocks whose erase count falls in the bin.
    pub blocks: u64,
}

/// A point-in-time device health report.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthReport {
    /// Erase-count summary moments over the data pool.
    pub wear: WearStats,
    /// Wear-leveling skew (max/mean erases; 1.0 = perfectly even).
    pub wear_skew: f64,
    /// Bucketed erase-count histogram (equal-width bins over `min..=max`;
    /// bucket counts always sum to `data_blocks`).
    pub wear_hist: Vec<WearBucket>,
    /// Data blocks currently free.
    pub free_blocks: u64,
    /// Data blocks total.
    pub data_blocks: u64,
    /// Host pages written over the device's lifetime.
    pub host_writes: u64,
    /// Cumulative write-amplification factor (NAND programs / host writes).
    pub waf: f64,
    /// GC copyback pages over the device's lifetime.
    pub copyback_pages: u64,
    /// Mapping meta pages (delta log + checkpoints) over the lifetime.
    pub meta_page_writes: u64,
    /// Remaining-life fraction in `[0, 1]`.
    pub remaining_life: f64,
    /// The rated endurance the estimate assumed.
    pub endurance_cycles: u64,
}

impl HealthReport {
    /// Build a report from per-block erase counts, pool headroom, and the
    /// cumulative device counters.
    pub fn compute(
        erase_counts: &[u32],
        free_blocks: u64,
        stats: &DeviceStats,
        endurance_cycles: u64,
    ) -> HealthReport {
        let wear = WearStats::from_counts(erase_counts.iter().copied());
        let remaining_life = if endurance_cycles == 0 {
            0.0
        } else {
            (1.0 - wear.mean_erases / endurance_cycles as f64).clamp(0.0, 1.0)
        };
        HealthReport {
            wear,
            wear_skew: wear.skew(),
            wear_hist: wear_histogram(erase_counts, &wear),
            free_blocks,
            data_blocks: erase_counts.len() as u64,
            host_writes: stats.host_writes,
            waf: stats.waf(),
            copyback_pages: stats.copyback_pages,
            meta_page_writes: stats.meta_page_writes,
            remaining_life,
            endurance_cycles,
        }
    }

    /// The exporter-facing gauge subset of this report.
    pub fn gauges(&self) -> HealthGauges {
        HealthGauges {
            wear_min: self.wear.min_erases as u64,
            wear_max: self.wear.max_erases as u64,
            wear_mean: self.wear.mean_erases,
            wear_stddev: self.wear.stddev_erases,
            wear_skew: self.wear_skew,
            free_blocks: self.free_blocks,
            data_blocks: self.data_blocks,
            remaining_life: self.remaining_life,
            endurance_cycles: self.endurance_cycles,
        }
    }

    /// JSON form used by `sharectl doctor` and bench dumps.
    pub fn to_json(&self) -> Json {
        let hist = Json::Arr(
            self.wear_hist
                .iter()
                .map(|b| {
                    Json::obj(vec![
                        ("lo", count(b.lo as u64)),
                        ("hi", count(b.hi as u64)),
                        ("blocks", count(b.blocks)),
                    ])
                })
                .collect(),
        );
        Json::obj(vec![
            ("wear_min", count(self.wear.min_erases as u64)),
            ("wear_max", count(self.wear.max_erases as u64)),
            ("wear_mean", num(self.wear.mean_erases)),
            ("wear_stddev", num(self.wear.stddev_erases)),
            ("wear_skew", num(self.wear_skew)),
            ("wear_hist", hist),
            ("free_blocks", count(self.free_blocks)),
            ("data_blocks", count(self.data_blocks)),
            ("host_writes", count(self.host_writes)),
            ("waf", num(self.waf)),
            ("copyback_pages", count(self.copyback_pages)),
            ("meta_page_writes", count(self.meta_page_writes)),
            ("remaining_life", num(self.remaining_life)),
            ("endurance_cycles", count(self.endurance_cycles)),
        ])
    }
}

/// Equal-width erase-count histogram over `[min, max]`. A flat pool (all
/// blocks at the same count) collapses to one bin; bin counts always sum
/// to the number of blocks.
fn wear_histogram(erase_counts: &[u32], wear: &WearStats) -> Vec<WearBucket> {
    if erase_counts.is_empty() {
        return Vec::new();
    }
    let (lo, hi) = (wear.min_erases, wear.max_erases);
    let span = (hi - lo) as u64 + 1;
    let bins = (WEAR_HIST_BINS as u64).min(span) as usize;
    let width = span.div_ceil(bins as u64);
    let mut out: Vec<WearBucket> = (0..bins)
        .map(|i| {
            let b_lo = lo as u64 + i as u64 * width;
            let b_hi = (b_lo + width - 1).min(hi as u64);
            WearBucket { lo: b_lo as u32, hi: b_hi as u32, blocks: 0 }
        })
        .collect();
    for &e in erase_counts {
        let idx = (((e - lo) as u64) / width) as usize;
        out[idx.min(bins - 1)].blocks += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_summarizes_wear_and_life() {
        let counts = vec![10u32, 20, 30, 40];
        let stats = DeviceStats {
            host_writes: 1000,
            copyback_pages: 250,
            meta_page_writes: 50,
            nand: nand_sim::NandStats { page_programs: 1300, ..Default::default() },
            ..Default::default()
        };
        let r = HealthReport::compute(&counts, 2, &stats, 100);
        assert_eq!(r.wear.min_erases, 10);
        assert_eq!(r.wear.max_erases, 40);
        assert!((r.wear.mean_erases - 25.0).abs() < 1e-12);
        assert!((r.wear_skew - 40.0 / 25.0).abs() < 1e-12);
        assert!((r.waf - 1.3).abs() < 1e-12);
        assert_eq!(r.data_blocks, 4);
        assert_eq!(r.free_blocks, 2);
        // 25 mean erases of 100 rated cycles → 75% life left.
        assert!((r.remaining_life - 0.75).abs() < 1e-12);
        // Histogram covers every block exactly once.
        assert_eq!(r.wear_hist.iter().map(|b| b.blocks).sum::<u64>(), 4);
        assert_eq!(r.wear_hist[0].lo, 10);
        assert_eq!(r.wear_hist.last().unwrap().hi, 40);
    }

    #[test]
    fn life_clamps_and_handles_zero_endurance() {
        let counts = vec![500u32; 3];
        let stats = DeviceStats::default();
        assert_eq!(HealthReport::compute(&counts, 0, &stats, 100).remaining_life, 0.0);
        assert_eq!(HealthReport::compute(&counts, 0, &stats, 0).remaining_life, 0.0);
        let fresh = HealthReport::compute(&[0, 0], 2, &stats, 100);
        assert_eq!(fresh.remaining_life, 1.0);
        assert_eq!(fresh.wear_skew, 0.0);
    }

    #[test]
    fn flat_pool_collapses_histogram_to_one_bin() {
        let r = HealthReport::compute(&[7u32; 16], 4, &DeviceStats::default(), 100);
        assert_eq!(r.wear_hist.len(), 1);
        assert_eq!(r.wear_hist[0], WearBucket { lo: 7, hi: 7, blocks: 16 });
        // Empty pool: no histogram, no NaNs.
        let empty = HealthReport::compute(&[], 0, &DeviceStats::default(), 100);
        assert!(empty.wear_hist.is_empty());
        assert_eq!(empty.remaining_life, 1.0);
    }

    #[test]
    fn report_json_round_trips() {
        let r = HealthReport::compute(&[1, 2, 3, 100], 1, &DeviceStats::default(), 3000);
        let doc = r.to_json();
        let back = share_telemetry::json::parse(&doc.render()).expect("health json parses");
        assert_eq!(back.get("wear_max").and_then(Json::as_u64), Some(100));
        assert_eq!(back.get("data_blocks").and_then(Json::as_u64), Some(4));
        let hist = back.get("wear_hist").and_then(Json::as_array).unwrap();
        let total: u64 =
            hist.iter().filter_map(|b| b.get("blocks").and_then(Json::as_u64)).sum();
        assert_eq!(total, 4);
        // Gauges mirror the report.
        let g = r.gauges();
        assert_eq!(g.wear_max, 100);
        assert_eq!(g.data_blocks, 4);
        assert_eq!(g.endurance_cycles, 3000);
    }
}
