//! The mapping **delta log** (§4.2.2 of the paper).
//!
//! Every mapping-table change is recorded as a Delta `(LPN, old PPN, new
//! PPN)`. Deltas accumulate in RAM and are flushed to the on-flash log ring
//! in page-sized groups; a mapping update is *persistent* only once its
//! delta page is programmed (the simulated device has no emergency power
//! capacitor). A SHARE batch is made atomic by packing all of its deltas
//! into a single log page: flash programs a page all-or-nothing, so after a
//! crash either every remap of the batch is visible or none is.

use crate::config::{FtlConfig, DELTA_BYTES, META_PAGE_HEADER};
use crate::error::FtlError;
use crate::types::{Lpn, Ppn};
use crate::util::{crc32c, get_u32, get_u64, put_u32, put_u64};
use nand_sim::{BlockId, NandArray};

/// Magic tag of a delta-log page.
const DLOG_MAGIC: u32 = 0x444C_4F47; // "DLOG"

/// One mapping-table change record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delta {
    /// Logical page whose mapping changed.
    pub lpn: Lpn,
    /// Previous physical page (INVALID for a first write).
    pub old: Ppn,
    /// New physical page (INVALID for a TRIM).
    pub new: Ppn,
}

impl Delta {
    fn encode(&self, buf: &mut [u8], off: usize) -> usize {
        let off = put_u64(buf, off, self.lpn.0);
        let off = put_u32(buf, off, self.old.0);
        put_u32(buf, off, self.new.0)
    }

    fn decode(buf: &[u8], off: usize) -> (Delta, usize) {
        let lpn = Lpn(get_u64(buf, off));
        let old = Ppn(get_u32(buf, off + 8));
        let new = Ppn(get_u32(buf, off + 12));
        (Delta { lpn, old, new }, off + DELTA_BYTES)
    }
}

/// A decoded delta-log page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaPage {
    /// Monotonic page sequence number.
    pub seq: u64,
    /// The deltas recorded in this page, in apply order.
    pub deltas: Vec<Delta>,
}

/// The delta log: RAM buffer plus on-flash ring cursor.
#[derive(Debug)]
pub struct DeltaLog {
    ring_start: BlockId,
    ring_blocks: u32,
    pages_per_block: u32,
    page_size: usize,
    deltas_per_page: usize,
    buffered: Vec<Delta>,
    /// Next page sequence number to assign.
    next_seq: u64,
    /// Next page slot in the ring (0-based across the whole ring).
    cursor: u32,
    /// Meta pages programmed over the log's lifetime.
    pub pages_written: u64,
}

impl DeltaLog {
    /// A fresh log for `cfg`, starting at sequence `first_seq`.
    pub fn new(cfg: &FtlConfig, first_seq: u64) -> Self {
        Self {
            ring_start: cfg.log_ring_start(),
            ring_blocks: cfg.log_blocks,
            pages_per_block: cfg.geometry.pages_per_block,
            page_size: cfg.geometry.page_size,
            deltas_per_page: cfg.deltas_per_page(),
            buffered: Vec::new(),
            next_seq: first_seq,
            cursor: 0,
            pages_written: 0,
        }
    }

    /// Deltas currently buffered in RAM (not yet persistent).
    pub fn buffered(&self) -> usize {
        self.buffered.len()
    }

    /// Total page slots in the ring.
    pub fn ring_pages(&self) -> u32 {
        self.ring_blocks * self.pages_per_block
    }

    /// Unprogrammed page slots remaining in the ring.
    pub fn pages_remaining(&self) -> u32 {
        self.ring_pages() - self.cursor
    }

    /// Sequence number the next flushed page will carry.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Append one delta to the RAM buffer (not yet persistent).
    pub fn append(&mut self, delta: Delta) {
        self.buffered.push(delta);
    }

    /// Whether the RAM buffer has reached one page worth of deltas.
    pub fn buffer_full(&self) -> bool {
        self.buffered.len() >= self.deltas_per_page
    }

    /// Drop buffered deltas without persisting them. Used when a checkpoint
    /// snapshots the RAM mapping table, which already reflects them.
    pub fn clear_buffered(&mut self) {
        self.buffered.clear();
    }

    fn ppn_of_slot(&self, slot: u32) -> nand_sim::Ppn {
        let block = BlockId(self.ring_start.0 + slot / self.pages_per_block);
        nand_sim::Ppn(block.0 * self.pages_per_block + slot % self.pages_per_block)
    }

    fn encode_page(&self, seq: u64, deltas: &[Delta]) -> Vec<u8> {
        debug_assert!(deltas.len() <= self.deltas_per_page);
        let mut page = vec![0u8; self.page_size];
        let mut off = META_PAGE_HEADER;
        for d in deltas {
            off = d.encode(&mut page, off);
        }
        // CRC over the whole payload region (zero padding included) so a
        // torn program whose intact prefix happens to contain all deltas is
        // still detected — the torn tail reads 0xFF, not zero.
        let crc = crc32c(&page[META_PAGE_HEADER..]);
        put_u32(&mut page, 0, DLOG_MAGIC);
        put_u64(&mut page, 4, seq);
        put_u32(&mut page, 12, deltas.len() as u32);
        put_u32(&mut page, 16, crc);
        page
    }

    fn program_page(&mut self, nand: &mut NandArray, deltas: &[Delta]) -> Result<(), FtlError> {
        if self.cursor >= self.ring_pages() {
            // The FTL checkpoints before the ring fills; hitting this means
            // the caller's checkpoint policy is broken.
            return Err(FtlError::RecoveryCorrupt("delta-log ring overflow".into()));
        }
        let seq = self.next_seq;
        let page = self.encode_page(seq, deltas);
        let ppn = self.ppn_of_slot(self.cursor);
        nand.program(ppn, &page)?;
        self.next_seq += 1;
        self.cursor += 1;
        self.pages_written += 1;
        Ok(())
    }

    /// Flush all buffered deltas to the ring (possibly multiple pages).
    pub fn flush(&mut self, nand: &mut NandArray) -> Result<(), FtlError> {
        while !self.buffered.is_empty() {
            let take = self.buffered.len().min(self.deltas_per_page);
            let chunk: Vec<Delta> = self.buffered.drain(..take).collect();
            self.program_page(nand, &chunk)?;
        }
        Ok(())
    }

    /// Persist `batch` atomically in one log page. Earlier buffered deltas
    /// ride along in the same page when they fit (they need ordering, not
    /// atomicity — a torn page loses them together with the batch, which
    /// only rolls back to the pre-command state); otherwise they are
    /// flushed first. Fails before touching flash if the batch alone
    /// exceeds one page.
    pub fn flush_atomic_batch(&mut self, nand: &mut NandArray, batch: &[Delta]) -> Result<(), FtlError> {
        if batch.len() > self.deltas_per_page {
            return Err(FtlError::BatchTooLarge { got: batch.len(), max: self.deltas_per_page });
        }
        if self.buffered.len() + batch.len() <= self.deltas_per_page {
            let mut page = std::mem::take(&mut self.buffered);
            page.extend_from_slice(batch);
            return self.program_page(nand, &page);
        }
        self.flush(nand)?;
        self.program_page(nand, batch)
    }

    /// Erase the ring and restart the cursor (after a checkpoint). The
    /// buffered deltas are dropped by the caller taking the checkpoint.
    pub fn reset(&mut self, nand: &mut NandArray) -> Result<(), FtlError> {
        for b in 0..self.ring_blocks {
            nand.erase(BlockId(self.ring_start.0 + b))?;
        }
        self.cursor = 0;
        Ok(())
    }

    /// Scan the ring after a crash, returning every intact page with
    /// `seq >= min_seq` in sequence order. Scanning stops at the first
    /// missing or corrupt page (a torn delta flush), which is exactly the
    /// all-or-nothing boundary SHARE atomicity relies on.
    pub fn recover(cfg: &FtlConfig, nand: &mut NandArray, min_seq: u64) -> Vec<DeltaPage> {
        let log = DeltaLog::new(cfg, 0);
        let mut out = Vec::new();
        let mut buf = vec![0u8; cfg.geometry.page_size];
        let mut expect: Option<u64> = None;
        for slot in 0..log.ring_pages() {
            let ppn = log.ppn_of_slot(slot);
            if nand.read(ppn, &mut buf).is_err() {
                break;
            }
            if get_u32(&buf, 0) != DLOG_MAGIC {
                break; // erased or foreign page: end of log
            }
            let seq = get_u64(&buf, 4);
            let count = get_u32(&buf, 12) as usize;
            let crc = get_u32(&buf, 16);
            if count > log.deltas_per_page {
                break;
            }
            if crc32c(&buf[META_PAGE_HEADER..]) != crc {
                break; // torn meta page
            }
            if let Some(e) = expect {
                if seq != e {
                    break; // stale page from a previous ring generation
                }
            }
            expect = Some(seq + 1);
            let mut deltas = Vec::with_capacity(count);
            let mut off = META_PAGE_HEADER;
            for _ in 0..count {
                let (d, next) = Delta::decode(&buf, off);
                deltas.push(d);
                off = next;
            }
            if seq >= min_seq {
                out.push(DeltaPage { seq, deltas });
            }
        }
        out
    }

    /// Position the cursor after recovery: continue appending after the
    /// last intact page.
    pub fn resume_after(&mut self, pages_found: u32, next_seq: u64) {
        self.cursor = pages_found;
        self.next_seq = next_seq;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nand_sim::{NandArray, NandTiming, SimClock};

    fn setup() -> (FtlConfig, NandArray) {
        let cfg = FtlConfig::for_capacity_with(1 << 20, 0.3, 4096, 16, NandTiming::zero());
        let nand = NandArray::with_timing(cfg.geometry, cfg.timing, SimClock::new());
        (cfg, nand)
    }

    fn d(l: u64, o: u32, n: u32) -> Delta {
        Delta { lpn: Lpn(l), old: Ppn(o), new: Ppn(n) }
    }

    #[test]
    fn flush_and_recover_round_trips() {
        let (cfg, mut nand) = setup();
        let mut log = DeltaLog::new(&cfg, 0);
        log.append(d(1, u32::MAX, 10));
        log.append(d(2, u32::MAX, 11));
        log.flush(&mut nand).unwrap();
        log.append(d(1, 10, 12));
        log.flush(&mut nand).unwrap();

        let pages = DeltaLog::recover(&cfg, &mut nand, 0);
        assert_eq!(pages.len(), 2);
        assert_eq!(pages[0].seq, 0);
        assert_eq!(pages[0].deltas, vec![d(1, u32::MAX, 10), d(2, u32::MAX, 11)]);
        assert_eq!(pages[1].deltas, vec![d(1, 10, 12)]);
    }

    #[test]
    fn min_seq_filters_checkpointed_pages() {
        let (cfg, mut nand) = setup();
        let mut log = DeltaLog::new(&cfg, 0);
        for i in 0..3 {
            log.append(d(i, u32::MAX, i as u32));
            log.flush(&mut nand).unwrap();
        }
        let pages = DeltaLog::recover(&cfg, &mut nand, 2);
        assert_eq!(pages.len(), 1);
        assert_eq!(pages[0].seq, 2);
    }

    #[test]
    fn oversized_batch_is_rejected_without_side_effects() {
        let (cfg, mut nand) = setup();
        let mut log = DeltaLog::new(&cfg, 0);
        let batch: Vec<Delta> = (0..cfg.deltas_per_page() + 1).map(|i| d(i as u64, 0, 1)).collect();
        assert!(matches!(
            log.flush_atomic_batch(&mut nand, &batch),
            Err(FtlError::BatchTooLarge { .. })
        ));
        assert_eq!(log.pages_written, 0);
        assert!(DeltaLog::recover(&cfg, &mut nand, 0).is_empty());
    }

    #[test]
    fn atomic_batch_shares_a_page_with_small_buffers() {
        let (cfg, mut nand) = setup();
        let mut log = DeltaLog::new(&cfg, 0);
        log.append(d(99, u32::MAX, 1)); // pre-existing buffered delta
        let batch: Vec<Delta> = (0..10).map(|i| d(i, 0, 1)).collect();
        log.flush_atomic_batch(&mut nand, &batch).unwrap();
        let pages = DeltaLog::recover(&cfg, &mut nand, 0);
        assert_eq!(pages.len(), 1, "buffered deltas ride in the batch page");
        assert_eq!(pages[0].deltas.len(), 11);
        assert_eq!(pages[0].deltas[0], d(99, u32::MAX, 1), "ordering preserved");
    }

    #[test]
    fn atomic_batch_flushes_large_buffers_first() {
        let (cfg, mut nand) = setup();
        let mut log = DeltaLog::new(&cfg, 0);
        for i in 0..cfg.deltas_per_page() as u64 - 3 {
            log.append(d(1000 + i, u32::MAX, i as u32));
        }
        let batch: Vec<Delta> = (0..10).map(|i| d(i, 0, 1)).collect();
        log.flush_atomic_batch(&mut nand, &batch).unwrap();
        let pages = DeltaLog::recover(&cfg, &mut nand, 0);
        assert_eq!(pages.len(), 2, "oversized combination splits");
        assert_eq!(pages[1].deltas.len(), 10, "batch stays whole in its own page");
    }

    #[test]
    fn buffered_deltas_are_not_persistent_until_flush() {
        let (cfg, mut nand) = setup();
        let mut log = DeltaLog::new(&cfg, 0);
        log.append(d(5, u32::MAX, 3));
        assert_eq!(log.buffered(), 1);
        assert!(DeltaLog::recover(&cfg, &mut nand, 0).is_empty());
    }

    #[test]
    fn recovery_stops_at_torn_meta_page() {
        let (cfg, mut nand) = setup();
        let mut log = DeltaLog::new(&cfg, 0);
        log.append(d(1, u32::MAX, 1));
        log.flush(&mut nand).unwrap();
        // Tear the next log program.
        nand.fault_handle().arm_after_programs(1, nand_sim::FaultMode::TornHalf);
        log.append(d(2, u32::MAX, 2));
        assert!(log.flush(&mut nand).is_err());
        nand.power_cycle();
        let pages = DeltaLog::recover(&cfg, &mut nand, 0);
        assert_eq!(pages.len(), 1, "torn page must not be recovered");
        assert_eq!(pages[0].deltas, vec![d(1, u32::MAX, 1)]);
    }

    #[test]
    fn reset_erases_ring_and_restarts_cursor() {
        let (cfg, mut nand) = setup();
        let mut log = DeltaLog::new(&cfg, 0);
        log.append(d(1, u32::MAX, 1));
        log.flush(&mut nand).unwrap();
        let used = log.ring_pages() - log.pages_remaining();
        assert_eq!(used, 1);
        log.reset(&mut nand).unwrap();
        assert_eq!(log.pages_remaining(), log.ring_pages());
        assert!(DeltaLog::recover(&cfg, &mut nand, log.next_seq()).is_empty());
        // Appending continues with increasing seq after reset.
        log.append(d(2, u32::MAX, 2));
        log.flush(&mut nand).unwrap();
        let pages = DeltaLog::recover(&cfg, &mut nand, 0);
        assert_eq!(pages.len(), 1);
        // Seq 0 was consumed before the reset; the ring restarts at seq 1.
        assert_eq!(pages[0].seq, 1);
    }

    #[test]
    fn multi_page_flush_splits_buffer() {
        let (cfg, mut nand) = setup();
        let mut log = DeltaLog::new(&cfg, 0);
        let n = cfg.deltas_per_page() * 2 + 7;
        for i in 0..n {
            log.append(d(i as u64, u32::MAX, i as u32));
        }
        log.flush(&mut nand).unwrap();
        assert_eq!(log.pages_written, 3);
        let pages = DeltaLog::recover(&cfg, &mut nand, 0);
        let total: usize = pages.iter().map(|p| p.deltas.len()).sum();
        assert_eq!(total, n);
    }
}
