//! Targeted fault-mode coverage at the FTL's two metadata write sites
//! (PR 2, satellite of the crash-sweep harness).
//!
//! The broad sweep in `crates/crashsweep` hits these sites statistically;
//! this file pins them down deterministically: every [`FaultMode`] is
//! injected exactly at the delta-log page program (both the `share`
//! atomic-batch path and the plain `flush` path) and at every program of
//! a checkpoint (header, each table page, commit page), with
//! mode-specific expectations for what recovery must show.

use nand_sim::{FaultMode, NandTiming};
use share_core::{BlockDevice, Ftl, FtlConfig, Lpn, SharePair};

fn cfg() -> FtlConfig {
    FtlConfig::for_capacity_with(1 << 20, 0.3, 4096, 16, NandTiming::zero())
}

fn table_pages(cfg: &FtlConfig) -> u64 {
    (cfg.logical_pages * 4).div_ceil(cfg.geometry.page_size as u64)
}

fn write_fill(ftl: &mut Ftl, lpn: u64, fill: u8) {
    let data = vec![fill; ftl.page_size()];
    ftl.write(Lpn(lpn), &data).unwrap();
}

fn read_fill(ftl: &mut Ftl, lpn: u64) -> u8 {
    let mut buf = vec![0u8; ftl.page_size()];
    ftl.read(Lpn(lpn), &mut buf).unwrap();
    assert!(buf.iter().all(|&b| b == buf[0]), "lpn {lpn} reads non-uniform content");
    buf[0]
}

fn reopen(ftl: Ftl) -> Ftl {
    let rec = Ftl::open(cfg(), ftl.into_nand()).expect("recovery must succeed");
    assert_eq!(rec.stats().recoveries, 1);
    rec
}

/// Crash exactly on the SHARE batch's single delta-log page program.
/// Torn or dropped: the batch must roll back whole; after-program: the
/// page landed, so the batch must be fully applied.
#[test]
fn share_batch_delta_page_crash_is_all_or_nothing() {
    for mode in FaultMode::ALL {
        let mut ftl = Ftl::new(cfg());
        write_fill(&mut ftl, 0, 0xAA);
        write_fill(&mut ftl, 1, 0xBB);
        write_fill(&mut ftl, 2, 0xCC);
        ftl.flush().unwrap();
        let handle = ftl.fault_handle();
        handle.arm_after_programs(1, mode); // share programs only the delta page
        ftl.share(&[SharePair::new(Lpn(4), Lpn(0)), SharePair::new(Lpn(5), Lpn(1))])
            .unwrap_err();
        assert!(handle.is_down());
        handle.disarm();

        let mut rec = reopen(ftl);
        let applied = rec.mapping_of(Lpn(4)).is_some();
        match mode {
            FaultMode::TornHalf | FaultMode::DroppedWrite => {
                assert!(!applied, "{mode:?}: a lost delta page must undo the whole batch");
                assert!(rec.mapping_of(Lpn(5)).is_none());
            }
            FaultMode::AfterProgram => {
                assert!(applied, "{mode:?}: a landed delta page must commit the whole batch");
                assert_eq!(read_fill(&mut rec, 4), 0xAA);
                assert_eq!(read_fill(&mut rec, 5), 0xBB);
            }
        }
        // The sources must be intact in every mode.
        assert_eq!(read_fill(&mut rec, 0), 0xAA);
        assert_eq!(read_fill(&mut rec, 1), 0xBB);
        assert_eq!(read_fill(&mut rec, 2), 0xCC);
    }
}

/// Crash exactly on the delta page a plain `flush` programs. The data
/// page of the overwrite landed *before* the fault was armed, so only the
/// mapping update is at risk: torn or dropped, the LPN must still read
/// its old committed content; after-program, the new one.
#[test]
fn flush_delta_page_crash_keeps_committed_mapping() {
    for mode in FaultMode::ALL {
        let mut ftl = Ftl::new(cfg());
        write_fill(&mut ftl, 7, 0x11);
        ftl.flush().unwrap();
        write_fill(&mut ftl, 7, 0x22); // data page programs here, delta buffered
        let handle = ftl.fault_handle();
        handle.arm_after_programs(1, mode); // next program: the flush's delta page
        ftl.flush().unwrap_err();
        assert!(handle.is_down());
        handle.disarm();

        let mut rec = reopen(ftl);
        let got = read_fill(&mut rec, 7);
        match mode {
            FaultMode::TornHalf | FaultMode::DroppedWrite => {
                assert_eq!(got, 0x11, "{mode:?}: lost delta page must keep the old mapping");
            }
            FaultMode::AfterProgram => {
                assert_eq!(got, 0x22, "{mode:?}: landed delta page must expose the new write");
            }
        }
    }
}

/// Crash at every program of a checkpoint (header, table pages, commit
/// page) in every mode. The previous snapshot plus the delta log already
/// cover everything committed, so recovery must always reproduce the
/// pre-checkpoint state — whether or not the new snapshot completed.
#[test]
fn checkpoint_crash_at_every_page_preserves_committed_state() {
    let ckpt_programs = table_pages(&cfg()) + 2;
    for mode in FaultMode::ALL {
        for k in 1..=ckpt_programs {
            let mut ftl = Ftl::new(cfg());
            write_fill(&mut ftl, 0, 0x42);
            write_fill(&mut ftl, 9, 0x43);
            ftl.flush().unwrap();
            write_fill(&mut ftl, 3, 0x44); // buffered delta rides into the snapshot
            let handle = ftl.fault_handle();
            handle.arm_after_programs(k, mode);
            ftl.checkpoint().unwrap_err();
            assert!(handle.is_down(), "mode {mode:?} k {k}: checkpoint must hit the fault");
            handle.disarm();

            let mut rec = reopen(ftl);
            assert_eq!(read_fill(&mut rec, 0), 0x42, "mode {mode:?} k {k}");
            assert_eq!(read_fill(&mut rec, 9), 0x43, "mode {mode:?} k {k}");
            // The un-flushed write is durable only if the crashed
            // checkpoint's commit record landed. That happens for
            // AfterProgram on the last program, and also for TornHalf
            // there: the whole commit record sits in the intact first
            // half of the torn page, and the table it validates was fully
            // programmed before it — so the snapshot is genuinely
            // complete. Only a dropped commit page leaves it invalid.
            let survived = read_fill(&mut rec, 3);
            if k == ckpt_programs && mode != FaultMode::DroppedWrite {
                assert_eq!(survived, 0x44, "completed checkpoint must keep the buffered write");
            } else {
                assert_eq!(survived, 0, "mode {mode:?} k {k}: buffered write must roll back");
                assert!(rec.mapping_of(Lpn(3)).is_none());
            }
        }
    }
}

/// Regression (found by the crash sweep): two checkpoints with only
/// RAM-buffered deltas between them carry the same `next_delta_seq`, and
/// recovery used to pick between the slots by that sequence — a tie it
/// could resolve to the *stale* snapshot, silently rolling back committed
/// writes. Checkpoint generations now order the slots.
#[test]
fn back_to_back_checkpoints_recover_to_the_newer_snapshot() {
    let mut ftl = Ftl::new(cfg());
    // No flush between format's initial checkpoint and this one: the
    // write's delta stays buffered, so both snapshots share a delta seq.
    write_fill(&mut ftl, 12, 0x77);
    ftl.checkpoint().unwrap();

    let mut rec = reopen(ftl);
    assert_eq!(
        read_fill(&mut rec, 12),
        0x77,
        "recovery picked the stale checkpoint slot on a delta-seq tie"
    );

    // Same shape one level deeper: two explicit checkpoints in a row.
    write_fill(&mut rec, 13, 0x78);
    rec.checkpoint().unwrap();
    write_fill(&mut rec, 14, 0x79);
    rec.checkpoint().unwrap();
    let mut rec2 = reopen(rec);
    assert_eq!(read_fill(&mut rec2, 13), 0x78);
    assert_eq!(read_fill(&mut rec2, 14), 0x79);
}
