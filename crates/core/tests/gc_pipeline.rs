//! Golden pin for the pipelined-GC feature flag.
//!
//! The pipeline is opt-in, and the acceptance bar for the off position is
//! *bit identity*: with `gc_pipeline.enabled = false` the device must
//! execute exactly the historical synchronous collector — same NAND
//! schedule (pinned via the simulated clock), same counters, same medium
//! contents — on a 1-channel GC-heavy sequence. The literal constants
//! below were recorded from the pre-pipeline FTL (commit 2f66af5) by
//! running this exact storm against that tree; any drift in the off path
//! fails this test.
//!
//! The on position is then held to *logical* equivalence: GC scheduling
//! may reorder relocations freely (and budgeted early collection is
//! allowed to copy more pages in total), but the host-visible state, the
//! host counters, and the FTL invariant walk must be indistinguishable.

use nand_sim::NandTiming;
use share_core::{BlockDevice, Ftl, FtlConfig, Lpn};

const PAGES: u64 = 1024;
const PAGE: usize = 4096;

/// Pinned goldens recorded from the pre-pipeline synchronous collector.
const GOLDEN_HOST_WRITES: u64 = 5_632;
const GOLDEN_COPYBACK: u64 = 2_079;
const GOLDEN_GC_EVENTS: u64 = 200;
const GOLDEN_GC_ERASES: u64 = 200;
const GOLDEN_NOW_NS: u64 = 7_042_616_000;
const GOLDEN_HASH: u64 = 0xd7_2b4e_f846_1325;

fn gc_heavy_cfg() -> FtlConfig {
    // 1 channel, 32-page blocks, 12 % over-provisioning: live data holds
    // ~70 % of the physical space, so victims always carry live pages and
    // the synchronous collector stalls the foreground for real work.
    FtlConfig::for_capacity_with(PAGES * PAGE as u64, 0.12, PAGE, 32, NandTiming::default())
}

fn fill_of(round: u64, lpn: u64) -> u8 {
    ((round * 67 + lpn * 31) % 255 + 1) as u8
}

/// Deterministic GC-heavy storm. Page `lpn` is rewritten every
/// `1 + lpn % 4` rounds and the write order is permuted each round, so
/// every NAND block mixes pages whose next overwrite is near with pages
/// whose is far — no sealed block goes fully dead, and GC must relocate.
fn drive(ftl: &mut Ftl) {
    for round in 0..10u64 {
        for i in 0..PAGES {
            let lpn = (i * 173 + round * 311) % PAGES;
            if round % (1 + lpn % 4) == 0 {
                ftl.write(Lpn(lpn), &[fill_of(round, lpn); PAGE]).unwrap();
            }
        }
        if round % 3 == 2 {
            ftl.trim(Lpn((round * 7) % PAGES), 2).unwrap();
        }
        ftl.flush().unwrap();
    }
}

/// FNV-1a over every mapped page, in LPN order (trimmed pages skipped).
fn content_hash(ftl: &mut Ftl) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut buf = vec![0u8; PAGE];
    for lpn in 0..PAGES {
        if ftl.read(Lpn(lpn), &mut buf).is_ok() {
            for &b in &buf {
                h ^= b as u64;
                h = h.wrapping_mul(0x1_0000_01b3);
            }
        }
    }
    h
}

#[test]
fn gc_pipeline_off_is_bit_identical_to_the_legacy_collector() {
    let cfg = gc_heavy_cfg();
    assert!(!cfg.gc_pipeline.enabled, "pipeline must default off");
    let mut ftl = Ftl::new(cfg);
    drive(&mut ftl);
    let stats = ftl.stats();
    let now = ftl.clock().now_ns();
    let hash = content_hash(&mut ftl);
    ftl.check_invariants();

    // The clock pins the exact NAND schedule (every program/erase and
    // its serialization); the counters pin the GC work; the hash pins
    // the medium. `gc_budget_deferrals` must stay 0: the off path never
    // parks a victim.
    assert_eq!(stats.host_writes, GOLDEN_HOST_WRITES, "host_writes drifted");
    assert_eq!(stats.copyback_pages, GOLDEN_COPYBACK, "copyback_pages drifted");
    assert_eq!(stats.gc_events, GOLDEN_GC_EVENTS, "gc_events drifted");
    assert_eq!(stats.gc_erases, GOLDEN_GC_ERASES, "gc_erases drifted");
    assert_eq!(stats.gc_budget_deferrals, 0, "off path parked a victim");
    assert_eq!(now, GOLDEN_NOW_NS, "NAND schedule drifted");
    assert_eq!(hash, GOLDEN_HASH, "medium contents drifted");
    // The off path still meters how long the synchronous drains stalled
    // the foreground (observation only — it cannot perturb the schedule,
    // which the clock pin above proves).
    assert!(stats.gc_stall_ns > 0, "synchronous GC reported no stall");
}

#[test]
fn gc_pipeline_on_is_logically_equivalent() {
    let mut off = Ftl::new(gc_heavy_cfg());
    drive(&mut off);

    let mut on = Ftl::new(gc_heavy_cfg().with_gc_budget(2, 2));
    drive(&mut on);
    on.check_invariants();

    // Same host-visible state, page for page (including trim holes).
    let mut a = vec![0u8; PAGE];
    let mut b = vec![0u8; PAGE];
    for lpn in 0..PAGES {
        let ra = off.read(Lpn(lpn), &mut a);
        let rb = on.read(Lpn(lpn), &mut b);
        assert_eq!(ra.is_ok(), rb.is_ok(), "mapping of lpn {lpn} diverged");
        if ra.is_ok() {
            assert_eq!(a, b, "contents of lpn {lpn} diverged");
        }
    }

    let soff = off.stats();
    let son = on.stats();
    // Host-side counters cannot depend on GC scheduling.
    assert_eq!(soff.host_writes, son.host_writes);
    assert_eq!(soff.host_reads, son.host_reads);
    // The pipeline must actually have parked victims mid-collection and
    // kept the foreground out of synchronous drains — otherwise this
    // test silently stopped covering the feature.
    assert!(son.gc_events > 0, "storm never triggered GC");
    assert!(
        son.gc_budget_deferrals > 0,
        "no budgeted step left a victim in flight (budget too generous?)"
    );
    assert!(
        son.gc_stall_ns * 2 < soff.gc_stall_ns,
        "pipelined GC did not cut foreground stall: {} ns on vs {} ns off",
        son.gc_stall_ns,
        soff.gc_stall_ns
    );
}
