//! Flight-recorder acceptance: the two standing guarantees.
//!
//! 1. **Bit-identity off-path**: turning the epoch sampler on must not
//!    change a single simulated outcome — same clock, same counters, same
//!    serialized flash image — because the recorder only *reads* the
//!    clock and counters at command boundaries.
//! 2. **Exact-sum**: at any moment, the evicted + retained + partial-tail
//!    epoch deltas reproduce the cumulative [`DeviceStats`] exactly, and
//!    the deltas sealed between two observation points sum to precisely
//!    `DeviceStats::delta_since` of those points — no drift, ever, even
//!    with the ring overflowing on a GC-heavy workload.

use nand_sim::NandTiming;
use share_core::{
    AlertSeverity, BlockDevice, Ftl, FtlConfig, Lpn, OpClass, SloConfig, TelemetryConfig,
};

const PAGES: u64 = 1024;
const PAGE: usize = 4096;
const EPOCH_NS: u64 = 50_000_000;

fn gc_heavy_cfg() -> FtlConfig {
    // 12 % over-provisioning on realistic timing: victims always carry
    // live pages, so GC copyback, log flushes, and checkpoints all run
    // while epochs seal.
    FtlConfig::for_capacity_with(PAGES * PAGE as u64, 0.12, PAGE, 32, NandTiming::default())
}

/// Deterministic GC-heavy storm (mirrors the gc_pipeline golden driver).
fn drive(ftl: &mut Ftl, rounds: u64) {
    for round in 0..rounds {
        for i in 0..PAGES {
            let lpn = (i * 173 + round * 311) % PAGES;
            if round % (1 + lpn % 4) == 0 {
                ftl.write(Lpn(lpn), &[((round * 67 + lpn * 31) % 255 + 1) as u8; PAGE]).unwrap();
            }
        }
        if round % 3 == 2 {
            ftl.trim(Lpn((round * 7) % PAGES), 2).unwrap();
        }
        ftl.flush().unwrap();
    }
}

fn image_bytes(ftl: Ftl) -> Vec<u8> {
    let mut bytes = Vec::new();
    ftl.into_nand().save_image(&mut bytes).expect("image serializes");
    bytes
}

#[test]
fn monitored_run_is_bit_identical_to_unmonitored() {
    let mut plain = Ftl::new(gc_heavy_cfg());
    let mut monitored =
        Ftl::new(gc_heavy_cfg().with_telemetry(TelemetryConfig::monitoring(EPOCH_NS)));
    drive(&mut plain, 6);
    drive(&mut monitored, 6);

    // The sampler must have actually run...
    let snap = monitored.monitor_snapshot().expect("recorder is on");
    assert!(snap.sealed > 10, "only {} epochs sealed — sampler idle?", snap.sealed);
    assert!(plain.monitor_snapshot().is_none(), "recorder must be opt-in");

    // ...while changing nothing simulated: clock, counters, and the
    // entire serialized flash image (mapping meta included) match bit
    // for bit.
    assert_eq!(plain.clock().now_ns(), monitored.clock().now_ns(), "clock drifted");
    assert_eq!(plain.stats(), monitored.stats(), "counters drifted");
    plain.check_invariants();
    monitored.check_invariants();
    assert_eq!(image_bytes(plain), image_bytes(monitored), "flash image drifted");
}

#[test]
fn epoch_deltas_sum_exactly_to_cumulative_stats() {
    // A 6-epoch ring under a storm that seals dozens: eviction and the
    // fold-in accumulator are exercised for real.
    let telemetry = TelemetryConfig { epoch_ring: 6, ..TelemetryConfig::monitoring(EPOCH_NS) };
    let mut ftl = Ftl::new(gc_heavy_cfg().with_telemetry(telemetry));

    let mut last_stats = ftl.stats();
    let mut last_sealed_sum = ftl.stats(); // zero at creation
    for round in 0..3 {
        drive(&mut ftl, 2);
        let cum = ftl.stats();
        let snap = ftl.monitor_snapshot().expect("recorder is on");

        // Exact-sum invariant at this instant, ring overflow and all.
        assert_eq!(snap.total_stats(), cum, "round {round}: deltas drifted from cumulative");

        // The sealed+tail deltas accrued since the previous observation
        // equal delta_since of the two cumulative readings exactly.
        let mut accrued = last_sealed_sum; // evicted+retained+tail at last look
        accrued.accumulate(&cum.delta_since(&last_stats));
        assert_eq!(snap.total_stats(), accrued, "round {round}: window mismatch");
        last_stats = cum;
        last_sealed_sum = snap.total_stats();
    }

    let snap = ftl.monitor_snapshot().unwrap();
    assert!(snap.dropped > 0, "ring never overflowed — eviction path untested");
    assert_eq!(snap.epochs.len(), 6, "ring should be full");
    // Per-stream WA blame rows obey the same exact sum.
    let totals = snap.total_wa();
    let host_fg: u64 = totals.iter().map(|&(fg, _)| fg).sum();
    assert_eq!(host_fg, ftl.stats().host_writes, "WA foreground rows drifted");
    // Epochs are contiguous: each starts where its predecessor ended.
    for w in snap.epochs.windows(2) {
        assert_eq!(w[0].end_ns, w[1].start_ns, "epoch gap");
        assert_eq!(w[0].epoch + 1, w[1].epoch, "epoch index gap");
    }
    assert_eq!(snap.epochs.last().unwrap().end_ns, snap.tail_start_ns);
}

#[test]
fn slo_breaches_fire_alerts_onto_the_command_ring() {
    // A free-block floor far above what this greedy-GC config ever holds:
    // every epoch breaches, critically.
    let slo = SloConfig { free_block_floor: Some(10_000), ..SloConfig::default() };
    let mut ftl = Ftl::new(
        gc_heavy_cfg().with_telemetry(TelemetryConfig::monitoring(EPOCH_NS)).with_slo(slo),
    );
    drive(&mut ftl, 2);

    let snap = ftl.telemetry_snapshot().expect("telemetry on");
    assert!(!snap.alerts.is_empty(), "no alerts despite a guaranteed breach");
    assert!(
        snap.alerts.iter().all(|a| a.severity == AlertSeverity::Critical),
        "free-block floor breaches are critical"
    );
    // The same breaches are visible as events on the command ring,
    // interleaved with the I/O that surrounded them.
    let alert_events: Vec<_> =
        snap.events.iter().filter(|e| e.op == OpClass::Alert).collect();
    assert!(!alert_events.is_empty(), "alerts missing from the command ring");
    assert!(alert_events.iter().all(|e| !e.ok), "critical alerts must record ok=false");
    // And the structured log agrees with the recorder's own count.
    let mon = ftl.monitor_snapshot().unwrap();
    assert_eq!(mon.alerts.len(), snap.alerts.len());
    let breached_epochs: Vec<_> =
        mon.epochs.iter().filter(|e| !e.alerts.is_empty()).collect();
    assert!(!breached_epochs.is_empty(), "per-epoch records lost their alerts");
}
