//! Pinned regression: the shrunk share/trim/crash-recovery failure that
//! proptest found against the seed FTL (PR 1). The op sequence and crash
//! point are preserved verbatim from the retired
//! `proptest_ftl.proptest-regressions` file so the scenario stays covered
//! forever, independent of any test-generation framework.

mod ftl_ops;

use ftl_ops::{run_crash_case, Op};

/// Shorthand constructors keep the 133-op pinned sequence readable.
#[allow(non_snake_case)]
fn W(lpn: u64, fill: u8) -> Op {
    Op::Write { lpn, fill }
}
#[allow(non_snake_case)]
fn T(lpn: u64) -> Op {
    Op::Trim { lpn }
}
#[allow(non_snake_case)]
fn S(dest: u64, src: u64) -> Op {
    Op::Share { dest, src }
}

/// The exact 133-op shrunk sequence, crash armed after NAND program 145.
/// It interleaves share chains (30→20, 41→27→43, …), trims of shared
/// sources, and flush-delimited epochs before the torn-page power loss.
#[test]
fn share_trim_crash_regression_pr1() {
    use Op::Flush as F;
    let ops = vec![
        W(62, 213), W(26, 251), W(16, 255), W(5, 238), W(31, 162), W(1, 122),
        W(35, 213), W(7, 201), W(21, 200), W(14, 105), W(8, 76), W(46, 23),
        F, W(38, 70), W(28, 207), W(5, 98), W(32, 139), W(16, 100),
        W(27, 148), W(57, 249), F, W(41, 155), W(51, 254), S(30, 41),
        W(9, 209), W(40, 54), W(19, 85), F, W(32, 204), F,
        W(62, 98), F, W(3, 116), S(20, 30), W(54, 170), W(20, 230),
        F, W(4, 162), F, W(15, 90), F, W(42, 131),
        S(27, 42), W(1, 3), F, W(3, 246), W(43, 155), S(43, 42),
        W(52, 171), W(10, 81), W(6, 175), W(21, 12), T(42), F,
        W(48, 182), W(60, 5), W(1, 70), W(11, 203), W(35, 86), F,
        W(44, 187), W(41, 166), S(14, 1), W(21, 97), W(29, 99), W(50, 102),
        W(32, 149), S(47, 51), W(40, 107), W(60, 32), F, W(47, 87),
        W(27, 157), S(55, 7), W(29, 167), W(24, 49), F, W(33, 160),
        S(25, 38), T(27), F, W(20, 231), W(53, 190), T(6),
        F, W(27, 247), S(26, 53), W(57, 48), S(17, 35), W(53, 35),
        F, W(60, 131), F, W(61, 105), S(24, 41), S(15, 32),
        W(11, 48), S(16, 14), S(56, 30), S(30, 8), W(37, 14), S(26, 16),
        W(62, 170), W(1, 58), W(59, 141), W(44, 75), W(48, 99), W(6, 41),
        W(59, 123), W(7, 90), W(12, 6), S(0, 29), F, S(48, 42),
        W(26, 169), S(47, 26), S(24, 13), W(43, 21), W(46, 169), S(3, 3),
        T(34), W(41, 137), S(53, 1), S(61, 41), W(53, 48), W(33, 23),
        W(28, 252), T(11), S(28, 24), W(16, 42), F, W(17, 221),
        S(29, 54),
    ];
    run_crash_case(&ops, 145, "pinned regression share_trim_crash_regression_pr1");
}
