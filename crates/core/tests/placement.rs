//! Placement-model integration tests: lifetime-class lane separation,
//! stream-aware GC, and the bit-identity guard rails for the per-channel
//! GC lane refactor.

use nand_sim::{BlockId, NandTiming};
use share_core::{BlockDevice, Ftl, FtlConfig, Lpn, CLASS_DEFAULT, CLASS_SHORT};
use std::collections::BTreeSet;

/// GC-heavy deterministic overwrite workload on a 1-channel device.
fn run_one_channel() -> (u64, u64, u64, u64, u64) {
    let cfg = FtlConfig::for_capacity_with(64 * 4096, 0.5, 4096, 16, NandTiming::default());
    let mut ftl = Ftl::new(cfg);
    let ps = ftl.page_size();
    // Hot churn interleaved with occasional cold writes: every open block
    // ends up holding a few long-lived pages, so GC victims carry valid
    // survivors and copyback actually runs.
    for i in 0..1000u64 {
        let lpn = if i % 13 == 0 { 24 + (i / 13) % 40 } else { (i * 7) % 24 };
        ftl.write(Lpn(lpn), &vec![(i % 251) as u8; ps]).unwrap();
        if i % 97 == 0 {
            ftl.flush().unwrap();
        }
    }
    ftl.flush().unwrap();
    let s = ftl.stats();
    (
        ftl.clock().now_ns(),
        s.nand.page_programs,
        s.nand.block_erases,
        s.gc_events,
        s.copyback_pages,
    )
}

/// Satellite: the per-channel GC lane refactor must leave 1-channel
/// devices bit-identical. Golden values captured from the pre-refactor
/// single-GC-lane implementation; any drift in program order, GC timing,
/// or copyback volume on one channel changes at least one of them.
#[test]
fn one_channel_gc_timing_is_bit_identical_to_single_lane() {
    let got = run_one_channel();
    assert_eq!(
        got,
        (1_069_280_000, 1142, 66, 56, 68),
        "(now_ns, page_programs, block_erases, gc_events, copyback_pages) drifted \
         from the pre-refactor single-GC-lane golden run"
    );
}

/// Blocks holding a set of LPNs, via the live mapping.
fn blocks_of(ftl: &Ftl, lpns: impl Iterator<Item = u64>) -> BTreeSet<BlockId> {
    lpns.map(|l| ftl.nand().geometry().block_of(ftl.mapping_of(Lpn(l)).expect("mapped")))
        .collect()
}

/// Tentpole: with placement on, pages written under a short-lived stream
/// (wal/journal) and a long-lived stream (db) never share a block, and
/// every block carries its class in the NAND tag.
#[test]
fn streams_of_different_classes_never_share_blocks() {
    let cfg = FtlConfig::for_capacity_with(128 * 4096, 0.5, 4096, 16, NandTiming::zero())
        .with_placement(true);
    let mut ftl = Ftl::new(cfg);
    let ps = ftl.page_size();
    let db = ftl.stream_intern("db");
    let wal = ftl.stream_intern("wal");
    for i in 0..48u64 {
        ftl.set_stream(db);
        ftl.write(Lpn(i), &vec![1u8; ps]).unwrap();
        ftl.set_stream(wal);
        ftl.write(Lpn(64 + i % 8), &vec![2u8; ps]).unwrap();
    }
    let db_blocks = blocks_of(&ftl, 0..48);
    let wal_blocks = blocks_of(&ftl, 64..72);
    assert!(db_blocks.is_disjoint(&wal_blocks), "classes must not share blocks");
    for &b in &db_blocks {
        assert_eq!(ftl.nand().block_tag(b), CLASS_DEFAULT as u32);
    }
    for &b in &wal_blocks {
        assert_eq!(ftl.nand().block_tag(b), CLASS_SHORT as u32);
    }
}

/// Tentpole: GC relocates survivors into a block of the victim's class,
/// not a unified GC lane — long-lived data stays in default-class blocks
/// through arbitrarily many collections.
#[test]
fn gc_relocation_preserves_the_victims_class() {
    let cfg = FtlConfig::for_capacity_with(128 * 4096, 0.5, 4096, 16, NandTiming::zero())
        .with_placement(true);
    let mut ftl = Ftl::new(cfg);
    let ps = ftl.page_size();
    let db = ftl.stream_intern("db");
    let wal = ftl.stream_intern("wal");
    // Long-lived data with a churned hot subset (so default-class victims
    // carry survivors), plus a hot journal stream.
    ftl.set_stream(db);
    for i in 0..48u64 {
        ftl.write(Lpn(i), &vec![1u8; ps]).unwrap();
    }
    for round in 0..40u64 {
        ftl.set_stream(db);
        for i in 0..8u64 {
            ftl.write(Lpn(i), &vec![(round % 250) as u8; ps]).unwrap();
        }
        // One cold page per round shares the hot blocks, so default-class
        // victims are mostly-dead but carry a survivor to relocate.
        ftl.write(Lpn(8 + round % 40), &vec![4u8; ps]).unwrap();
        ftl.set_stream(wal);
        for i in 0..8u64 {
            ftl.write(Lpn(64 + i), &vec![3u8; ps]).unwrap();
        }
    }
    let s = ftl.stats();
    assert!(s.gc_events > 0 && s.copyback_pages > 0, "workload must exercise GC copyback");
    // Cold db pages have been relocated by GC; they must still live in
    // default-class blocks, and wal pages in short-lived blocks.
    for &b in &blocks_of(&ftl, 8..48) {
        assert_eq!(ftl.nand().block_tag(b), CLASS_DEFAULT as u32, "db page left its class");
    }
    for &b in &blocks_of(&ftl, 64..72) {
        assert_eq!(ftl.nand().block_tag(b), CLASS_SHORT as u32, "wal page left its class");
    }
}

/// Placement gauges surface in the telemetry snapshot: per-class placed
/// pages, GC relocations, and the enabled flag.
#[test]
fn snapshot_reports_placement_gauges() {
    let cfg = FtlConfig::for_capacity_with(128 * 4096, 0.5, 4096, 16, NandTiming::zero())
        .with_placement(true);
    let mut ftl = Ftl::new(cfg);
    let ps = ftl.page_size();
    let wal = ftl.stream_intern("wal");
    ftl.set_stream(wal);
    for i in 0..10u64 {
        ftl.write(Lpn(64 + i), &vec![2u8; ps]).unwrap();
    }
    let snap = ftl.telemetry_snapshot().unwrap();
    assert!(snap.placement.enabled);
    assert_eq!(snap.placement.classes.len(), 3);
    assert_eq!(snap.placement.classes[CLASS_SHORT as usize].placed_pages, 10);
    assert_eq!(snap.placement.classes[CLASS_SHORT as usize].label, "short-lived");
    assert!(snap.placement.classes[CLASS_SHORT as usize].open_blocks >= 1);

    // Placement off: single default class, label routing inert.
    let off = Ftl::new(FtlConfig::for_capacity_with(128 * 4096, 0.5, 4096, 16, NandTiming::zero()));
    let snap = off.telemetry_snapshot().unwrap();
    assert!(!snap.placement.enabled);
    assert_eq!(snap.placement.classes.len(), 1);
}

/// A placement-enabled image survives save/load/recovery with its class
/// tags: reopened devices keep relocating by class.
#[test]
fn recovery_preserves_class_separation() {
    let cfg = FtlConfig::for_capacity_with(128 * 4096, 0.5, 4096, 16, NandTiming::zero())
        .with_placement(true);
    let mut ftl = Ftl::new(cfg.clone());
    let ps = ftl.page_size();
    let db = ftl.stream_intern("db");
    let wal = ftl.stream_intern("wal");
    for i in 0..24u64 {
        ftl.set_stream(db);
        ftl.write(Lpn(i), &vec![1u8; ps]).unwrap();
        ftl.set_stream(wal);
        ftl.write(Lpn(64 + i % 8), &vec![2u8; ps]).unwrap();
    }
    ftl.flush().unwrap();
    let nand = ftl.into_nand();
    let ftl = Ftl::open(cfg, nand).unwrap();
    ftl.check_invariants();
    for &b in &blocks_of(&ftl, 0..24) {
        assert_eq!(ftl.nand().block_tag(b), CLASS_DEFAULT as u32);
    }
    for &b in &blocks_of(&ftl, 64..72) {
        assert_eq!(ftl.nand().block_tag(b), CLASS_SHORT as u32);
    }
}
