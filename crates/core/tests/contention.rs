//! Thread-contention tests for [`share_core::SharedDevice`].
//!
//! N host threads hammer one device with reads, writes, and SHARE
//! commands. The device serializes commands at its submission queue
//! (a mutex), so whatever interleaving the OS scheduler produces must
//! leave the device in a state equivalent to SOME serial order:
//!
//! * the simulated clock only moves forward,
//! * per-command statistics add up exactly,
//! * and — for command mixes whose per-command cost is
//!   interleaving-independent (disjoint-LPN reads/writes, no GC, no
//!   background meta flushes) — the total simulated time is identical
//!   no matter how the threads raced.

use share_core::{BlockDevice, FtlConfig, Ftl, Lpn, SharePair, SharedDevice};
use nand_sim::NandTiming;

fn device(channels: u32) -> SharedDevice<Ftl> {
    // Generous over-provisioning so these workloads never trigger GC:
    // GC work depends on which blocks fill first, which IS
    // interleaving-dependent under round-robin lane striping.
    let cfg = FtlConfig::for_capacity_with(8 << 20, 1.0, 4096, 64, NandTiming::default())
        .with_parallelism(channels, 1);
    SharedDevice::new(Ftl::new(cfg))
}

/// Spawn `threads` workers over clones of `d`, each running `f(t, handle)`.
fn hammer(d: &SharedDevice<Ftl>, threads: u64, f: impl Fn(u64, SharedDevice<Ftl>) + Sync) {
    std::thread::scope(|s| {
        for t in 0..threads {
            let h = d.clone();
            let f = &f;
            s.spawn(move || f(t, h));
        }
    });
}

#[test]
fn clock_is_monotonic_under_contention() {
    let d = device(4);
    let threads = 8u64;
    let per = 32u64;
    hammer(&d, threads, |t, mut h| {
        let ps = h.page_size();
        let mut buf = vec![0u8; ps];
        let mut last = h.clock().now_ns();
        for i in 0..per {
            let lpn = Lpn(t * per + i);
            h.write(lpn, &vec![(t as u8) ^ (i as u8); ps]).unwrap();
            let now = h.clock().now_ns();
            assert!(now >= last, "clock went backwards: {last} -> {now}");
            last = now;
            h.read(lpn, &mut buf).unwrap();
            let now = h.clock().now_ns();
            assert!(now >= last, "clock went backwards: {last} -> {now}");
            last = now;
        }
    });
    d.with(|dev| dev.check_invariants());
}

#[test]
fn stats_are_consistent_under_contention() {
    let d = device(2);
    let threads = 6u64;
    let per = 48u64;
    hammer(&d, threads, |t, mut h| {
        let ps = h.page_size();
        let mut buf = vec![0u8; ps];
        for i in 0..per {
            let lpn = t * per + i;
            h.write(Lpn(lpn), &vec![(lpn % 251) as u8; ps]).unwrap();
            h.read(Lpn(lpn), &mut buf).unwrap();
        }
    });
    let s = d.stats();
    assert_eq!(s.host_writes, threads * per);
    assert_eq!(s.host_reads, threads * per);
    assert_eq!(s.host_write_bytes, threads * per * 4096);
    // Every write is exactly one data-page program; no GC ran (checked
    // via gc_events), so program count = host writes + meta writes.
    assert_eq!(s.gc_events, 0, "workload sized to avoid GC");
    assert_eq!(s.nand.page_programs, s.host_writes + s.meta_page_writes);
    // All data still readable and correct after the race.
    let mut h = d.clone();
    let mut buf = vec![0u8; h.page_size()];
    for lpn in 0..threads * per {
        h.read(Lpn(lpn), &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == (lpn % 251) as u8), "lpn {lpn} diverged");
    }
    d.with(|dev| dev.check_invariants());
}

#[test]
fn total_simulated_time_is_independent_of_interleaving() {
    // Disjoint-LPN single-page writes and reads have interleaving-
    // independent cost (each command's service time depends only on the
    // page it touches and the batch it rides in — batch = itself).
    // Run the same workload three times with different thread counts;
    // the end-of-run simulated time must be identical. (The meta flush
    // cadence depends only on the total delta count, which is fixed.)
    let total = 192u64;
    let mut end_times = Vec::new();
    for &threads in &[1u64, 3, 8] {
        let d = device(4);
        let per = total / threads;
        hammer(&d, threads, |t, mut h| {
            let ps = h.page_size();
            let mut buf = vec![0u8; ps];
            for i in 0..per {
                let lpn = Lpn(t * per + i);
                h.write(lpn, &vec![0x5A; ps]).unwrap();
                h.read(lpn, &mut buf).unwrap();
            }
        });
        assert_eq!(d.stats().gc_events, 0);
        end_times.push(d.clock().now_ns());
    }
    assert_eq!(end_times[0], end_times[1], "1 vs 3 threads diverged");
    assert_eq!(end_times[0], end_times[2], "1 vs 8 threads diverged");
}

#[test]
fn share_hammering_is_atomic_and_monotonic() {
    // SHARE commands buffer deltas into atomically-programmed log pages,
    // so their *timing* depends on how commands pack into pages — which
    // is interleaving-dependent. What must still hold: monotonic clock,
    // exact command counts, and a mapping where every destination reads
    // back its source's snapshot.
    let d = device(4);
    let threads = 4u64;
    let per = 64u64;
    d.clone().with(|dev| {
        let ps = dev.page_size();
        for i in 0..threads * per {
            dev.write(Lpn(1_024 + i), &vec![(i % 251) as u8; ps]).unwrap();
        }
    });
    hammer(&d, threads, |t, mut h| {
        let mut last = h.clock().now_ns();
        for i in 0..per {
            let k = t * per + i;
            h.share(&[SharePair::new(Lpn(k), Lpn(1_024 + k))]).unwrap();
            let now = h.clock().now_ns();
            assert!(now >= last, "clock went backwards: {last} -> {now}");
            last = now;
        }
    });
    let s = d.stats();
    assert_eq!(s.share_commands, threads * per);
    assert_eq!(s.shared_pages, threads * per);
    let mut h = d.clone();
    let mut buf = vec![0u8; h.page_size()];
    for k in 0..threads * per {
        h.read(Lpn(k), &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == (k % 251) as u8), "share {k} diverged");
    }
    d.with(|dev| dev.check_invariants());
}

#[test]
fn batched_and_single_commands_interleave_safely() {
    // Mix write_batch, read_batch, and single ops from racing threads.
    let d = device(8);
    let threads = 4u64;
    hammer(&d, threads, |t, mut h| {
        let ps = h.page_size();
        let base = t * 128;
        let pages: Vec<Vec<u8>> = (0..64u64).map(|i| vec![((base + i) % 251) as u8; ps]).collect();
        let batch: Vec<(Lpn, &[u8])> =
            pages.iter().enumerate().map(|(i, p)| (Lpn(base + i as u64), p.as_slice())).collect();
        h.write_batch(&batch).unwrap();
        let mut bufs = vec![vec![0u8; ps]; 64];
        let mut reqs: Vec<(Lpn, &mut [u8])> = bufs
            .iter_mut()
            .enumerate()
            .map(|(i, b)| (Lpn(base + i as u64), b.as_mut_slice()))
            .collect();
        h.read_batch(&mut reqs).unwrap();
        for (i, buf) in bufs.iter().enumerate() {
            let want = ((base + i as u64) % 251) as u8;
            assert!(buf.iter().all(|&b| b == want), "lpn {} diverged", base + i as u64);
        }
    });
    let s = d.stats();
    assert_eq!(s.host_writes, threads * 64);
    assert_eq!(s.host_reads, threads * 64);
    d.with(|dev| dev.check_invariants());
}
