//! Property-based tests: the FTL against a shadow model.
//!
//! A `HashMap<Lpn, Vec<u8>>`-equivalent shadow tracks what every logical
//! page should read. Random interleavings of write / overwrite / trim /
//! share / flush — with GC running underneath — must never diverge from
//! the model, and mapping invariants must hold at every step.

use proptest::prelude::*;
use share_core::{BlockDevice, Ftl, FtlConfig, FtlError, Lpn, SharePair};

const LOGICAL_PAGES: u64 = 64; // small space so GC and sharing collide often

fn cfg() -> FtlConfig {
    FtlConfig::for_capacity_with(
        LOGICAL_PAGES * 4096,
        0.5,
        4096,
        16,
        nand_sim::NandTiming::zero(),
    )
}

#[derive(Debug, Clone)]
enum Op {
    Write { lpn: u64, fill: u8 },
    Trim { lpn: u64 },
    Share { dest: u64, src: u64 },
    Flush,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..LOGICAL_PAGES, any::<u8>()).prop_map(|(lpn, fill)| Op::Write { lpn, fill }),
        1 => (0..LOGICAL_PAGES).prop_map(|lpn| Op::Trim { lpn }),
        2 => (0..LOGICAL_PAGES, 0..LOGICAL_PAGES).prop_map(|(dest, src)| Op::Share { dest, src }),
        1 => Just(Op::Flush),
    ]
}

/// Shadow model: expected content byte per LPN (pages are uniform-filled).
/// `None` = unmapped (reads zero).
type Model = Vec<Option<u8>>;

fn apply_model(model: &mut Model, op: &Op) {
    match *op {
        Op::Write { lpn, fill } => model[lpn as usize] = Some(fill),
        Op::Trim { lpn } => model[lpn as usize] = None,
        Op::Share { dest, src } => {
            if dest != src && model[src as usize].is_some() {
                model[dest as usize] = model[src as usize];
            }
        }
        Op::Flush => {}
    }
}

fn apply_ftl(ftl: &mut Ftl, op: &Op) {
    let ps = ftl.page_size();
    match *op {
        Op::Write { lpn, fill } => ftl.write(Lpn(lpn), &vec![fill; ps]).unwrap(),
        Op::Trim { lpn } => ftl.trim(Lpn(lpn), 1).unwrap(),
        Op::Share { dest, src } => {
            match ftl.share(&[SharePair::new(Lpn(dest), Lpn(src))]) {
                Ok(()) => {}
                // Legitimate rejections leave state untouched; the model
                // skips them the same way.
                Err(FtlError::SrcUnmapped(_)) | Err(FtlError::InvalidBatch(_)) => {}
                Err(e) => panic!("unexpected share failure: {e}"),
            }
        }
        Op::Flush => ftl.flush().unwrap(),
    }
}

fn read_fill(ftl: &mut Ftl, lpn: u64) -> u8 {
    let mut buf = vec![0u8; ftl.page_size()];
    ftl.read(Lpn(lpn), &mut buf).unwrap();
    assert!(
        buf.iter().all(|&b| b == buf[0]),
        "page {lpn} content is not uniform: torn or mixed data leaked"
    );
    buf[0]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Live reads always match the shadow model, under any op interleaving.
    #[test]
    fn reads_match_model(ops in proptest::collection::vec(op_strategy(), 1..400)) {
        let mut ftl = Ftl::new(cfg());
        let mut model: Model = vec![None; LOGICAL_PAGES as usize];
        for op in &ops {
            // Skip model application when share was rejected for cause the
            // model can't see (revmap/refcount limits never hit at this size).
            apply_ftl(&mut ftl, op);
            apply_model(&mut model, op);
        }
        for lpn in 0..LOGICAL_PAGES {
            let got = read_fill(&mut ftl, lpn);
            let want = model[lpn as usize].unwrap_or(0);
            prop_assert_eq!(got, want, "lpn {} diverged", lpn);
        }
        ftl.check_invariants();
    }

    /// Mapping invariants hold at every step, not just at the end.
    #[test]
    fn invariants_hold_throughout(ops in proptest::collection::vec(op_strategy(), 1..150)) {
        let mut ftl = Ftl::new(cfg());
        for op in &ops {
            apply_ftl(&mut ftl, op);
            ftl.check_invariants();
        }
    }

    /// Flushed state survives clean reopen exactly.
    #[test]
    fn reopen_after_flush_is_lossless(ops in proptest::collection::vec(op_strategy(), 1..300)) {
        let c = cfg();
        let mut ftl = Ftl::new(c.clone());
        let mut model: Model = vec![None; LOGICAL_PAGES as usize];
        for op in &ops {
            apply_ftl(&mut ftl, op);
            apply_model(&mut model, op);
        }
        ftl.flush().unwrap();
        let mut reopened = Ftl::open(c, ftl.into_nand()).unwrap();
        for lpn in 0..LOGICAL_PAGES {
            let got = read_fill(&mut reopened, lpn);
            let want = model[lpn as usize].unwrap_or(0);
            prop_assert_eq!(got, want, "lpn {} diverged after reopen", lpn);
        }
        reopened.check_invariants();
    }

    /// After a crash at an arbitrary NAND program, recovery yields for every
    /// page either a value that was at some point assigned to it, or zero —
    /// never a torn mix (uniformity is asserted inside `read_fill`).
    #[test]
    fn crash_recovery_yields_some_consistent_version(
        ops in proptest::collection::vec(op_strategy(), 20..200),
        crash_at in 1u64..400,
    ) {
        let c = cfg();
        let mut ftl = Ftl::new(c.clone());
        // Values ever assigned per lpn (writes and shares), plus zero.
        let mut ever: Vec<Vec<u8>> = vec![vec![]; LOGICAL_PAGES as usize];
        let mut model: Model = vec![None; LOGICAL_PAGES as usize];

        ftl.fault_handle().arm_after_programs(crash_at, nand_sim::FaultMode::TornHalf);
        let mut crashed = false;
        for op in &ops {
            let ps = ftl.page_size();
            let r = match *op {
                Op::Write { lpn, fill } => ftl.write(Lpn(lpn), &vec![fill; ps]).map_err(Some),
                Op::Trim { lpn } => ftl.trim(Lpn(lpn), 1).map_err(Some),
                Op::Share { dest, src } => match ftl.share(&[SharePair::new(Lpn(dest), Lpn(src))]) {
                    Ok(()) => Ok(()),
                    Err(FtlError::SrcUnmapped(_)) | Err(FtlError::InvalidBatch(_)) => Err(None),
                    Err(e) => Err(Some(e)),
                },
                Op::Flush => ftl.flush().map_err(Some),
            };
            match r {
                Ok(()) => {
                    apply_model(&mut model, op);
                    if let Op::Write { lpn, fill } = *op {
                        ever[lpn as usize].push(fill);
                    }
                    if let Op::Share { dest, src } = *op {
                        if dest != src {
                            if let Some(v) = model[src as usize] {
                                ever[dest as usize].push(v);
                            }
                        }
                    }
                }
                Err(None) => {} // rejected share, no state change
                Err(Some(_)) => {
                    // The crashed op may or may not have become durable (its
                    // data program and delta flush can precede the power
                    // loss within the same call): count it as possible.
                    match *op {
                        Op::Write { lpn, fill } => ever[lpn as usize].push(fill),
                        Op::Share { dest, src }
                            if dest != src => {
                                if let Some(v) = model[src as usize] {
                                    ever[dest as usize].push(v);
                                }
                            }
                        _ => {}
                    }
                    crashed = true;
                    break;
                }
            }
        }
        ftl.fault_handle().disarm();
        let nand = ftl.into_nand();
        let mut rec = Ftl::open(c, nand).unwrap();
        for lpn in 0..LOGICAL_PAGES {
            let got = read_fill(&mut rec, lpn);
            let ok = got == 0 || ever[lpn as usize].contains(&got);
            prop_assert!(ok, "lpn {} reads {} which was never assigned (crashed={})",
                lpn, got, crashed);
        }
        rec.check_invariants();
    }
}
