//! Shared op model for the FTL integration suites: `ftl_model.rs` sweeps
//! seeded sequences through it; `regression_pr1.rs` replays pinned ones.
#![allow(dead_code)] // each test binary uses a different subset

use share_core::{BlockDevice, Ftl, FtlConfig, FtlError, Lpn, SharePair};
use share_rng::{Rng, StdRng};

pub const LOGICAL_PAGES: u64 = 64; // small space so GC and sharing collide often

pub fn cfg() -> FtlConfig {
    FtlConfig::for_capacity_with(
        LOGICAL_PAGES * 4096,
        0.5,
        4096,
        16,
        nand_sim::NandTiming::zero(),
    )
}

#[derive(Debug, Clone)]
pub enum Op {
    Write { lpn: u64, fill: u8 },
    Trim { lpn: u64 },
    Share { dest: u64, src: u64 },
    Flush,
}

/// Weighted op choice matching the retired proptest strategy (4:1:2:1).
pub fn gen_op(rng: &mut StdRng) -> Op {
    match rng.random_range(0..8u32) {
        0..=3 => Op::Write { lpn: rng.random_range(0..LOGICAL_PAGES), fill: rng.random() },
        4 => Op::Trim { lpn: rng.random_range(0..LOGICAL_PAGES) },
        5..=6 => Op::Share {
            dest: rng.random_range(0..LOGICAL_PAGES),
            src: rng.random_range(0..LOGICAL_PAGES),
        },
        _ => Op::Flush,
    }
}

pub fn gen_ops(rng: &mut StdRng, min: usize, max: usize) -> Vec<Op> {
    let len = rng.random_range(min..max);
    (0..len).map(|_| gen_op(rng)).collect()
}

/// Shadow model: expected content byte per LPN (pages are uniform-filled).
/// `None` = unmapped (reads zero).
pub fn apply_model(model: &mut Vec<Option<u8>>, op: &Op) {
    match *op {
        Op::Write { lpn, fill } => model[lpn as usize] = Some(fill),
        Op::Trim { lpn } => model[lpn as usize] = None,
        Op::Share { dest, src } => {
            if dest != src && model[src as usize].is_some() {
                model[dest as usize] = model[src as usize];
            }
        }
        Op::Flush => {}
    }
}

/// Read one page and assert it is uniform (no torn or mixed content).
pub fn read_fill(ftl: &mut Ftl, lpn: u64) -> u8 {
    let mut buf = vec![0u8; ftl.page_size()];
    ftl.read(Lpn(lpn), &mut buf).unwrap();
    assert!(
        buf.iter().all(|&b| b == buf[0]),
        "page {lpn} content is not uniform: torn or mixed data leaked"
    );
    buf[0]
}

/// One crash-recovery scenario: run `ops` with a torn-page power loss armed
/// after `crash_at` NAND programs, then recover and check that every page
/// reads a value it was at some point assigned (or zero) — never a torn mix.
pub fn run_crash_case(ops: &[Op], crash_at: u64, ctx: &str) {
    let c = cfg();
    let mut ftl = Ftl::new(c.clone());
    // Values ever assigned per lpn (writes and shares), plus zero.
    let mut ever: Vec<Vec<u8>> = vec![vec![]; LOGICAL_PAGES as usize];
    let mut model: Vec<Option<u8>> = vec![None; LOGICAL_PAGES as usize];

    ftl.fault_handle().arm_after_programs(crash_at, nand_sim::FaultMode::TornHalf);
    let mut crashed = false;
    for op in ops {
        let ps = ftl.page_size();
        let r = match *op {
            Op::Write { lpn, fill } => ftl.write(Lpn(lpn), &vec![fill; ps]).map_err(Some),
            Op::Trim { lpn } => ftl.trim(Lpn(lpn), 1).map_err(Some),
            Op::Share { dest, src } => match ftl.share(&[SharePair::new(Lpn(dest), Lpn(src))]) {
                Ok(()) => Ok(()),
                Err(FtlError::SrcUnmapped(_)) | Err(FtlError::InvalidBatch(_)) => Err(None),
                Err(e) => Err(Some(e)),
            },
            Op::Flush => ftl.flush().map_err(Some),
        };
        match r {
            Ok(()) => {
                apply_model(&mut model, op);
                if let Op::Write { lpn, fill } = *op {
                    ever[lpn as usize].push(fill);
                }
                if let Op::Share { dest, src } = *op {
                    if dest != src {
                        if let Some(v) = model[src as usize] {
                            ever[dest as usize].push(v);
                        }
                    }
                }
            }
            Err(None) => {} // rejected share, no state change
            Err(Some(_)) => {
                // The crashed op may or may not have become durable (its
                // data program and delta flush can precede the power
                // loss within the same call): count it as possible.
                match *op {
                    Op::Write { lpn, fill } => ever[lpn as usize].push(fill),
                    Op::Share { dest, src } if dest != src => {
                        if let Some(v) = model[src as usize] {
                            ever[dest as usize].push(v);
                        }
                    }
                    _ => {}
                }
                crashed = true;
                break;
            }
        }
    }
    ftl.fault_handle().disarm();
    let nand = ftl.into_nand();
    let mut rec = Ftl::open(c, nand).unwrap();
    for lpn in 0..LOGICAL_PAGES {
        let got = read_fill(&mut rec, lpn);
        let ok = got == 0 || ever[lpn as usize].contains(&got);
        assert!(
            ok,
            "{ctx}: lpn {lpn} reads {got} which was never assigned (crashed={crashed})"
        );
    }
    rec.check_invariants();
}
