//! Model tests: the FTL against a shadow model, via deterministic seeded
//! op-sequence sweeps (no external property-testing framework; see
//! `share_rng::sweep`).
//!
//! A `Vec<Option<u8>>` shadow tracks what every logical page should read.
//! Seeded interleavings of write / overwrite / trim / share / flush —
//! with GC running underneath — must never diverge from the model, and
//! mapping invariants must hold at every step. Every case is a pure
//! function of the suite name and case index, so a failure message names
//! everything needed to reproduce it.

mod ftl_ops;

use ftl_ops::{gen_ops, run_crash_case, Op, LOGICAL_PAGES};
use share_core::{BlockDevice, Ftl, FtlConfig, FtlError, Lpn, SharePair};
use share_rng::{sweep, Rng};

fn cfg() -> FtlConfig {
    ftl_ops::cfg()
}

fn apply_model(model: &mut Vec<Option<u8>>, op: &Op) {
    ftl_ops::apply_model(model, op)
}

fn apply_ftl(ftl: &mut Ftl, op: &Op) {
    let ps = ftl.page_size();
    match *op {
        Op::Write { lpn, fill } => ftl.write(Lpn(lpn), &vec![fill; ps]).unwrap(),
        Op::Trim { lpn } => ftl.trim(Lpn(lpn), 1).unwrap(),
        Op::Share { dest, src } => {
            match ftl.share(&[SharePair::new(Lpn(dest), Lpn(src))]) {
                Ok(()) => {}
                // Legitimate rejections leave state untouched; the model
                // skips them the same way.
                Err(FtlError::SrcUnmapped(_)) | Err(FtlError::InvalidBatch(_)) => {}
                Err(e) => panic!("unexpected share failure: {e}"),
            }
        }
        Op::Flush => ftl.flush().unwrap(),
    }
}

/// Live reads always match the shadow model, under any op interleaving.
#[test]
fn reads_match_model() {
    for (case, mut rng) in sweep("ftl/reads_match_model", 64) {
        let ops = gen_ops(&mut rng, 1, 400);
        let mut ftl = Ftl::new(cfg());
        let mut model: Vec<Option<u8>> = vec![None; LOGICAL_PAGES as usize];
        for op in &ops {
            apply_ftl(&mut ftl, op);
            apply_model(&mut model, op);
        }
        for lpn in 0..LOGICAL_PAGES {
            let got = ftl_ops::read_fill(&mut ftl, lpn);
            let want = model[lpn as usize].unwrap_or(0);
            assert_eq!(got, want, "case {case}: lpn {lpn} diverged");
        }
        ftl.check_invariants();
    }
}

/// Mapping invariants hold at every step, not just at the end.
#[test]
fn invariants_hold_throughout() {
    for (_case, mut rng) in sweep("ftl/invariants_hold_throughout", 64) {
        let ops = gen_ops(&mut rng, 1, 150);
        let mut ftl = Ftl::new(cfg());
        for op in &ops {
            apply_ftl(&mut ftl, op);
            ftl.check_invariants();
        }
    }
}

/// Flushed state survives clean reopen exactly.
#[test]
fn reopen_after_flush_is_lossless() {
    for (case, mut rng) in sweep("ftl/reopen_after_flush_is_lossless", 64) {
        let ops = gen_ops(&mut rng, 1, 300);
        let c = cfg();
        let mut ftl = Ftl::new(c.clone());
        let mut model: Vec<Option<u8>> = vec![None; LOGICAL_PAGES as usize];
        for op in &ops {
            apply_ftl(&mut ftl, op);
            apply_model(&mut model, op);
        }
        ftl.flush().unwrap();
        let mut reopened = Ftl::open(c, ftl.into_nand()).unwrap();
        for lpn in 0..LOGICAL_PAGES {
            let got = ftl_ops::read_fill(&mut reopened, lpn);
            let want = model[lpn as usize].unwrap_or(0);
            assert_eq!(got, want, "case {case}: lpn {lpn} diverged after reopen");
        }
        reopened.check_invariants();
    }
}

/// After a crash at an arbitrary NAND program, recovery yields for every
/// page either a value that was at some point assigned to it, or zero —
/// never a torn mix (uniformity is asserted inside `read_fill`).
#[test]
fn crash_recovery_yields_some_consistent_version() {
    for (case, mut rng) in sweep("ftl/crash_recovery", 64) {
        let ops = gen_ops(&mut rng, 20, 200);
        let crash_at = rng.random_range(1u64..400);
        run_crash_case(&ops, crash_at, &format!("case {case} (crash_at {crash_at})"));
    }
}
