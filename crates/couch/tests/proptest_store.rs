//! Property tests: the document store against a `BTreeMap` model, in both
//! modes, with interleaved commits and compactions.

use mini_couch::{CouchConfig, CouchMode, CouchStore};
use proptest::prelude::*;
use share_core::{Ftl, FtlConfig};
use share_vfs::{Vfs, VfsOptions};
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Save { key: u64, len: usize, fill: u8 },
    Delete { key: u64 },
    Get { key: u64 },
    Commit,
    Compact,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => (0u64..100, 1usize..6000, any::<u8>())
            .prop_map(|(key, len, fill)| Op::Save { key, len, fill }),
        2 => (0u64..100).prop_map(|key| Op::Delete { key }),
        3 => (0u64..100).prop_map(|key| Op::Get { key }),
        1 => Just(Op::Commit),
        1 => Just(Op::Compact),
    ]
}

fn store(mode: CouchMode, batch: usize) -> CouchStore<Ftl> {
    let fcfg =
        FtlConfig::for_capacity_with(96 << 20, 0.3, 4096, 64, nand_sim::NandTiming::zero());
    let fs = Vfs::format(Ftl::new(fcfg), VfsOptions::default()).unwrap();
    CouchStore::create(
        fs,
        "prop.couch",
        CouchConfig { mode, batch_size: batch, node_max_entries: 8, ..Default::default() },
    )
    .unwrap()
}

fn run_case(mode: CouchMode, batch: usize, ops: &[Op]) {
    let mut s = store(mode, batch);
    let mut model: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    for op in ops {
        match op {
            Op::Save { key, len, fill } => {
                let v = vec![*fill; *len];
                s.save(*key, &v).unwrap();
                model.insert(*key, v);
            }
            Op::Delete { key } => {
                s.delete(*key).unwrap();
                model.remove(key);
            }
            Op::Get { key } => {
                assert_eq!(s.get(*key).unwrap(), model.get(key).cloned(), "get({key}) diverged");
            }
            Op::Commit => s.commit().unwrap(),
            Op::Compact => {
                let r = s.compact().unwrap();
                assert_eq!(r.zero_copy, mode == CouchMode::Share);
            }
        }
    }
    s.commit().unwrap();
    for (key, want) in &model {
        assert_eq!(s.get(*key).unwrap().as_ref(), Some(want), "final get({key})");
    }
    assert_eq!(s.doc_count(), model.len() as u64, "doc_count diverged");

    // Reopen cycle preserves the committed state exactly.
    let fs = s.into_fs();
    let mut s2 = CouchStore::open(fs, "prop.couch", CouchConfig::default()).unwrap();
    for (key, want) in &model {
        assert_eq!(s2.get(*key).unwrap().as_ref(), Some(want), "reopen get({key})");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn original_mode_matches_model(
        ops in proptest::collection::vec(op_strategy(), 1..100),
        batch in 1usize..10,
    ) {
        run_case(CouchMode::Original, batch, &ops);
    }

    #[test]
    fn share_mode_matches_model(
        ops in proptest::collection::vec(op_strategy(), 1..100),
        batch in 1usize..10,
    ) {
        run_case(CouchMode::Share, batch, &ops);
    }
}
