//! Integration tests for the mini-Couchbase store over the SHARE FTL.

use mini_couch::{CouchConfig, CouchMode, CouchStore};
use nand_sim::NandTiming;
use share_core::{Ftl, FtlConfig};
use share_vfs::{Vfs, VfsOptions};

fn ftl_cfg(mb: u64) -> FtlConfig {
    FtlConfig::for_capacity_with(mb << 20, 0.3, 4096, 32, NandTiming::zero())
}

fn store(mode: CouchMode, batch: usize) -> CouchStore<Ftl> {
    let fs = Vfs::format(Ftl::new(ftl_cfg(48)), VfsOptions::default()).unwrap();
    CouchStore::create(fs, "test.couch", CouchConfig { mode, batch_size: batch, node_max_entries: 16, ..Default::default() })
        .unwrap()
}

fn doc(key: u64, version: u64) -> Vec<u8> {
    let mut v = vec![0u8; 1000];
    v[..8].copy_from_slice(&key.to_le_bytes());
    v[8..16].copy_from_slice(&version.to_le_bytes());
    v
}

#[test]
fn save_get_cycle_both_modes() {
    for mode in [CouchMode::Original, CouchMode::Share] {
        let mut s = store(mode, 1);
        for k in 0..100u64 {
            s.save(k, &doc(k, 1)).unwrap();
        }
        for k in 0..100u64 {
            assert_eq!(s.get(k).unwrap(), Some(doc(k, 1)), "{mode:?} key {k}");
        }
        assert_eq!(s.get(999).unwrap(), None);
        assert_eq!(s.doc_count(), 100);
    }
}

#[test]
fn updates_return_latest_version() {
    for mode in [CouchMode::Original, CouchMode::Share] {
        let mut s = store(mode, 4);
        for k in 0..50u64 {
            s.save(k, &doc(k, 1)).unwrap();
        }
        for round in 2..6u64 {
            for k in 0..50u64 {
                s.save(k, &doc(k, round)).unwrap();
            }
        }
        s.commit().unwrap();
        for k in 0..50u64 {
            assert_eq!(s.get(k).unwrap(), Some(doc(k, 5)), "{mode:?} key {k}");
        }
        assert_eq!(s.doc_count(), 50);
    }
}

#[test]
fn share_mode_remaps_updates_without_tree_writes() {
    let mut s = store(CouchMode::Share, 1);
    for k in 0..50u64 {
        s.save(k, &doc(k, 1)).unwrap(); // inserts: tree path
    }
    let nodes_after_load = s.stats().node_blocks_appended;
    for k in 0..50u64 {
        s.save(k, &doc(k, 2)).unwrap(); // same-size updates: share path
    }
    let st = s.stats();
    assert_eq!(st.node_blocks_appended, nodes_after_load, "updates must not touch the tree");
    assert_eq!(st.share_remaps, 50);
    for k in 0..50u64 {
        assert_eq!(s.get(k).unwrap(), Some(doc(k, 2)));
    }
}

#[test]
fn original_mode_pays_wandering_tree_per_commit() {
    let mut orig = store(CouchMode::Original, 1);
    let mut share = store(CouchMode::Share, 1);
    for s in [&mut orig, &mut share] {
        for k in 0..200u64 {
            s.save(k, &doc(k, 1)).unwrap();
        }
    }
    let o0 = orig.device_stats().host_write_bytes;
    let s0 = share.device_stats().host_write_bytes;
    for round in 2..6u64 {
        for k in 0..200u64 {
            orig.save(k, &doc(k, round)).unwrap();
            share.save(k, &doc(k, round)).unwrap();
        }
    }
    let o = orig.device_stats().host_write_bytes - o0;
    let s = share.device_stats().host_write_bytes - s0;
    let ratio = o as f64 / s as f64;
    assert!(
        ratio > 2.5,
        "wandering tree should amplify writes heavily at batch 1: ratio {ratio:.2}"
    );
}

#[test]
fn batch_size_amortizes_tree_writes() {
    let written = |batch: usize| {
        let mut s = store(CouchMode::Original, batch);
        for k in 0..200u64 {
            s.save(k, &doc(k, 1)).unwrap();
        }
        let w0 = s.device_stats().host_write_bytes;
        for round in 2..6u64 {
            for k in 0..200u64 {
                s.save(k, &doc(k, round)).unwrap();
            }
        }
        s.commit().unwrap();
        s.device_stats().host_write_bytes - w0
    };
    let w1 = written(1);
    let w64 = written(64);
    assert!(
        w1 as f64 > w64 as f64 * 1.8,
        "batching must amortize tree writes: batch1 {w1} vs batch64 {w64}"
    );
}

#[test]
fn size_changing_update_falls_back_to_tree() {
    let mut s = store(CouchMode::Share, 1);
    s.save(7, &doc(7, 1)).unwrap();
    // 5000-byte payload spans two blocks: cannot remap 1 -> 2 blocks.
    s.save(7, &vec![0xEE; 5000]).unwrap();
    assert!(s.stats().share_fallbacks > 0);
    assert_eq!(s.get(7).unwrap(), Some(vec![0xEE; 5000]));
    // Back to one block: the tree now points at the two-block doc, so the
    // next same-size(1000) update cannot remap either; after it commits the
    // store is consistent again.
    s.save(7, &doc(7, 3)).unwrap();
    assert_eq!(s.get(7).unwrap(), Some(doc(7, 3)));
}

#[test]
fn delete_removes_documents() {
    for mode in [CouchMode::Original, CouchMode::Share] {
        let mut s = store(mode, 1);
        for k in 0..20u64 {
            s.save(k, &doc(k, 1)).unwrap();
        }
        for k in (0..20u64).step_by(2) {
            s.delete(k).unwrap();
        }
        for k in 0..20u64 {
            let got = s.get(k).unwrap();
            if k % 2 == 0 {
                assert_eq!(got, None);
            } else {
                assert_eq!(got, Some(doc(k, 1)));
            }
        }
        assert_eq!(s.doc_count(), 10);
    }
}

#[test]
fn stale_ratio_grows_with_updates() {
    let mut s = store(CouchMode::Original, 1);
    for k in 0..50u64 {
        s.save(k, &doc(k, 1)).unwrap();
    }
    let r0 = s.stale_ratio();
    for round in 2..8u64 {
        for k in 0..50u64 {
            s.save(k, &doc(k, round)).unwrap();
        }
    }
    assert!(s.stale_ratio() > r0);
    assert!(s.stale_ratio() > 0.4, "heavy updates should leave much garbage");
}

#[test]
fn compaction_preserves_data_and_reclaims_space() {
    for mode in [CouchMode::Original, CouchMode::Share] {
        let mut s = store(mode, 8);
        for k in 0..100u64 {
            s.save(k, &doc(k, 1)).unwrap();
        }
        for round in 2..6u64 {
            for k in 0..100u64 {
                s.save(k, &doc(k, round)).unwrap();
            }
        }
        s.commit().unwrap();
        let before_blocks = s.file_blocks();
        let report = s.compact().unwrap();
        assert_eq!(report.docs_moved, 100);
        assert_eq!(report.zero_copy, mode == CouchMode::Share);
        assert!(s.file_blocks() < before_blocks, "{mode:?} compaction must shrink the file");
        assert!(s.stale_ratio() < 0.05);
        for k in 0..100u64 {
            assert_eq!(s.get(k).unwrap(), Some(doc(k, 5)), "{mode:?} key {k} after compaction");
        }
        // And the store keeps working after the swap.
        s.save(1000, &doc(1000, 1)).unwrap();
        s.commit().unwrap();
        assert_eq!(s.get(1000).unwrap(), Some(doc(1000, 1)));
    }
}

#[test]
fn zero_copy_compaction_writes_far_less() {
    // Realistic NAND timing: the elapsed-time comparison is meaningless on
    // a zero-latency medium.
    let run = |mode: CouchMode| {
        let cfg = FtlConfig::for_capacity_with(48 << 20, 0.3, 4096, 32, NandTiming::default());
        let fs = Vfs::format(Ftl::new(cfg), VfsOptions::default()).unwrap();
        let mut s = CouchStore::create(
            fs,
            "test.couch",
            CouchConfig { mode, batch_size: 8, node_max_entries: 16, ..Default::default() },
        )
        .unwrap();
        for k in 0..300u64 {
            s.save(k, &doc(k, 1)).unwrap();
        }
        for round in 2..5u64 {
            for k in 0..300u64 {
                s.save(k, &doc(k, round)).unwrap();
            }
        }
        s.commit().unwrap();
        s.compact().unwrap()
    };
    let orig = run(CouchMode::Original);
    let share = run(CouchMode::Share);
    let wratio = orig.bytes_written as f64 / share.bytes_written as f64;
    assert!(wratio > 3.0, "zero-copy compaction write reduction only {wratio:.2}x");
    assert!(
        share.elapsed_ns < orig.elapsed_ns,
        "zero-copy compaction should also be faster"
    );
}

#[test]
fn by_seq_index_tracks_changes() {
    let mut s = store(CouchMode::Original, 4);
    for k in 0..30u64 {
        s.save(k, &doc(k, 1)).unwrap();
    }
    s.commit().unwrap();
    // Sequences 1..=30 exist; read one back by sequence.
    let (key, payload) = s.get_by_seq(5).unwrap().expect("seq 5 exists");
    assert_eq!(key, 4);
    assert_eq!(payload, doc(4, 1));
    // Update two docs: their old seqs retire, new ones appear at the top.
    s.save(3, &doc(3, 2)).unwrap();
    s.save(9, &doc(9, 2)).unwrap();
    s.commit().unwrap();
    assert_eq!(s.get_by_seq(4).unwrap(), None, "old seq of doc 3 must be gone");
    let changes = s.changes_since(30).unwrap();
    assert_eq!(changes.len(), 2);
    assert_eq!(changes[0].1, 3);
    assert_eq!(changes[1].1, 9);
    // Deletes retire their sequence too.
    s.delete(9).unwrap();
    s.commit().unwrap();
    let last = s.changes_since(30).unwrap();
    assert_eq!(last.len(), 1);
    assert_eq!(last[0].1, 3);
}

#[test]
fn by_seq_index_survives_compaction_and_reopen() {
    let mut s = store(CouchMode::Original, 8);
    for k in 0..60u64 {
        s.save(k, &doc(k, 1)).unwrap();
    }
    for k in 0..30u64 {
        s.save(k, &doc(k, 2)).unwrap();
    }
    s.commit().unwrap();
    let before: Vec<(u64, u64)> =
        s.changes_since(0).unwrap().into_iter().map(|(q, k, _)| (q, k)).collect();
    s.compact().unwrap();
    let after: Vec<(u64, u64)> =
        s.changes_since(0).unwrap().into_iter().map(|(q, k, _)| (q, k)).collect();
    assert_eq!(before, after, "compaction must preserve (seq, key) pairs");
    let fs = s.into_fs();
    let mut s2 = CouchStore::open(fs, "test.couch", CouchConfig::default()).unwrap();
    let reopened: Vec<(u64, u64)> =
        s2.changes_since(0).unwrap().into_iter().map(|(q, k, _)| (q, k)).collect();
    assert_eq!(before, reopened, "reopen must preserve the by-seq index");
    // And by-seq reads still resolve documents.
    let (k, payload) = s2.get_by_seq(reopened[0].0).unwrap().unwrap();
    assert_eq!(payload, doc(k, if k < 30 { 2 } else { 1 }));
}

#[test]
fn auto_compaction_triggers_at_the_stale_threshold() {
    for mode in [CouchMode::Original, CouchMode::Share] {
        let fs = Vfs::format(Ftl::new(ftl_cfg(48)), VfsOptions::default()).unwrap();
        let mut s = CouchStore::create(
            fs,
            "test.couch",
            CouchConfig {
                mode,
                batch_size: 8,
                node_max_entries: 16,
                auto_compact_ratio: Some(0.6),
                auto_compact_min_blocks: 64,
            },
        )
        .unwrap();
        for k in 0..100u64 {
            s.save(k, &doc(k, 1)).unwrap();
        }
        // Update churn drives the stale ratio past the threshold several
        // times; the store must compact itself and stay correct.
        for round in 2..20u64 {
            for k in 0..100u64 {
                s.save(k, &doc(k, round)).unwrap();
            }
        }
        s.commit().unwrap();
        assert!(s.stats().compactions >= 1, "{mode:?}: expected auto-compactions");
        assert!(s.stale_ratio() < 0.8, "{mode:?}: ratio {}", s.stale_ratio());
        for k in 0..100u64 {
            assert_eq!(s.get(k).unwrap(), Some(doc(k, 19)), "{mode:?} key {k}");
        }
    }
}

#[test]
fn reopen_after_clean_commit() {
    let mut s = store(CouchMode::Original, 4);
    for k in 0..60u64 {
        s.save(k, &doc(k, 1)).unwrap();
    }
    s.commit().unwrap();
    let fs = s.into_fs();
    let mut s2 = CouchStore::open(fs, "test.couch", CouchConfig::default()).unwrap();
    assert_eq!(s2.doc_count(), 60);
    for k in 0..60u64 {
        assert_eq!(s2.get(k).unwrap(), Some(doc(k, 1)));
    }
}

#[test]
fn uncommitted_tail_is_discarded_on_reopen() {
    let mut s = store(CouchMode::Original, 1000); // large batch: nothing commits
    for k in 0..10u64 {
        s.save(k, &doc(k, 1)).unwrap();
    }
    s.commit().unwrap(); // first 10 are durable
    for k in 10..20u64 {
        s.save(k, &doc(k, 1)).unwrap(); // appended but never committed
    }
    let fs = s.into_fs();
    let mut s2 = CouchStore::open(fs, "test.couch", CouchConfig::default()).unwrap();
    for k in 0..10u64 {
        assert_eq!(s2.get(k).unwrap(), Some(doc(k, 1)));
    }
    for k in 10..20u64 {
        assert_eq!(s2.get(k).unwrap(), None, "uncommitted doc {k} must vanish");
    }
}

#[test]
fn crash_during_workload_recovers_to_last_commit() {
    for crash_at in [200u64, 500, 900, 1400] {
        let mut s = store(CouchMode::Share, 4);
        for k in 0..50u64 {
            s.save(k, &doc(k, 1)).unwrap();
        }
        s.commit().unwrap();
        s.fs_mut().device_mut().fault_handle().arm_after_programs(crash_at, nand_sim::FaultMode::TornHalf);
        let mut version = vec![1u64; 50];
        let mut committed = vec![1u64; 50];
        'outer: for round in 2..40u64 {
            for k in 0..50u64 {
                match s.save(k, &doc(k, round)) {
                    Ok(()) => {
                        version[k as usize] = round;
                        // A batch of 4 commits on every 4th op; track what
                        // the last full commit covered conservatively below.
                    }
                    Err(_) => break 'outer,
                }
            }
            committed = version.clone();
        }
        s.fs_mut().device_mut().fault_handle().disarm();
        let nand = s.into_fs().into_device().into_nand();
        let dev = Ftl::open(ftl_cfg(48), nand).unwrap();
        let fs = Vfs::open(dev, VfsOptions::default()).unwrap();
        let mut s2 = CouchStore::open(fs, "test.couch", CouchConfig::default()).unwrap();
        for k in 0..50u64 {
            let got = s2.get(k).unwrap().expect("doc must exist");
            let got_version = u64::from_le_bytes(got[8..16].try_into().unwrap());
            assert!(
                got_version >= committed[k as usize].saturating_sub(1),
                "crash {crash_at}: doc {k} regressed to v{got_version} (committed ~v{})",
                committed[k as usize]
            );
            assert_eq!(&got[..8], &k.to_le_bytes(), "doc {k} holds wrong key content");
        }
    }
}

#[test]
fn crash_during_compaction_keeps_old_file_usable() {
    for crash_at in [50u64, 200, 400] {
        let mut s = store(CouchMode::Share, 8);
        for k in 0..100u64 {
            s.save(k, &doc(k, 1)).unwrap();
        }
        for k in 0..100u64 {
            s.save(k, &doc(k, 2)).unwrap();
        }
        s.commit().unwrap();
        s.fs_mut().device_mut().fault_handle().arm_after_programs(crash_at, nand_sim::FaultMode::TornHalf);
        let crashed = s.compact().is_err();
        s.fs_mut().device_mut().fault_handle().disarm();
        let nand = s.into_fs().into_device().into_nand();
        let dev = Ftl::open(ftl_cfg(48), nand).unwrap();
        let fs = Vfs::open(dev, VfsOptions::default()).unwrap();
        let mut s2 = CouchStore::open(fs, "test.couch", CouchConfig::default()).unwrap();
        for k in 0..100u64 {
            assert_eq!(
                s2.get(k).unwrap(),
                Some(doc(k, 2)),
                "crash {crash_at} (crashed={crashed}): doc {k} damaged by compaction crash"
            );
        }
    }
}

#[test]
fn share_mode_written_volume_is_batch_independent() {
    // Figure 7(b)'s flat SHARE line: written volume per update is constant
    // regardless of batch size.
    let written = |batch: usize| {
        let mut s = store(CouchMode::Share, batch);
        for k in 0..200u64 {
            s.save(k, &doc(k, 1)).unwrap();
        }
        s.commit().unwrap();
        let w0 = s.device_stats().host_write_bytes;
        for round in 2..6u64 {
            for k in 0..200u64 {
                s.save(k, &doc(k, round)).unwrap();
            }
        }
        s.commit().unwrap();
        s.device_stats().host_write_bytes - w0
    };
    let w1 = written(1);
    let w64 = written(64);
    let ratio = w1 as f64 / w64 as f64;
    assert!(
        (0.8..1.3).contains(&ratio),
        "SHARE written volume should not depend on batch size: {w1} vs {w64}"
    );
}

#[test]
fn group_save_and_get_match_serial_semantics() {
    for mode in [CouchMode::Original, CouchMode::Share] {
        let cfg = FtlConfig::for_capacity_with(48 << 20, 0.3, 4096, 32, NandTiming::default())
            .with_parallelism(4, 1);
        let fs = Vfs::format(Ftl::new(cfg), VfsOptions::default()).unwrap();
        let mut s = CouchStore::create(
            fs,
            "group.couch",
            CouchConfig { mode, batch_size: 4, node_max_entries: 16, ..Default::default() },
        )
        .unwrap();
        // Seed, then group-save a concurrent batch of updates + inserts.
        for k in 0..32u64 {
            s.save(k, &doc(k, 1)).unwrap();
        }
        s.commit().unwrap();
        let docs: Vec<(u64, Vec<u8>)> =
            (0..8u64).map(|k| (k * 3, doc(k * 3, 2))).collect();
        let batch: Vec<(u64, &[u8])> = docs.iter().map(|(k, d)| (*k, d.as_slice())).collect();
        s.save_many(&batch).unwrap();
        s.commit().unwrap();
        // Queued multiget sees the new versions; misses stay None.
        let keys: Vec<u64> = (0..8u64).map(|k| k * 3).chain([10_000]).collect();
        let got = s.get_many(&keys).unwrap();
        for (i, (k, d)) in docs.iter().enumerate() {
            assert_eq!(got[i].as_deref(), Some(d.as_slice()), "key {k} diverged under {mode:?}");
        }
        assert_eq!(got[8], None);
        // Serial gets agree.
        for (k, d) in &docs {
            assert_eq!(s.get(*k).unwrap().as_deref(), Some(d.as_slice()));
        }
    }
}

#[test]
fn group_save_overlaps_across_channels() {
    // The same 8-document group, on 1 channel vs 8: queued group appends
    // must get faster with channels (the serial save path did not).
    let elapsed_with = |channels: u32| -> u64 {
        let cfg = FtlConfig::for_capacity_with(48 << 20, 0.3, 4096, 32, NandTiming::default())
            .with_parallelism(channels, 1);
        let fs = Vfs::format(Ftl::new(cfg), VfsOptions::default()).unwrap();
        let mut s = CouchStore::create(
            fs,
            "ch.couch",
            CouchConfig {
                mode: CouchMode::Original,
                batch_size: 64,
                node_max_entries: 16,
                ..Default::default()
            },
        )
        .unwrap();
        let clock = s.clock();
        let t0 = clock.now_ns();
        let docs: Vec<(u64, Vec<u8>)> = (0..8u64).map(|k| (k, doc(k, 1))).collect();
        let batch: Vec<(u64, &[u8])> = docs.iter().map(|(k, d)| (*k, d.as_slice())).collect();
        s.save_many(&batch).unwrap();
        clock.now_ns() - t0
    };
    let serial = elapsed_with(1);
    let parallel = elapsed_with(8);
    assert!(
        parallel * 2 < serial,
        "8-doc group on 8 channels ({parallel} ns) should beat 1 channel ({serial} ns) by >2x"
    );
}

#[test]
fn online_backup_is_consistent_despite_foreground_writes() {
    for mode in [CouchMode::Original, CouchMode::Share] {
        let mut s = store(mode, 8);
        assert!(s.supports_snapshot());
        for k in 0..120u64 {
            s.save(k, &doc(k, 1)).unwrap();
        }
        s.commit().unwrap();
        let count_at_backup = s.doc_count();
        let before = s.device_stats();
        let frozen = s.begin_backup("nightly").unwrap();
        assert!(frozen > 0);
        // Snapshot creation itself writes no data pages (the commit above
        // already flushed; only the share-snapshot bookkeeping runs).
        let spent = s.device_stats().delta_since(&before);
        assert!(
            spent.nand.page_programs <= spent.meta_page_writes,
            "{mode:?}: backup copied data pages"
        );
        // Foreground keeps writing while the backup is held: updates,
        // inserts and deletes all land after the freeze point.
        for k in 0..120u64 {
            s.save(k, &doc(k, 2)).unwrap();
        }
        for k in 200..240u64 {
            s.save(k, &doc(k, 1)).unwrap();
        }
        for k in 0..10u64 {
            s.delete(k).unwrap();
        }
        s.commit().unwrap();
        s.finish_backup("nightly", "test.bak").unwrap();
        // The backup opens as a database frozen at begin_backup time.
        let fs = s.into_fs();
        let cfg = CouchConfig { mode, batch_size: 8, node_max_entries: 16, ..Default::default() };
        let mut bak = CouchStore::open(fs, "test.bak", cfg.clone()).unwrap();
        assert_eq!(bak.doc_count(), count_at_backup, "{mode:?}: backup count diverged");
        for k in 0..120u64 {
            assert_eq!(bak.get(k).unwrap(), Some(doc(k, 1)), "{mode:?}: backup key {k}");
        }
        assert_eq!(bak.get(200).unwrap(), None, "{mode:?}: post-backup insert leaked in");
        // The live database still has every post-backup change.
        let fs = bak.into_fs();
        let mut live = CouchStore::open(fs, "test.couch", cfg).unwrap();
        for k in 10..120u64 {
            assert_eq!(live.get(k).unwrap(), Some(doc(k, 2)), "{mode:?}: live key {k}");
        }
        assert_eq!(live.get(0).unwrap(), None, "{mode:?}: delete lost");
        for k in 200..240u64 {
            assert_eq!(live.get(k).unwrap(), Some(doc(k, 1)), "{mode:?}: insert lost");
        }
        live.fs_mut().device_mut().check_invariants();
    }
}
