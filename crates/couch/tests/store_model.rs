//! Model tests: the document store against a `BTreeMap` model, in both
//! modes, with interleaved commits and compactions. Deterministic seeded
//! op-sequence sweeps (see `share_rng::sweep`).

use mini_couch::{CouchConfig, CouchMode, CouchStore};
use share_core::{Ftl, FtlConfig};
use share_rng::{sweep, Rng, StdRng};
use share_vfs::{Vfs, VfsOptions};
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Save { key: u64, len: usize, fill: u8 },
    Delete { key: u64 },
    Get { key: u64 },
    Commit,
    Compact,
}

/// Weighted op choice matching the retired proptest strategy (6:2:3:1:1).
fn gen_op(rng: &mut StdRng) -> Op {
    match rng.random_range(0..13u32) {
        0..=5 => Op::Save {
            key: rng.random_range(0u64..100),
            len: rng.random_range(1usize..6000),
            fill: rng.random(),
        },
        6..=7 => Op::Delete { key: rng.random_range(0u64..100) },
        8..=10 => Op::Get { key: rng.random_range(0u64..100) },
        11 => Op::Commit,
        _ => Op::Compact,
    }
}

fn gen_ops(rng: &mut StdRng, min: usize, max: usize) -> Vec<Op> {
    let len = rng.random_range(min..max);
    (0..len).map(|_| gen_op(rng)).collect()
}

fn store(mode: CouchMode, batch: usize) -> CouchStore<Ftl> {
    let fcfg =
        FtlConfig::for_capacity_with(96 << 20, 0.3, 4096, 64, nand_sim::NandTiming::zero());
    let fs = Vfs::format(Ftl::new(fcfg), VfsOptions::default()).unwrap();
    CouchStore::create(
        fs,
        "prop.couch",
        CouchConfig { mode, batch_size: batch, node_max_entries: 8, ..Default::default() },
    )
    .unwrap()
}

fn run_case(mode: CouchMode, batch: usize, ops: &[Op]) {
    let mut s = store(mode, batch);
    let mut model: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    for op in ops {
        match op {
            Op::Save { key, len, fill } => {
                let v = vec![*fill; *len];
                s.save(*key, &v).unwrap();
                model.insert(*key, v);
            }
            Op::Delete { key } => {
                s.delete(*key).unwrap();
                model.remove(key);
            }
            Op::Get { key } => {
                assert_eq!(s.get(*key).unwrap(), model.get(key).cloned(), "get({key}) diverged");
            }
            Op::Commit => s.commit().unwrap(),
            Op::Compact => {
                let r = s.compact().unwrap();
                assert_eq!(r.zero_copy, mode == CouchMode::Share);
            }
        }
    }
    s.commit().unwrap();
    for (key, want) in &model {
        assert_eq!(s.get(*key).unwrap().as_ref(), Some(want), "final get({key})");
    }
    assert_eq!(s.doc_count(), model.len() as u64, "doc_count diverged");

    // Reopen cycle preserves the committed state exactly.
    let fs = s.into_fs();
    let mut s2 = CouchStore::open(fs, "prop.couch", CouchConfig::default()).unwrap();
    for (key, want) in &model {
        assert_eq!(s2.get(*key).unwrap().as_ref(), Some(want), "reopen get({key})");
    }
}

fn sweep_mode(suite: &str, mode: CouchMode) {
    for (_case, mut rng) in sweep(suite, 20) {
        let ops = gen_ops(&mut rng, 1, 100);
        let batch = rng.random_range(1usize..10);
        run_case(mode, batch, &ops);
    }
}

#[test]
fn original_mode_matches_model() {
    sweep_mode("couch/original_mode_matches_model", CouchMode::Original);
}

#[test]
fn share_mode_matches_model() {
    sweep_mode("couch/share_mode_matches_model", CouchMode::Share);
}
