//! Error type for the document store.

use share_core::FtlError;
use share_vfs::VfsError;
use std::fmt;

/// Errors surfaced by [`crate::CouchStore`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CouchError {
    /// File-system / device failure.
    Vfs(VfsError),
    /// On-disk structure is unusable.
    Corrupt(String),
}

impl fmt::Display for CouchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CouchError::Vfs(e) => write!(f, "vfs: {e}"),
            CouchError::Corrupt(m) => write!(f, "corrupt store: {m}"),
        }
    }
}

impl std::error::Error for CouchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CouchError::Vfs(e) => Some(e),
            _ => None,
        }
    }
}

impl From<VfsError> for CouchError {
    fn from(e: VfsError) -> Self {
        CouchError::Vfs(e)
    }
}

impl From<FtlError> for CouchError {
    fn from(e: FtlError) -> Self {
        CouchError::Vfs(VfsError::Device(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversion_and_display() {
        let e: CouchError = VfsError::NotFound("db".into()).into();
        assert!(e.to_string().contains("db"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(CouchError::Corrupt("x".into()).to_string().contains("x"));
    }
}
