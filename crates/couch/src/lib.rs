//! # mini-couch — a miniature Couchbase/couchstore storage engine
//!
//! An append-only, copy-on-write document store reproducing the NoSQL side
//! of the SHARE paper (§2.2, §4.3, §5.3.2):
//!
//! * documents are appended at the file tail; a commit fsyncs every
//!   `batch_size` updates,
//! * the by-key index is an immutable (copy-on-write) B+tree whose nodes
//!   are rewritten root-to-leaf on every commit — the **wandering tree**
//!   write amplification,
//! * a commit header block ends each commit; recovery scans backward for
//!   the last intact header,
//! * **SHARE mode** remaps each update's new copy onto the old document's
//!   blocks, eliminating the index cascade entirely, and performs
//!   **zero-copy compaction** (fallocate + share) per the paper's Figure 3.
//!
//! ```
//! use mini_couch::{CouchConfig, CouchMode, CouchStore};
//! use share_core::{Ftl, FtlConfig};
//! use share_vfs::{Vfs, VfsOptions};
//!
//! let fs = Vfs::format(Ftl::new(FtlConfig::for_capacity(32 << 20, 0.3)),
//!                      VfsOptions::default()).unwrap();
//! let cfg = CouchConfig { mode: CouchMode::Share, batch_size: 4, ..Default::default() };
//! let mut store = CouchStore::create(fs, "demo.couch", cfg).unwrap();
//!
//! store.save(7, b"hello").unwrap();
//! store.commit().unwrap();
//! store.save(7, b"world").unwrap(); // same size: SHARE-remapped, no tree write
//! store.commit().unwrap();
//! assert_eq!(store.get(7).unwrap(), Some(b"world".to_vec()));
//! assert_eq!(store.stats().share_remaps, 1);
//! ```

mod compact;
mod error;
mod format;
mod store;

pub use compact::CompactionReport;
pub use error::CouchError;
pub use format::{
    decode_doc_block, decode_header, decode_node, doc_blocks, doc_payload_per_block, encode_doc,
    encode_header, encode_node, node_capacity, DocBlock, DocPtr, Header, NodeEntry,
};
pub use store::{CouchConfig, CouchMode, CouchStats, CouchStore, NO_ROOT};

/// Result alias for store operations.
pub type Result<T> = std::result::Result<T, CouchError>;
