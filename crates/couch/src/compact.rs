//! Compaction: reclaim stale blocks by rebuilding the database file.
//!
//! * **Original** (Figure 1(b) / §2.2): read every live document from the
//!   old file and copy it into a new file, rebuilding the tree — heavy
//!   read *and* write traffic.
//! * **SHARE** (Figure 3 / §3.3): `fallocate` the new file and SHARE-remap
//!   every live document's blocks into it — *zero* document copying. Only
//!   each document's header block is still read (to learn its length, the
//!   residual cost the paper cites for Table 2), and the fresh index is
//!   written.

use crate::format::{decode_doc_block, NodeEntry};
use crate::store::{CouchMode, CouchStore, NO_ROOT};
use crate::CouchError;
use share_core::BlockDevice;

/// What one compaction did (drives the paper's Table 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompactionReport {
    /// Simulated wall-clock spent.
    pub elapsed_ns: u64,
    /// Host bytes written to the device during compaction.
    pub bytes_written: u64,
    /// Host bytes read from the device during compaction.
    pub bytes_read: u64,
    /// Live documents carried over.
    pub docs_moved: u64,
    /// Document blocks carried over.
    pub doc_blocks_moved: u64,
    /// Whether the zero-copy (SHARE) path ran.
    pub zero_copy: bool,
}

impl<D: BlockDevice> CouchStore<D> {
    /// Compact the database, replacing its file. Pending updates are
    /// committed first. Returns traffic/time accounting for the run.
    pub fn compact(&mut self) -> Result<CompactionReport, CouchError> {
        let span = self.root_span("compaction");
        let r = self.compact_inner();
        self.end_span(span, r.is_ok());
        r
    }

    fn compact_inner(&mut self) -> Result<CompactionReport, CouchError> {
        self.commit()?;
        let clock = self.fs.device().clock().clone();
        let stats0 = self.fs.device().stats();
        let t0 = clock.now_ns();

        let entries = self.all_leaf_entries()?;
        let docs_moved = entries.len() as u64;
        let doc_blocks_moved: u64 = entries.iter().map(|e| e.nblocks as u64).sum();

        let compact_name = format!("{}.compact", self.name);
        if self.fs.lookup(&compact_name).is_some() {
            self.fs.delete(&compact_name)?;
        }
        let new_file = self.fs.create(&compact_name)?;
        // Compaction traffic gets its own telemetry stream so a metrics
        // snapshot separates it from live store I/O.
        let _ = self.fs.set_stream_label(new_file, "compact");

        let zero_copy = self.cfg.mode == CouchMode::Share && self.fs.supports_share();
        let mut new_leaf_entries: Vec<NodeEntry> = Vec::with_capacity(entries.len());
        let mut new_tail: u64 = 0;

        if zero_copy {
            // Reserve space up front (the paper's fallocate) then remap.
            self.fs.fallocate(new_file, doc_blocks_moved.max(1))?;
            let bs = self.fs.page_size();
            // Read the document header blocks to learn each length —
            // required by the share command, and the reason SHARE-based
            // compaction is not infinitely fast (§5.3.2). Batched so the
            // reads overlap across channels.
            let mut head_bufs = vec![vec![0u8; bs]; entries.len()];
            for (chunk_e, chunk_b) in entries.chunks(256).zip(head_bufs.chunks_mut(256)) {
                let mut reqs: Vec<(u64, &mut [u8])> = chunk_e
                    .iter()
                    .zip(chunk_b.iter_mut())
                    .map(|(e, b)| (e.ptr, b.as_mut_slice()))
                    .collect();
                self.fs.read_pages(self.file, &mut reqs)?;
            }
            let mut pairs: Vec<(u64, u64)> = Vec::with_capacity(doc_blocks_moved as usize);
            for (e, buf) in entries.iter().zip(&head_bufs) {
                let head = decode_doc_block(buf)
                    .ok_or_else(|| CouchError::Corrupt(format!("bad doc head at {}", e.ptr)))?;
                debug_assert_eq!(head.nblocks, e.nblocks);
                for i in 0..e.nblocks as u64 {
                    pairs.push((new_tail + i, e.ptr + i));
                }
                new_leaf_entries.push(NodeEntry { key: e.key, ptr: new_tail, ..*e });
                new_tail += e.nblocks as u64;
            }
            self.fs.ioctl_share_pairs(new_file, self.file, &pairs)?;
        } else {
            // Copy every live document, in batched read/write chunks.
            let bs = self.fs.page_size();
            let mut moves: Vec<(u64, u64)> = Vec::with_capacity(doc_blocks_moved as usize);
            for e in &entries {
                for i in 0..e.nblocks as u64 {
                    moves.push((e.ptr + i, new_tail + i));
                }
                new_leaf_entries.push(NodeEntry { key: e.key, ptr: new_tail, ..*e });
                new_tail += e.nblocks as u64;
            }
            let mut bufs = vec![vec![0u8; bs]; 128];
            for chunk in moves.chunks(128) {
                {
                    let mut reqs: Vec<(u64, &mut [u8])> = chunk
                        .iter()
                        .zip(bufs.iter_mut())
                        .map(|(&(src, _), b)| (src, b.as_mut_slice()))
                        .collect();
                    self.fs.read_pages(self.file, &mut reqs)?;
                }
                let batch: Vec<(u64, &[u8])> = chunk
                    .iter()
                    .zip(bufs.iter())
                    .map(|(&(_, dst), b)| (dst, b.as_slice()))
                    .collect();
                self.fs.write_pages(new_file, &batch)?;
            }
        }

        // Swap state over to the new file, then bulk-build the fresh
        // indexes (by-id and by-seq) and header through the normal append
        // path.
        let old_name = self.name.clone();
        let doc_count = self.doc_count;
        self.file = new_file;
        self.tail = new_tail;
        self.root = NO_ROOT;
        self.root_level = 0;
        self.seq_root = NO_ROOT;
        self.seq_root_level = 0;
        self.stale_blocks = 0;
        self.doc_count = doc_count;
        self.node_cache.clear();
        let (root, level) = self.bulk_build_index(&new_leaf_entries)?;
        self.root = root;
        self.root_level = level;
        let mut seq_entries: Vec<NodeEntry> = new_leaf_entries
            .iter()
            .map(|e| NodeEntry { key: e.aux, ptr: e.ptr, nblocks: e.nblocks, len: e.len, aux: e.key })
            .collect();
        seq_entries.sort_by_key(|e| e.key);
        let (sroot, slevel) = self.bulk_build_index(&seq_entries)?;
        self.seq_root = sroot;
        self.seq_root_level = slevel;
        self.write_header()?;
        self.fs.fsync(self.file)?;

        // Retire the old file and take its name. From here on its traffic
        // is live store I/O again, not compaction.
        self.fs.delete(&old_name)?;
        self.fs.rename(&compact_name, &old_name)?;
        let _ = self.fs.set_stream_label(self.file, "store");
        self.fs.fsync(self.file)?;
        self.stats.compactions += 1;

        let d = self.fs.device().stats().delta_since(&stats0);
        Ok(CompactionReport {
            elapsed_ns: clock.now_ns() - t0,
            bytes_written: d.host_write_bytes,
            bytes_read: d.host_read_bytes,
            docs_moved,
            doc_blocks_moved,
            zero_copy,
        })
    }

    /// Bottom-up index build from sorted leaf entries; returns (root, level).
    fn bulk_build_index(&mut self, leaf_entries: &[NodeEntry]) -> Result<(u64, u8), CouchError> {
        if leaf_entries.is_empty() {
            return Ok((NO_ROOT, 0));
        }
        let fanout = self.cfg.node_max_entries;
        let mut level = 0u8;
        let mut current: Vec<NodeEntry> = leaf_entries.to_vec();
        loop {
            let mut next: Vec<NodeEntry> = Vec::with_capacity(current.len() / fanout + 1);
            for chunk in current.chunks(fanout) {
                let ptr = self.append_node(level, chunk.to_vec())?;
                next.push(NodeEntry { key: chunk[0].key, ptr, nblocks: 0, len: 0, aux: 0 });
            }
            if next.len() == 1 {
                return Ok((next[0].ptr, level));
            }
            current = next;
            level += 1;
        }
    }
}
