//! On-disk block formats of the append-only store.
//!
//! Everything is written in 4 KiB file blocks (the device page), mirroring
//! couchstore's block-aligned layout: document blocks, immutable B+tree
//! node blocks, and a header block appended at each commit. Every block
//! carries a CRC so recovery can scan backward for the last intact header.

use share_core::crc32c;

/// Magic tags.
pub const DOC_MAGIC: u32 = 0x4344_4F43; // "CDOC"
pub const DOC_CONT_MAGIC: u32 = 0x4343_4E54; // "CCNT"
pub const NODE_MAGIC: u32 = 0x434E_4F44; // "CNOD"
pub const HDR_MAGIC: u32 = 0x4348_4452; // "CHDR"

/// Per-block header bytes (magic + crc + type-specific fields ≤ 40).
pub const BLOCK_HEADER: usize = 40;

/// Payload bytes a document block carries.
pub fn doc_payload_per_block(block_size: usize) -> usize {
    block_size - BLOCK_HEADER
}

/// Blocks a document of `len` payload bytes occupies.
pub fn doc_blocks(len: usize, block_size: usize) -> u64 {
    (len.max(1)).div_ceil(doc_payload_per_block(block_size)) as u64
}

/// A pointer to a document on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DocPtr {
    /// First file block of the document.
    pub block: u64,
    /// Number of blocks.
    pub nblocks: u16,
    /// Payload length in bytes.
    pub len: u32,
}

/// One B+tree node entry: leaf entries point at documents, inner entries
/// at child nodes (`nblocks`/`len` then describe the subtree loosely).
///
/// Couchstore keeps two indexes over the same documents: by-id and by-seq.
/// `aux` carries the *other* coordinate: in the by-id tree it is the
/// document's sequence number, in the by-seq tree it is the document key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeEntry {
    /// Separator key (document id or sequence number).
    pub key: u64,
    /// Child node block or document pointer.
    pub ptr: u64,
    /// Document block count (leaf) or 0 (inner).
    pub nblocks: u16,
    /// Document payload length (leaf) or 0 (inner).
    pub len: u32,
    /// Cross-index coordinate (seq in by-id leaves, id in by-seq leaves).
    pub aux: u64,
}

const ENTRY_BYTES: usize = 32;

/// Encode a document into consecutive block images.
pub fn encode_doc(key: u64, rev: u64, payload: &[u8], block_size: usize) -> Vec<Vec<u8>> {
    let per = doc_payload_per_block(block_size);
    let nblocks = doc_blocks(payload.len(), block_size) as usize;
    let mut out = Vec::with_capacity(nblocks);
    for i in 0..nblocks {
        let chunk = &payload[i * per..payload.len().min((i + 1) * per)];
        let mut b = vec![0u8; block_size];
        let magic = if i == 0 { DOC_MAGIC } else { DOC_CONT_MAGIC };
        b[0..4].copy_from_slice(&magic.to_le_bytes());
        b[8..16].copy_from_slice(&key.to_le_bytes());
        b[16..24].copy_from_slice(&rev.to_le_bytes());
        b[24..28].copy_from_slice(&(payload.len() as u32).to_le_bytes());
        b[28..30].copy_from_slice(&(nblocks as u16).to_le_bytes());
        b[30..32].copy_from_slice(&(chunk.len() as u16).to_le_bytes());
        b[BLOCK_HEADER..BLOCK_HEADER + chunk.len()].copy_from_slice(chunk);
        let crc = crc32c(&b[8..]);
        b[4..8].copy_from_slice(&crc.to_le_bytes());
        out.push(b);
    }
    out
}

/// A decoded document block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DocBlock {
    /// Whether this is the first block of the document.
    pub is_head: bool,
    /// Document key.
    pub key: u64,
    /// Document revision.
    pub rev: u64,
    /// Total payload length.
    pub total_len: u32,
    /// Total blocks of the document.
    pub nblocks: u16,
    /// This block's payload chunk.
    pub chunk: Vec<u8>,
}

/// Decode and verify a document block.
pub fn decode_doc_block(b: &[u8]) -> Option<DocBlock> {
    let magic = u32::from_le_bytes(b[0..4].try_into().ok()?);
    let is_head = match magic {
        DOC_MAGIC => true,
        DOC_CONT_MAGIC => false,
        _ => return None,
    };
    let crc = u32::from_le_bytes(b[4..8].try_into().ok()?);
    if crc32c(&b[8..]) != crc {
        return None;
    }
    let key = u64::from_le_bytes(b[8..16].try_into().ok()?);
    let rev = u64::from_le_bytes(b[16..24].try_into().ok()?);
    let total_len = u32::from_le_bytes(b[24..28].try_into().ok()?);
    let nblocks = u16::from_le_bytes(b[28..30].try_into().ok()?);
    let chunk_len = u16::from_le_bytes(b[30..32].try_into().ok()?) as usize;
    if BLOCK_HEADER + chunk_len > b.len() {
        return None;
    }
    Some(DocBlock {
        is_head,
        key,
        rev,
        total_len,
        nblocks,
        chunk: b[BLOCK_HEADER..BLOCK_HEADER + chunk_len].to_vec(),
    })
}

/// Max entries a node block can hold at `block_size`.
pub fn node_capacity(block_size: usize) -> usize {
    (block_size - BLOCK_HEADER) / ENTRY_BYTES
}

/// Encode a tree node block.
pub fn encode_node(level: u8, entries: &[NodeEntry], block_size: usize) -> Vec<u8> {
    assert!(entries.len() <= node_capacity(block_size), "node over capacity");
    let mut b = vec![0u8; block_size];
    b[0..4].copy_from_slice(&NODE_MAGIC.to_le_bytes());
    b[8] = level;
    b[10..12].copy_from_slice(&(entries.len() as u16).to_le_bytes());
    let mut off = BLOCK_HEADER;
    for e in entries {
        b[off..off + 8].copy_from_slice(&e.key.to_le_bytes());
        b[off + 8..off + 16].copy_from_slice(&e.ptr.to_le_bytes());
        b[off + 16..off + 18].copy_from_slice(&e.nblocks.to_le_bytes());
        b[off + 18..off + 22].copy_from_slice(&e.len.to_le_bytes());
        b[off + 22..off + 30].copy_from_slice(&e.aux.to_le_bytes());
        off += ENTRY_BYTES;
    }
    let crc = crc32c(&b[8..]);
    b[4..8].copy_from_slice(&crc.to_le_bytes());
    b
}

/// Decode a tree node block.
pub fn decode_node(b: &[u8]) -> Option<(u8, Vec<NodeEntry>)> {
    if u32::from_le_bytes(b[0..4].try_into().ok()?) != NODE_MAGIC {
        return None;
    }
    let crc = u32::from_le_bytes(b[4..8].try_into().ok()?);
    if crc32c(&b[8..]) != crc {
        return None;
    }
    let level = b[8];
    let count = u16::from_le_bytes(b[10..12].try_into().ok()?) as usize;
    if BLOCK_HEADER + count * ENTRY_BYTES > b.len() {
        return None;
    }
    let mut entries = Vec::with_capacity(count);
    let mut off = BLOCK_HEADER;
    for _ in 0..count {
        entries.push(NodeEntry {
            key: u64::from_le_bytes(b[off..off + 8].try_into().ok()?),
            ptr: u64::from_le_bytes(b[off + 8..off + 16].try_into().ok()?),
            nblocks: u16::from_le_bytes(b[off + 16..off + 18].try_into().ok()?),
            len: u32::from_le_bytes(b[off + 18..off + 22].try_into().ok()?),
            aux: u64::from_le_bytes(b[off + 22..off + 30].try_into().ok()?),
        });
        off += ENTRY_BYTES;
    }
    Some((level, entries))
}

/// The commit header appended at each commit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Header {
    /// Commit sequence number.
    pub seq: u64,
    /// By-id root node block (u64::MAX = empty tree).
    pub root: u64,
    /// By-id root level (0 = leaf root).
    pub root_level: u8,
    /// By-seq root node block (u64::MAX = empty tree).
    pub seq_root: u64,
    /// By-seq root level.
    pub seq_root_level: u8,
    /// Next document sequence number.
    pub next_seq: u64,
    /// Live documents.
    pub doc_count: u64,
    /// File length in blocks at commit time (header block included).
    pub tail: u64,
    /// Stale (dead) blocks accumulated.
    pub stale_blocks: u64,
}

/// Encode a header block.
pub fn encode_header(h: &Header, block_size: usize) -> Vec<u8> {
    let mut b = vec![0u8; block_size];
    b[0..4].copy_from_slice(&HDR_MAGIC.to_le_bytes());
    b[8..16].copy_from_slice(&h.seq.to_le_bytes());
    b[16..24].copy_from_slice(&h.root.to_le_bytes());
    b[24] = h.root_level;
    b[25..33].copy_from_slice(&h.doc_count.to_le_bytes());
    b[33..41].copy_from_slice(&h.tail.to_le_bytes());
    b[41..49].copy_from_slice(&h.stale_blocks.to_le_bytes());
    b[49..57].copy_from_slice(&h.seq_root.to_le_bytes());
    b[57] = h.seq_root_level;
    b[58..66].copy_from_slice(&h.next_seq.to_le_bytes());
    let crc = crc32c(&b[8..]);
    b[4..8].copy_from_slice(&crc.to_le_bytes());
    b
}

/// Decode and verify a header block.
pub fn decode_header(b: &[u8]) -> Option<Header> {
    if u32::from_le_bytes(b[0..4].try_into().ok()?) != HDR_MAGIC {
        return None;
    }
    let crc = u32::from_le_bytes(b[4..8].try_into().ok()?);
    if crc32c(&b[8..]) != crc {
        return None;
    }
    Some(Header {
        seq: u64::from_le_bytes(b[8..16].try_into().ok()?),
        root: u64::from_le_bytes(b[16..24].try_into().ok()?),
        root_level: b[24],
        doc_count: u64::from_le_bytes(b[25..33].try_into().ok()?),
        tail: u64::from_le_bytes(b[33..41].try_into().ok()?),
        stale_blocks: u64::from_le_bytes(b[41..49].try_into().ok()?),
        seq_root: u64::from_le_bytes(b[49..57].try_into().ok()?),
        seq_root_level: b[57],
        next_seq: u64::from_le_bytes(b[58..66].try_into().ok()?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const BS: usize = 4096;

    #[test]
    fn doc_round_trip_single_block() {
        let payload = vec![0xAB; 1000];
        let blocks = encode_doc(7, 3, &payload, BS);
        assert_eq!(blocks.len(), 1);
        let d = decode_doc_block(&blocks[0]).unwrap();
        assert!(d.is_head);
        assert_eq!((d.key, d.rev, d.total_len, d.nblocks), (7, 3, 1000, 1));
        assert_eq!(d.chunk, payload);
    }

    #[test]
    fn doc_round_trip_multi_block() {
        let payload: Vec<u8> = (0..10_000u32).map(|i| i as u8).collect();
        let blocks = encode_doc(9, 1, &payload, BS);
        assert_eq!(blocks.len() as u64, doc_blocks(payload.len(), BS));
        let mut rebuilt = Vec::new();
        for (i, b) in blocks.iter().enumerate() {
            let d = decode_doc_block(b).unwrap();
            assert_eq!(d.is_head, i == 0);
            assert_eq!(d.total_len as usize, payload.len());
            rebuilt.extend_from_slice(&d.chunk);
        }
        assert_eq!(rebuilt, payload);
    }

    #[test]
    fn doc_block_math() {
        let per = doc_payload_per_block(BS);
        assert_eq!(doc_blocks(1, BS), 1);
        assert_eq!(doc_blocks(per, BS), 1);
        assert_eq!(doc_blocks(per + 1, BS), 2);
        assert_eq!(doc_blocks(0, BS), 1); // empty docs still take a block
    }

    #[test]
    fn node_round_trip() {
        let entries: Vec<NodeEntry> = (0..50)
            .map(|i| NodeEntry { key: i * 10, ptr: 1000 + i, nblocks: 1, len: 4056, aux: i })
            .collect();
        let b = encode_node(2, &entries, BS);
        let (level, got) = decode_node(&b).unwrap();
        assert_eq!(level, 2);
        assert_eq!(got, entries);
    }

    #[test]
    fn header_round_trip() {
        let h = Header {
            seq: 5,
            root: 77,
            root_level: 2,
            seq_root: 81,
            seq_root_level: 1,
            next_seq: 500,
            doc_count: 123,
            tail: 200,
            stale_blocks: 9,
        };
        let b = encode_header(&h, BS);
        assert_eq!(decode_header(&b).unwrap(), h);
    }

    #[test]
    fn corrupt_blocks_are_rejected() {
        let h = Header { seq: 1, ..Default::default() };
        let mut b = encode_header(&h, BS);
        b[20] ^= 0xFF;
        assert!(decode_header(&b).is_none());
        let mut n = encode_node(0, &[], BS);
        n[9] ^= 1;
        assert!(decode_node(&n).is_none());
        let mut d = encode_doc(1, 1, &[1, 2, 3], BS).remove(0);
        d[100] ^= 1;
        assert!(decode_doc_block(&d).is_none());
    }

    #[test]
    fn block_types_do_not_cross_decode() {
        let h = encode_header(&Header::default(), BS);
        assert!(decode_node(&h).is_none());
        assert!(decode_doc_block(&h).is_none());
        let n = encode_node(1, &[], BS);
        assert!(decode_header(&n).is_none());
    }

    #[test]
    fn capacity_is_positive_and_bounded() {
        let cap = node_capacity(BS);
        assert!(cap >= 100);
        let entries = vec![NodeEntry { key: 0, ptr: 0, nblocks: 0, len: 0, aux: 0 }; cap];
        let b = encode_node(0, &entries, BS);
        assert_eq!(decode_node(&b).unwrap().1.len(), cap);
    }
}
