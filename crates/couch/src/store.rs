//! The append-only document store (couchstore-like engine).
//!
//! Updates append new document copies at the file tail; commits fsync every
//! `batch_size` updates. What happens to the **index** is the experimental
//! axis of the paper's §5.3.2:
//!
//! * [`CouchMode::Original`] — copy-on-write wandering tree: each commit
//!   rewrites every tree node on the path from touched leaves to the root
//!   and appends a new header (Figure 1(b)).
//! * [`CouchMode::Share`] — an update's new copy is SHARE-remapped onto the
//!   old document's blocks, so the tree (and header) need not change at
//!   all; only inserts and deletes fall back to the tree path.

use crate::format::{
    decode_doc_block, decode_header, decode_node, doc_blocks, encode_doc, encode_header,
    encode_node, node_capacity, DocPtr, Header, NodeEntry,
};
use crate::CouchError;
use share_core::BlockDevice;
use share_telemetry::{Layer, SpanId, Track};
use share_vfs::{FileId, Vfs};
use std::collections::{BTreeMap, HashMap};

/// Sentinel for "no root".
pub const NO_ROOT: u64 = u64::MAX;

/// Index-maintenance strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CouchMode {
    /// Copy-on-write wandering tree (stock couchstore behaviour).
    Original,
    /// SHARE-remap updates in place of the index cascade.
    Share,
}

impl CouchMode {
    /// Label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            CouchMode::Original => "Original",
            CouchMode::Share => "SHARE",
        }
    }
}

/// Store configuration.
#[derive(Debug, Clone)]
pub struct CouchConfig {
    /// Index strategy.
    pub mode: CouchMode,
    /// Updates per fsync (the paper's `batch-size` knob, 1..256).
    pub batch_size: usize,
    /// Max entries per tree node (drives tree height).
    pub node_max_entries: usize,
    /// Auto-compaction trigger: "when the ratio of stale data reaches a
    /// configured threshold, the costly compaction operation is invoked"
    /// (§2.2). `None` disables (compact explicitly).
    pub auto_compact_ratio: Option<f64>,
    /// Do not auto-compact below this file size (avoids thrashing tiny
    /// databases where headers dominate the stale ratio).
    pub auto_compact_min_blocks: u64,
}

impl Default for CouchConfig {
    fn default() -> Self {
        Self {
            mode: CouchMode::Original,
            batch_size: 1,
            node_max_entries: 100,
            auto_compact_ratio: None,
            auto_compact_min_blocks: 1_024,
        }
    }
}

/// Engine counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CouchStats {
    /// Commits (fsync boundaries).
    pub commits: u64,
    /// Document blocks appended.
    pub doc_blocks_appended: u64,
    /// Tree node blocks appended (the wandering-tree cost).
    pub node_blocks_appended: u64,
    /// Header blocks appended.
    pub header_blocks_appended: u64,
    /// Documents remapped via SHARE instead of a tree update.
    pub share_remaps: u64,
    /// Updates that had to fall back to the tree path in SHARE mode
    /// (size change, new key, or rev-map pressure).
    pub share_fallbacks: u64,
    /// Compactions performed.
    pub compactions: u64,
}

#[derive(Debug, Clone, Copy)]
enum Pending {
    /// Insert/replace; the `u64` is the cross-index coordinate (seq for
    /// by-id updates, doc key for by-seq updates).
    Put(DocPtr, u64),
    Delete,
}

/// The document store over a [`Vfs`].
pub struct CouchStore<D: BlockDevice> {
    pub(crate) fs: Vfs<D>,
    pub(crate) file: FileId,
    pub(crate) name: String,
    pub(crate) cfg: CouchConfig,
    pub(crate) tail: u64,
    pub(crate) root: u64,
    pub(crate) root_level: u8,
    pub(crate) seq_root: u64,
    pub(crate) seq_root_level: u8,
    pub(crate) next_seq: u64,
    pub(crate) hdr_seq: u64,
    pub(crate) doc_count: u64,
    pub(crate) stale_blocks: u64,
    next_rev: u64,
    pending: BTreeMap<u64, Pending>,
    /// By-seq index changes awaiting commit (key = sequence number).
    pending_seq: BTreeMap<u64, Pending>,
    /// Same-size updates awaiting a SHARE remap at commit: key -> (old
    /// location, newest appended copy). Re-updates of a key within one
    /// batch coalesce here (last writer wins; earlier copies go stale).
    pending_shares: BTreeMap<u64, (DocPtr, DocPtr)>,
    ops_since_commit: usize,
    pub(crate) node_cache: HashMap<u64, (u8, Vec<NodeEntry>)>,
    pub(crate) stats: CouchStats,
}

impl<D: BlockDevice> CouchStore<D> {
    /// Create a fresh database file `name` on `fs`.
    pub fn create(mut fs: Vfs<D>, name: &str, cfg: CouchConfig) -> Result<Self, CouchError> {
        assert!(cfg.batch_size >= 1);
        assert!(cfg.node_max_entries >= 4);
        assert!(cfg.node_max_entries <= node_capacity(fs.page_size()));
        let file = fs.create(name)?;
        let _ = fs.set_stream_label(file, "store");
        let mut store = Self {
            fs,
            file,
            name: name.to_string(),
            cfg,
            tail: 0,
            root: NO_ROOT,
            root_level: 0,
            seq_root: NO_ROOT,
            seq_root_level: 0,
            next_seq: 1,
            hdr_seq: 0,
            doc_count: 0,
            stale_blocks: 0,
            next_rev: 1,
            pending: BTreeMap::new(),
            pending_seq: BTreeMap::new(),
            pending_shares: BTreeMap::new(),
            ops_since_commit: 0,
            node_cache: HashMap::new(),
            stats: CouchStats::default(),
        };
        store.write_header()?;
        store.fs.fsync(store.file)?;
        Ok(store)
    }

    /// Open an existing database: scan backward for the last intact header
    /// (uncommitted tail appends are discarded, as couchstore does). A
    /// leftover partial compaction file is deleted and compaction restarts
    /// from scratch — the paper's §4.3 recovery rule.
    pub fn open(mut fs: Vfs<D>, name: &str, cfg: CouchConfig) -> Result<Self, CouchError> {
        let compact_name = format!("{name}.compact");
        if fs.lookup(&compact_name).is_some() {
            fs.delete(&compact_name)?;
        }
        let file = fs
            .lookup(name)
            .ok_or_else(|| CouchError::Corrupt(format!("no database file {name}")))?;
        let _ = fs.set_stream_label(file, "store");
        // Scan the whole *allocated* region: appends within an already
        // allocated extent do not persist a new file length, so the last
        // header can sit past the recorded length. Unwritten pages read as
        // zeros and fail the header check harmlessly.
        let len = fs.allocated_pages(file)?;
        let bs = fs.page_size();
        let mut buf = vec![0u8; bs];
        let mut found: Option<(u64, Header)> = None;
        for i in (0..len).rev() {
            fs.read_page(file, i, &mut buf)?;
            if let Some(h) = decode_header(&buf) {
                found = Some((i, h));
                break;
            }
        }
        let (pos, h) =
            found.ok_or_else(|| CouchError::Corrupt("no valid header found".to_string()))?;
        // Truncate everything past the recovered header: future appends
        // overwrite that region, and stale blocks (including stale headers
        // from a discarded generation) must not be mistaken for fresh data
        // at the next recovery.
        fs.trim_range(file, pos + 1, len)?;
        fs.truncate(file, pos + 1)?;
        fs.fsync(file)?;
        Ok(Self {
            fs,
            file,
            name: name.to_string(),
            cfg,
            tail: pos + 1,
            root: h.root,
            root_level: h.root_level,
            seq_root: h.seq_root,
            seq_root_level: h.seq_root_level,
            next_seq: h.next_seq.max(1),
            hdr_seq: h.seq,
            doc_count: h.doc_count,
            stale_blocks: h.stale_blocks,
            next_rev: h.seq + 1,
            pending: BTreeMap::new(),
            pending_seq: BTreeMap::new(),
            pending_shares: BTreeMap::new(),
            ops_since_commit: 0,
            node_cache: HashMap::new(),
            stats: CouchStats::default(),
        })
    }

    /// Engine counters.
    pub fn stats(&self) -> CouchStats {
        self.stats
    }

    /// Live document count.
    pub fn doc_count(&self) -> u64 {
        self.doc_count
    }

    /// Current file length in blocks.
    pub fn file_blocks(&self) -> u64 {
        self.tail
    }

    /// Fraction of the file occupied by stale blocks.
    pub fn stale_ratio(&self) -> f64 {
        if self.tail == 0 {
            0.0
        } else {
            self.stale_blocks as f64 / self.tail as f64
        }
    }

    /// Access the underlying file system (stats, fault injection).
    pub fn fs_mut(&mut self) -> &mut Vfs<D> {
        &mut self.fs
    }

    /// Device statistics.
    pub fn device_stats(&self) -> share_core::DeviceStats {
        self.fs.device().stats()
    }

    /// The simulated clock.
    pub fn clock(&self) -> nand_sim::SimClock {
        self.fs.device().clock().clone()
    }

    /// Tear down, returning the file system.
    pub fn into_fs(self) -> Vfs<D> {
        self.fs
    }

    // ----- node I/O ---------------------------------------------------------

    pub(crate) fn load_node(&mut self, ptr: u64) -> Result<(u8, Vec<NodeEntry>), CouchError> {
        if let Some(n) = self.node_cache.get(&ptr) {
            return Ok(n.clone());
        }
        let mut buf = vec![0u8; self.fs.page_size()];
        self.fs.read_page(self.file, ptr, &mut buf)?;
        let node = decode_node(&buf)
            .ok_or_else(|| CouchError::Corrupt(format!("bad node block at {ptr}")))?;
        // Immutable once written: cache freely, with a crude size cap.
        if self.node_cache.len() > 200_000 {
            self.node_cache.clear();
        }
        self.node_cache.insert(ptr, node.clone());
        Ok(node)
    }

    pub(crate) fn append_node(&mut self, level: u8, entries: Vec<NodeEntry>) -> Result<u64, CouchError> {
        let bs = self.fs.page_size();
        let img = encode_node(level, &entries, bs);
        let ptr = self.tail;
        self.fs.write_page(self.file, ptr, &img)?;
        self.tail += 1;
        self.stats.node_blocks_appended += 1;
        self.node_cache.insert(ptr, (level, entries));
        Ok(ptr)
    }

    pub(crate) fn write_header(&mut self) -> Result<(), CouchError> {
        self.hdr_seq += 1;
        let h = Header {
            seq: self.hdr_seq,
            root: self.root,
            root_level: self.root_level,
            seq_root: self.seq_root,
            seq_root_level: self.seq_root_level,
            next_seq: self.next_seq,
            doc_count: self.doc_count,
            tail: self.tail + 1,
            stale_blocks: self.stale_blocks,
        };
        let img = encode_header(&h, self.fs.page_size());
        self.fs.write_page(self.file, self.tail, &img)?;
        self.tail += 1;
        self.stats.header_blocks_appended += 1;
        Ok(())
    }

    // ----- document I/O ------------------------------------------------------

    /// Append a document's blocks at the tail: one batched submission when
    /// blocking, one *queued* command when `queued` (the caller drains the
    /// file system's queue before any ordering point).
    fn append_doc_with(&mut self, key: u64, payload: &[u8], queued: bool) -> Result<DocPtr, CouchError> {
        let bs = self.fs.page_size();
        let rev = self.next_rev;
        self.next_rev += 1;
        let blocks = encode_doc(key, rev, payload, bs);
        let ptr = DocPtr { block: self.tail, nblocks: blocks.len() as u16, len: payload.len() as u32 };
        let batch: Vec<(u64, &[u8])> = blocks
            .iter()
            .enumerate()
            .map(|(i, img)| (self.tail + i as u64, img.as_slice()))
            .collect();
        if queued {
            // Retry through shared-queue saturation: only writes are in
            // flight on the save path, so reaped completions carry no
            // payloads this store still needs.
            self.fs.submit_write_pages_retry(self.file, &batch)?;
        } else {
            self.fs.write_pages(self.file, &batch)?;
        }
        self.tail += blocks.len() as u64;
        self.stats.doc_blocks_appended += blocks.len() as u64;
        Ok(ptr)
    }

    pub(crate) fn read_doc(&mut self, ptr: DocPtr) -> Result<Vec<u8>, CouchError> {
        let bs = self.fs.page_size();
        let mut bufs = vec![vec![0u8; bs]; ptr.nblocks as usize];
        {
            let mut reqs: Vec<(u64, &mut [u8])> = bufs
                .iter_mut()
                .enumerate()
                .map(|(i, b)| (ptr.block + i as u64, b.as_mut_slice()))
                .collect();
            self.fs.read_pages(self.file, &mut reqs)?;
        }
        Self::decode_doc_payload(ptr, &bufs)
    }

    /// Reassemble a document from its read block images.
    fn decode_doc_payload(ptr: DocPtr, bufs: &[Vec<u8>]) -> Result<Vec<u8>, CouchError> {
        let mut payload = Vec::with_capacity(ptr.len as usize);
        for (i, buf) in bufs.iter().enumerate() {
            let d = decode_doc_block(buf).ok_or_else(|| {
                CouchError::Corrupt(format!("bad doc block at {}", ptr.block + i as u64))
            })?;
            payload.extend_from_slice(&d.chunk);
        }
        payload.truncate(ptr.len as usize);
        Ok(payload)
    }

    /// Find a leaf entry in the tree rooted at `(root, level)`.
    fn lookup_in(&mut self, root: u64, level: u8, key: u64) -> Result<Option<NodeEntry>, CouchError> {
        if root == NO_ROOT {
            return Ok(None);
        }
        let mut ptr = root;
        let mut level = level;
        loop {
            let (_, entries) = self.load_node(ptr)?;
            if level == 0 {
                return Ok(entries.binary_search_by(|e| e.key.cmp(&key)).ok().map(|i| entries[i]));
            }
            let idx = match entries.binary_search_by(|e| e.key.cmp(&key)) {
                Ok(i) => i,
                Err(0) => return Ok(None),
                Err(i) => i - 1,
            };
            ptr = entries[idx].ptr;
            level -= 1;
        }
    }

    /// Find a committed document's pointer and sequence via the by-id tree.
    fn tree_lookup(&mut self, key: u64) -> Result<Option<(DocPtr, u64)>, CouchError> {
        Ok(self.lookup_in(self.root, self.root_level, key)?.map(|e| {
            (DocPtr { block: e.ptr, nblocks: e.nblocks, len: e.len }, e.aux)
        }))
    }

    /// Current (pointer, seq) of `key`, pending changes included.
    fn current_of(&mut self, key: u64) -> Result<Option<(DocPtr, u64)>, CouchError> {
        match self.pending.get(&key).copied() {
            Some(Pending::Put(ptr, seq)) => Ok(Some((ptr, seq))),
            Some(Pending::Delete) => Ok(None),
            None => self.tree_lookup(key),
        }
    }

    /// Point read.
    pub fn get(&mut self, key: u64) -> Result<Option<Vec<u8>>, CouchError> {
        match self.current_of(key)? {
            Some((ptr, _)) => self.read_doc(ptr).map(Some),
            None => Ok(None),
        }
    }

    /// Read several documents (e.g. the reads of concurrent connections)
    /// as overlapping queued commands: index paths resolve first (node
    /// reads are cached), then every document's blocks go to the device as
    /// an independent queued read. Falls back to serial gets on devices
    /// without queued submission.
    pub fn get_many(&mut self, keys: &[u64]) -> Result<Vec<Option<Vec<u8>>>, CouchError> {
        if !self.fs.supports_queue() || keys.len() <= 1 {
            return keys.iter().map(|&k| self.get(k)).collect();
        }
        let span = self.root_span("group_get");
        let r = self.get_many_inner(keys);
        self.end_span(span, r.is_ok());
        r
    }

    fn get_many_inner(&mut self, keys: &[u64]) -> Result<Vec<Option<Vec<u8>>>, CouchError> {
        let mut ptrs = Vec::with_capacity(keys.len());
        for &k in keys {
            ptrs.push(self.current_of(k)?.map(|(p, _)| p));
        }
        let mut tags: Vec<(usize, share_core::CmdTag, DocPtr)> = Vec::with_capacity(keys.len());
        let mut completions = Vec::new();
        for (i, ptr) in ptrs.iter().enumerate() {
            let Some(p) = ptr else { continue };
            let pages: Vec<u64> = (0..p.nblocks as u64).map(|j| p.block + j).collect();
            let tag = self.fs.submit_read_pages_retry(self.file, &pages, &mut completions)?;
            tags.push((i, tag, *p));
        }
        completions.extend(self.fs.drain_queue());
        let mut out: Vec<Option<Vec<u8>>> = vec![None; keys.len()];
        for c in completions {
            let output = c.result.map_err(share_vfs::VfsError::Device)?;
            let Some(&(i, _, ptr)) = tags.iter().find(|(_, t, _)| *t == c.tag) else { continue };
            let bufs = output
                .into_pages()
                .ok_or_else(|| CouchError::Corrupt("queued read carried no pages".into()))?;
            out[i] = Some(Self::decode_doc_payload(ptr, &bufs)?);
        }
        Ok(out)
    }

    /// Read a document by its sequence number (committed state only).
    pub fn get_by_seq(&mut self, seq: u64) -> Result<Option<(u64, Vec<u8>)>, CouchError> {
        let Some(e) = self.lookup_in(self.seq_root, self.seq_root_level, seq)? else {
            return Ok(None);
        };
        let doc = self.read_doc(DocPtr { block: e.ptr, nblocks: e.nblocks, len: e.len })?;
        Ok(Some((e.aux, doc)))
    }

    /// Committed changes with sequence > `since`, in sequence order:
    /// `(seq, key, ptr)` — couchstore's changes feed, also what incremental
    /// replication and compaction walk.
    pub fn changes_since(&mut self, since: u64) -> Result<Vec<(u64, u64, DocPtr)>, CouchError> {
        let mut out = Vec::new();
        if self.seq_root == NO_ROOT {
            return Ok(out);
        }
        let mut stack = vec![(self.seq_root, self.seq_root_level)];
        while let Some((ptr, level)) = stack.pop() {
            let (_, entries) = self.load_node(ptr)?;
            if level == 0 {
                for e in entries.iter().filter(|e| e.key > since) {
                    out.push((e.key, e.aux, DocPtr { block: e.ptr, nblocks: e.nblocks, len: e.len }));
                }
            } else {
                for e in entries.iter().rev() {
                    // Prune subtrees that end before `since`.
                    stack.push((e.ptr, level - 1));
                }
            }
        }
        out.sort_by_key(|(s, _, _)| *s);
        Ok(out)
    }

    /// Insert or update a document. Appends the new copy immediately; the
    /// index effect is deferred to the commit boundary (`batch_size`).
    pub fn save(&mut self, key: u64, payload: &[u8]) -> Result<(), CouchError> {
        self.save_with(key, payload, false)?;
        self.bump_and_maybe_commit()
    }

    /// Save documents from several connections as one group: every copy is
    /// appended as a *queued* device command (appends from independent
    /// documents overlap across NAND channels), the queue is drained, and
    /// a single commit covers the whole group once `batch_size` is due —
    /// the group-commit path concurrent drivers use. Falls back to serial
    /// saves on devices without queued submission.
    pub fn save_many(&mut self, docs: &[(u64, &[u8])]) -> Result<(), CouchError> {
        if !self.fs.supports_queue() || docs.len() <= 1 {
            for (key, payload) in docs {
                self.save(*key, payload)?;
            }
            return Ok(());
        }
        let span = self.root_span("group_save");
        let r = self.save_many_inner(docs);
        self.end_span(span, r.is_ok());
        r
    }

    fn save_many_inner(&mut self, docs: &[(u64, &[u8])]) -> Result<(), CouchError> {
        let depth = self.fs.queue_depth().max(1);
        for (key, payload) in docs {
            // Each append is one queued command; make room under depth.
            while self.fs.inflight() >= depth {
                self.drain_some()?;
            }
            self.save_with(*key, payload, true)?;
            self.ops_since_commit += 1;
        }
        self.drain_appends()?;
        if self.ops_since_commit >= self.cfg.batch_size {
            self.commit()?;
        }
        Ok(())
    }

    /// Reap every outstanding queued append, surfacing the first failure.
    fn drain_appends(&mut self) -> Result<(), CouchError> {
        for c in self.fs.drain_queue() {
            c.result.map_err(share_vfs::VfsError::Device)?;
        }
        Ok(())
    }

    /// Reap at least one outstanding queued append (backpressure relief).
    fn drain_some(&mut self) -> Result<(), CouchError> {
        for c in self.fs.reap_queue() {
            c.result.map_err(share_vfs::VfsError::Device)?;
        }
        Ok(())
    }

    fn save_with(&mut self, key: u64, payload: &[u8], queued: bool) -> Result<(), CouchError> {
        let bs = self.fs.page_size();
        let new_blocks = doc_blocks(payload.len(), bs);

        if self.cfg.mode == CouchMode::Share {
            // A same-size update of a committed, not-currently-pending doc
            // can be remapped without touching the tree at all.
            // Note: remapped updates keep the document's old sequence
            // number (neither index moves). couchstore semantics would
            // advance it; the paper's SHARE commit skips the index cascade
            // entirely, which is what we model. Inserts/deletes still go
            // through both trees below.
            if !self.pending.contains_key(&key) {
                if let Some((old, _seq)) = self.tree_lookup(key)? {
                    if old.nblocks as u64 == new_blocks && old.len as usize == payload.len() {
                        let new_ptr = self.append_doc_with(key, payload, queued)?;
                        // The appended copy's blocks become stale the moment
                        // the remap lands (the tree keeps the old location);
                        // a superseded earlier copy in this batch is stale
                        // garbage either way.
                        self.pending_shares.insert(key, (old, new_ptr));
                        self.stale_blocks += new_blocks;
                        self.stats.share_remaps += 1;
                        return Ok(());
                    }
                }
                self.stats.share_fallbacks += 1;
            } else {
                self.stats.share_fallbacks += 1;
            }
        }

        let old_seq = self.current_of(key)?.map(|(_, s)| s);
        let ptr = self.append_doc_with(key, payload, queued)?;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.insert(key, Pending::Put(ptr, seq));
        if let Some(old) = old_seq {
            self.pending_seq.insert(old, Pending::Delete);
        }
        self.pending_seq.insert(seq, Pending::Put(ptr, key));
        Ok(())
    }

    /// Delete a document (tree path in both modes).
    pub fn delete(&mut self, key: u64) -> Result<(), CouchError> {
        if let Some((_, old_seq)) = self.current_of(key)? {
            self.pending_seq.insert(old_seq, Pending::Delete);
        }
        self.pending.insert(key, Pending::Delete);
        self.bump_and_maybe_commit()
    }

    fn bump_and_maybe_commit(&mut self) -> Result<(), CouchError> {
        self.ops_since_commit += 1;
        if self.ops_since_commit >= self.cfg.batch_size {
            self.commit()?;
        }
        Ok(())
    }

    /// Open a root span on the engine track (no-op without tracing).
    pub(crate) fn root_span(&self, name: &'static str) -> SpanId {
        self.fs.tracer().begin(Layer::Engine, name, Track::Engine, self.fs.device().clock().now_ns())
    }

    pub(crate) fn end_span(&self, id: SpanId, ok: bool) {
        self.fs.tracer().end(id, self.fs.device().clock().now_ns(), 0, ok);
    }

    /// Commit: make everything since the last commit durable. In SHARE mode
    /// an update-only batch costs one fsync plus one share command; any
    /// pending tree changes take the wandering-tree path.
    pub fn commit(&mut self) -> Result<(), CouchError> {
        let span = self.root_span("txn_commit");
        let r = self.commit_inner();
        self.end_span(span, r.is_ok());
        r
    }

    fn commit_inner(&mut self) -> Result<(), CouchError> {
        if self.ops_since_commit == 0 && self.pending.is_empty() && self.pending_shares.is_empty() {
            return Ok(());
        }
        // Ordering point: queued appends must be on the medium — and their
        // simulated completion observed — before the commit's share/fsync.
        if self.fs.inflight() > 0 {
            self.drain_appends()?;
        }
        // No explicit fsync on the SHARE path: the share command itself
        // persists the mapping log, which covers the appended copies' write
        // deltas too (§4.2.2: "The SHARE command returns after logging
        // finishes"). Batches with tree changes fsync below as usual.
        if !self.pending_shares.is_empty() {
            let docs = std::mem::take(&mut self.pending_shares);
            let mut pairs = Vec::with_capacity(docs.len());
            for (old, new) in docs.values() {
                for i in 0..old.nblocks as u64 {
                    pairs.push((old.block + i, new.block + i));
                }
            }
            self.fs.ioctl_share_pairs(self.file, self.file, &pairs)?;
        }

        if !self.pending.is_empty() || !self.pending_seq.is_empty() {
            // Data first (ordered write), then the new indexes and header.
            self.fs.fsync(self.file)?;
            let updates: Vec<(u64, Pending)> = std::mem::take(&mut self.pending).into_iter().collect();
            let (root, level) =
                self.apply_updates(self.root, self.root_level, &updates, true)?;
            self.root = root;
            self.root_level = level;
            let seq_updates: Vec<(u64, Pending)> =
                std::mem::take(&mut self.pending_seq).into_iter().collect();
            let (sroot, slevel) =
                self.apply_updates(self.seq_root, self.seq_root_level, &seq_updates, false)?;
            self.seq_root = sroot;
            self.seq_root_level = slevel;
            self.write_header()?;
            self.fs.fsync(self.file)?;
        }
        self.ops_since_commit = 0;
        self.stats.commits += 1;
        if let Some(threshold) = self.cfg.auto_compact_ratio {
            if self.tail >= self.cfg.auto_compact_min_blocks && self.stale_ratio() >= threshold {
                self.compact()?;
            }
        }
        Ok(())
    }

    // ----- online backup ------------------------------------------------------

    /// Whether the underlying device supports device-level snapshots.
    pub fn supports_snapshot(&self) -> bool {
        self.fs.supports_snapshot()
    }

    /// Begin an online backup: commit pending state so the last header is
    /// durable, then freeze the database file as snapshot `snap` — zero
    /// NAND page programs, O(mapped pages) of device RAM work. Foreground
    /// saves and commits continue normally afterwards; the frozen image
    /// stays consistent (copy-on-write at the FTL level). Returns the
    /// number of frozen blocks.
    pub fn begin_backup(&mut self, snap: &str) -> Result<u64, CouchError> {
        let span = self.root_span("begin_backup");
        let r = self.begin_backup_inner(snap);
        self.end_span(span, r.is_ok());
        r
    }

    fn begin_backup_inner(&mut self, snap: &str) -> Result<u64, CouchError> {
        self.commit()?;
        let name = self.name.clone();
        self.fs.vfs_snapshot(&name, snap)?;
        Ok(self.tail)
    }

    /// Finish an online backup: materialize snapshot `snap` as standalone
    /// file `dst` (no data copied) and release the snapshot. The backup
    /// file opens like any database — its newest intact header is the
    /// state at `begin_backup` time, regardless of foreground writes since.
    pub fn finish_backup(&mut self, snap: &str, dst: &str) -> Result<(), CouchError> {
        let span = self.root_span("finish_backup");
        let r = self.fs.vfs_clone(snap, dst).map(|_| ());
        let drop_r = self.fs.vfs_snapshot_drop(snap);
        self.end_span(span, r.is_ok());
        r?;
        drop_r?;
        Ok(())
    }

    /// One-shot consistent backup of the committed database into `dst`.
    pub fn backup(&mut self, dst: &str) -> Result<(), CouchError> {
        let snap = format!("{dst}-src");
        self.begin_backup(&snap)?;
        self.finish_backup(&snap, dst)
    }

    // ----- wandering-tree update ----------------------------------------------

    /// Copy-on-write update of one of the two indexes; returns the new
    /// `(root, level)`. `count_docs` ties document/stale accounting to the
    /// by-id tree only (nodes are counted for both).
    fn apply_updates(
        &mut self,
        root: u64,
        root_level: u8,
        updates: &[(u64, Pending)],
        count_docs: bool,
    ) -> Result<(u64, u8), CouchError> {
        if updates.is_empty() {
            return Ok((root, root_level));
        }
        let mut replacement = if root == NO_ROOT {
            self.build_leaves_from(updates, &[], count_docs)?
        } else {
            self.update_node(root, root_level, updates, count_docs)?
        };
        // Collapse replacement entries into a single root.
        let mut level = root_level;
        while replacement.len() > 1 {
            level += 1;
            let mut uppers = Vec::new();
            for chunk in replacement.chunks(self.cfg.node_max_entries) {
                let ptr = self.append_node(level, chunk.to_vec())?;
                uppers.push(NodeEntry { key: chunk[0].key, ptr, nblocks: 0, len: 0, aux: 0 });
            }
            replacement = uppers;
        }
        Ok(match replacement.first() {
            Some(e) => (e.ptr, level),
            None => (NO_ROOT, 0),
        })
    }

    /// Build fresh leaves from puts (initial load / empty subtree).
    fn build_leaves_from(
        &mut self,
        updates: &[(u64, Pending)],
        existing: &[NodeEntry],
        count_docs: bool,
    ) -> Result<Vec<NodeEntry>, CouchError> {
        let mut merged: BTreeMap<u64, NodeEntry> = existing.iter().map(|e| (e.key, *e)).collect();
        for (key, op) in updates {
            match op {
                Pending::Put(ptr, aux) => {
                    let inserted = merged.insert(
                        *key,
                        NodeEntry {
                            key: *key,
                            ptr: ptr.block,
                            nblocks: ptr.nblocks,
                            len: ptr.len,
                            aux: *aux,
                        },
                    );
                    if count_docs {
                        if let Some(old) = inserted {
                            self.stale_blocks += old.nblocks as u64;
                        } else {
                            self.doc_count += 1;
                        }
                    }
                }
                Pending::Delete => {
                    if let Some(old) = merged.remove(key) {
                        if count_docs {
                            self.stale_blocks += old.nblocks as u64;
                            self.doc_count -= 1;
                        }
                    }
                }
            }
        }
        let entries: Vec<NodeEntry> = merged.into_values().collect();
        let mut out = Vec::new();
        for chunk in entries.chunks(self.cfg.node_max_entries.max(1)) {
            let ptr = self.append_node(0, chunk.to_vec())?;
            out.push(NodeEntry { key: chunk[0].key, ptr, nblocks: 0, len: 0, aux: 0 });
        }
        Ok(out)
    }

    /// Copy-on-write update of the subtree at `ptr`; returns the entries
    /// that replace it in the parent (several on splits).
    fn update_node(
        &mut self,
        ptr: u64,
        level: u8,
        updates: &[(u64, Pending)],
        count_docs: bool,
    ) -> Result<Vec<NodeEntry>, CouchError> {
        let (_, entries) = self.load_node(ptr)?;
        self.stale_blocks += 1; // the old node version dies

        if level == 0 {
            return self.build_leaves_from(updates, &entries, count_docs);
        }

        // Partition updates among children: child i covers
        // [entries[i].key, entries[i+1].key).
        let mut new_children: Vec<NodeEntry> = Vec::with_capacity(entries.len() + 4);
        let mut u = 0usize;
        for (i, e) in entries.iter().enumerate() {
            let hi = entries.get(i + 1).map(|n| n.key);
            let start = u;
            while u < updates.len() && hi.is_none_or(|h| updates[u].0 < h) {
                // Keys below the first child's separator still go to child 0.
                u += 1;
            }
            let slice = &updates[start..u];
            if slice.is_empty() {
                new_children.push(*e);
            } else {
                let replaced = self.update_node(e.ptr, level - 1, slice, count_docs)?;
                new_children.extend(replaced);
            }
        }
        debug_assert_eq!(u, updates.len(), "updates must all be routed");

        let mut out = Vec::new();
        for chunk in new_children.chunks(self.cfg.node_max_entries) {
            if chunk.is_empty() {
                continue;
            }
            let p = self.append_node(level, chunk.to_vec())?;
            out.push(NodeEntry { key: chunk[0].key, ptr: p, nblocks: 0, len: 0, aux: 0 });
        }
        Ok(out)
    }

    /// All committed leaf entries in key order (compaction input; pending
    /// changes must be committed first).
    pub(crate) fn all_leaf_entries(&mut self) -> Result<Vec<NodeEntry>, CouchError> {
        let mut out = Vec::with_capacity(self.doc_count as usize);
        if self.root == NO_ROOT {
            return Ok(out);
        }
        let mut stack = vec![(self.root, self.root_level)];
        while let Some((ptr, level)) = stack.pop() {
            let (_, entries) = self.load_node(ptr)?;
            if level == 0 {
                out.extend(entries);
            } else {
                // Reverse so the stack pops in ascending key order.
                for e in entries.iter().rev() {
                    stack.push((e.ptr, level - 1));
                }
            }
        }
        out.sort_by_key(|e| e.key);
        Ok(out)
    }
}
