//! End-to-end tests of the sharectl tool against on-disk images.

use sharectl::run;

fn tmpdir() -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("sharectl-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn cmd(args: &[&str]) -> Result<String, String> {
    run(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>()).map_err(|e| e.to_string())
}

#[test]
fn create_write_share_read_cycle_persists() {
    let dir = tmpdir();
    let img = dir.join("disk.nand");
    let img = img.to_str().unwrap();

    cmd(&["create", img, "16"]).unwrap();
    assert!(std::path::Path::new(img).exists());

    cmd(&["write", img, "0", "--byte", "5a", "--count", "4"]).unwrap();
    cmd(&["share", img, "100", "0", "--len", "4"]).unwrap();

    // The remap must be visible across separate invocations (image reload).
    let out = cmd(&["read", img, "100"]).unwrap();
    assert!(out.contains("5a 5a"), "shared page content missing: {out}");

    cmd(&["trim", img, "0", "--len", "4"]).unwrap();
    let out = cmd(&["read", img, "100"]).unwrap();
    assert!(out.contains("5a"), "dest must survive trimming the source: {out}");

    let info = cmd(&["info", img]).unwrap();
    assert!(info.contains("logical capacity"), "{info}");
    assert!(info.contains("share batch"), "{info}");
}

#[test]
fn replay_runs_a_text_trace() {
    let dir = tmpdir();
    let img = dir.join("replay.nand");
    let img = img.to_str().unwrap();
    cmd(&["create", img, "16"]).unwrap();

    let trace = dir.join("trace.txt");
    std::fs::write(&trace, "W 1\nW 2\nW 1\nF\nR 1\nT 2 1\n# done\n").unwrap();
    let out = cmd(&["replay", img, trace.to_str().unwrap()]).unwrap();
    assert!(out.contains("replayed 6 ops"), "{out}");
    assert!(out.contains("host writes 3"), "{out}");

    // Stats accumulate across invocations.
    let info = cmd(&["info", img]).unwrap();
    assert!(info.contains("nand programs"), "{info}");
}

#[test]
fn bad_usage_is_reported() {
    assert!(cmd(&[]).is_err());
    assert!(cmd(&["bogus"]).is_err());
    assert!(cmd(&["create"]).is_err());
    let e = cmd(&["info", "/nonexistent/img.nand"]).unwrap_err();
    assert!(e.contains("sidecar") || e.contains("io"), "{e}");
}

#[test]
fn create_refuses_to_overwrite() {
    let dir = tmpdir();
    let img = dir.join("dup.nand");
    let img = img.to_str().unwrap();
    cmd(&["create", img, "16"]).unwrap();
    assert!(cmd(&["create", img, "16"]).unwrap_err().contains("exists"));
}
