//! End-to-end tests of the sharectl tool against on-disk images.

use sharectl::run;

fn tmpdir() -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("sharectl-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn cmd(args: &[&str]) -> Result<String, String> {
    run(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>()).map_err(|e| e.to_string())
}

#[test]
fn create_write_share_read_cycle_persists() {
    let dir = tmpdir();
    let img = dir.join("disk.nand");
    let img = img.to_str().unwrap();

    cmd(&["create", img, "16"]).unwrap();
    assert!(std::path::Path::new(img).exists());

    cmd(&["write", img, "0", "--byte", "5a", "--count", "4"]).unwrap();
    cmd(&["share", img, "100", "0", "--len", "4"]).unwrap();

    // The remap must be visible across separate invocations (image reload).
    let out = cmd(&["read", img, "100"]).unwrap();
    assert!(out.contains("5a 5a"), "shared page content missing: {out}");

    cmd(&["trim", img, "0", "--len", "4"]).unwrap();
    let out = cmd(&["read", img, "100"]).unwrap();
    assert!(out.contains("5a"), "dest must survive trimming the source: {out}");

    let info = cmd(&["info", img]).unwrap();
    assert!(info.contains("logical capacity"), "{info}");
    assert!(info.contains("share batch"), "{info}");
}

#[test]
fn replay_runs_a_text_trace() {
    let dir = tmpdir();
    let img = dir.join("replay.nand");
    let img = img.to_str().unwrap();
    cmd(&["create", img, "16"]).unwrap();

    let trace = dir.join("trace.txt");
    std::fs::write(&trace, "W 1\nW 2\nW 1\nF\nR 1\nT 2 1\n# done\n").unwrap();
    let out = cmd(&["replay", img, trace.to_str().unwrap()]).unwrap();
    assert!(out.contains("replayed 6 ops"), "{out}");
    assert!(out.contains("host writes 3"), "{out}");

    // Stats accumulate across invocations.
    let info = cmd(&["info", img]).unwrap();
    assert!(info.contains("nand programs"), "{info}");
}

#[test]
fn bad_usage_is_reported() {
    assert!(cmd(&[]).is_err());
    assert!(cmd(&["bogus"]).is_err());
    assert!(cmd(&["create"]).is_err());
    let e = cmd(&["info", "/nonexistent/img.nand"]).unwrap_err();
    assert!(e.contains("sidecar") || e.contains("io"), "{e}");
}

#[test]
fn create_refuses_to_overwrite() {
    let dir = tmpdir();
    let img = dir.join("dup.nand");
    let img = img.to_str().unwrap();
    cmd(&["create", img, "16"]).unwrap();
    assert!(cmd(&["create", img, "16"]).unwrap_err().contains("exists"));
}

#[test]
fn crashsweep_strided_ftl_sweep_is_clean() {
    let out = cmd(&["crashsweep", "--workload", "ftl", "--stride", "40"]).unwrap();
    assert!(out.contains("workload=ftl-mixed-s42-n300"), "{out}");
    assert!(out.contains("violations=0"), "{out}");
}

#[test]
fn crashsweep_strided_snapshot_sweep_is_clean() {
    let out = cmd(&["crashsweep", "--workload", "snapshot", "--stride", "40"]).unwrap();
    assert!(out.contains("workload=ftl-snapshot-s42-n300"), "{out}");
    assert!(out.contains("violations=0"), "{out}");
}

#[test]
fn crashsweep_replays_a_single_triple() {
    let out = cmd(&[
        "crashsweep", "--workload", "ftl", "--mode", "torn-half", "--index", "10",
    ])
    .unwrap();
    assert!(out.contains("PASS (workload=ftl-mixed-s42-n300, mode=torn-half, crash_index=10)"), "{out}");
}

#[test]
fn crashsweep_sweeps_a_trace_file() {
    let dir = tmpdir();
    let trace = dir.join("share.txt");
    std::fs::write(&trace, "W 0\nW 1\nF\nS 8 0 2\nF\n").unwrap();
    let out = cmd(&["crashsweep", "--trace", trace.to_str().unwrap(), "--stride", "1"]).unwrap();
    assert!(out.contains("workload=ftl-trace-share"), "{out}");
    assert!(out.contains("violations=0"), "{out}");
}

#[test]
fn metrics_reports_a_replayed_trace_in_both_formats() {
    let dir = tmpdir();
    let img = dir.join("metrics.nand");
    let img = img.to_str().unwrap();
    cmd(&["create", img, "16"]).unwrap();

    let trace = dir.join("mtrace.txt");
    std::fs::write(&trace, "W 0\nW 1\nF\nS 8 0 2\nR 8\nT 1 1\n").unwrap();

    let info_before = cmd(&["info", img]).unwrap();
    let prom = cmd(&["metrics", img, "--trace", trace.to_str().unwrap()]).unwrap();
    assert!(prom.contains("share_commands_total"), "{prom}");
    assert!(prom.contains(r#"share_op_pages_total{op="write"} 2"#), "{prom}");
    assert!(prom.contains(r#"share_op_pages_total{op="share"} 2"#), "{prom}");
    assert!(prom.contains("share_op_latency_ns_bucket"), "histograms missing: {prom}");
    // Opening the image is itself a recovery: it must show up as an op.
    assert!(prom.contains(r#"share_op_ops_total{op="recovery"} 1"#), "{prom}");

    let json = cmd(&[
        "metrics", img, "--trace", trace.to_str().unwrap(), "--format", "json",
    ])
    .unwrap();
    let doc = share_core::telemetry::json::parse(&json).expect("metrics JSON parses");
    let pages = doc
        .get("ops")
        .and_then(|o| o.get("write"))
        .and_then(|w| w.get("pages"))
        .and_then(|v| v.as_u64());
    assert_eq!(pages, Some(2), "{json}");

    // Observation only: the replayed writes must not persist in the image.
    let info_after = cmd(&["info", img]).unwrap();
    assert_eq!(info_before, info_after, "metrics must not save the image");
}

#[test]
fn metrics_works_without_a_trace_and_rejects_bad_formats() {
    let dir = tmpdir();
    let img = dir.join("metrics2.nand");
    let img = img.to_str().unwrap();
    cmd(&["create", img, "16"]).unwrap();

    // No trace: the snapshot still reports the open-time recovery.
    let prom = cmd(&["metrics", img]).unwrap();
    assert!(prom.contains(r#"share_op_ops_total{op="recovery"} 1"#), "{prom}");

    let e = cmd(&["metrics", img, "--format", "xml"]).unwrap_err();
    assert!(e.contains("bad --format"), "{e}");
}

#[test]
fn crashsweep_rejects_bad_arguments() {
    assert!(cmd(&["crashsweep", "--workload", "bogus"]).unwrap_err().contains("bad --workload"));
    assert!(cmd(&["crashsweep", "--mode", "half-torn"]).unwrap_err().contains("bad --mode"));
    let e = cmd(&["crashsweep", "--workload", "ftl", "--index", "5"]).unwrap_err();
    assert!(e.contains("single --mode"), "{e}");
}

#[test]
fn trace_reports_wa_ledger_and_exports_chrome_json() {
    let dir = tmpdir();
    let img = dir.join("traced.nand");
    let img = img.to_str().unwrap();
    cmd(&["create", img, "16"]).unwrap();

    let json_path = dir.join("trace.json");
    let info_before = cmd(&["info", img]).unwrap();
    let out = cmd(&[
        "trace", img, "--workload", "zipfian", "--ops", "3000", "--seed", "7",
        "--out", json_path.to_str().unwrap(), "--tree", "5",
    ])
    .unwrap();
    assert!(out.contains("spans recorded"), "{out}");
    assert!(out.contains("per-stream write-amplification ledger"), "{out}");
    assert!(out.contains("data"), "data stream missing from WA table: {out}");
    assert!(out.contains("span tree (first 5 lines)"), "{out}");

    // The exported Chrome trace re-parses through the repo's own JSON parser.
    let text = std::fs::read_to_string(&json_path).unwrap();
    let doc = share_core::telemetry::json::parse(&text).expect("chrome trace parses");
    let events = doc.get("traceEvents").and_then(|e| e.as_array()).expect("traceEvents array");
    assert!(!events.is_empty(), "no trace events emitted");
    assert!(
        text.contains("stream:data") && text.contains("stream:journal"),
        "stream tracks missing: first 400 bytes: {}",
        &text[..text.len().min(400)]
    );

    // Observation only: the traced workload must not persist in the image.
    let info_after = cmd(&["info", img]).unwrap();
    assert_eq!(info_before, info_after, "trace must not save the image");

    let e = cmd(&["trace", img, "--workload", "bogus"]).unwrap_err();
    assert!(e.contains("bad --workload"), "{e}");
}

#[test]
fn snapshot_create_clone_drop_ls_cycle_persists() {
    let dir = tmpdir();
    let img = dir.join("snap.nand");
    let img = img.to_str().unwrap();

    cmd(&["create", img, "16"]).unwrap();
    cmd(&["write", img, "0", "--byte", "5a", "--count", "8"]).unwrap();

    let out = cmd(&["snapshot", img, "create", "base", "0", "8"]).unwrap();
    assert!(out.contains("froze 8 page(s)"), "{out}");
    assert!(out.contains("0 NAND program(s)"), "create must be zero-copy: {out}");

    // Snapshot table must survive the image round-trip.
    let ls = cmd(&["snapshot", img, "ls"]).unwrap();
    assert!(ls.contains("base"), "{ls}");

    // Overwrite the live range, then clone the frozen image elsewhere.
    cmd(&["write", img, "0", "--byte", "ff", "--count", "8"]).unwrap();
    let out = cmd(&["snapshot", img, "clone", "base", "100"]).unwrap();
    assert!(out.contains("cloned 8 page(s)"), "{out}");

    // The clone carries the pre-overwrite bytes; the live range the new.
    let out = cmd(&["read", img, "100"]).unwrap();
    assert!(out.contains("5a 5a"), "clone lost frozen content: {out}");
    let out = cmd(&["read", img, "0"]).unwrap();
    assert!(out.contains("ff ff"), "live range lost new content: {out}");

    cmd(&["snapshot", img, "drop", "base"]).unwrap();
    let ls = cmd(&["snapshot", img, "ls"]).unwrap();
    assert!(ls.contains("no snapshots"), "{ls}");
    // Clone outlives the snapshot it came from.
    let out = cmd(&["read", img, "100"]).unwrap();
    assert!(out.contains("5a 5a"), "clone must outlive its snapshot: {out}");

    // Snapshot gauges show up in the metrics exposition while live.
    cmd(&["snapshot", img, "create", "again", "0", "4"]).unwrap();
    let prom = cmd(&["metrics", img]).unwrap();
    assert!(prom.contains("share_snapshots_live 1"), "{prom}");
    assert!(prom.contains("share_snapshot_frozen_pages 4"), "{prom}");
}

#[test]
fn monitor_reports_epoch_series_in_both_formats() {
    let dir = tmpdir();
    let img = dir.join("monitored.nand");
    let img = img.to_str().unwrap();
    cmd(&["create", img, "16"]).unwrap();

    let info_before = cmd(&["info", img]).unwrap();
    let out = cmd(&[
        "monitor", img, "--workload", "zipfian", "--ops", "3000", "--seed", "7",
        "--epoch-ms", "5",
    ])
    .unwrap();
    assert!(out.contains("epoch(s) sealed"), "{out}");
    assert!(out.contains("wp99(us)"), "epoch table header missing: {out}");
    assert!(out.contains("unit busy: ch0:w0"), "per-unit utilization missing: {out}");
    assert!(out.contains("health:"), "health one-liner missing: {out}");

    // JSON form re-parses through the repo's own parser and carries the
    // per-epoch series.
    let json = cmd(&[
        "monitor", img, "--workload", "zipfian", "--ops", "3000", "--seed", "7",
        "--epoch-ms", "5", "--format", "json",
    ])
    .unwrap();
    let doc = share_core::telemetry::json::parse(&json).expect("monitor JSON parses");
    let sealed = doc.get("sealed").and_then(|v| v.as_u64()).expect("sealed count");
    assert!(sealed > 10, "only {sealed} epochs sealed");
    let epochs = doc.get("epochs").and_then(|e| e.as_array()).expect("epochs array");
    assert!(!epochs.is_empty(), "no epoch records");
    assert!(epochs[0].get("free_blocks").is_some(), "epoch rows missing gauges");

    // Observation only: the monitored workload must not persist.
    let info_after = cmd(&["info", img]).unwrap();
    assert_eq!(info_before, info_after, "monitor must not save the image");

    // An SLO flag that always breaches surfaces in the table's alert list.
    let out = cmd(&[
        "monitor", img, "--workload", "uniform", "--ops", "1500", "--free-floor", "100000",
    ])
    .unwrap();
    assert!(out.contains("critical"), "breached floor missing from output: {out}");

    assert!(cmd(&["monitor", img, "--epoch-ms", "0"]).unwrap_err().contains("epoch-ms"));
    assert!(cmd(&["monitor", img, "--workload", "bogus"]).unwrap_err().contains("bad --workload"));
}

#[test]
fn doctor_reports_health_and_exits_nonzero_on_critical() {
    let dir = tmpdir();
    let img = dir.join("doctored.nand");
    let img = img.to_str().unwrap();
    cmd(&["create", img, "16"]).unwrap();
    // Age the image a little so wear counters are non-trivial.
    cmd(&["write", img, "0", "--byte", "a5", "--count", "64"]).unwrap();
    cmd(&["write", img, "0", "--byte", "5a", "--count", "64"]).unwrap();

    let out = cmd(&["doctor", img]).unwrap();
    assert!(out.contains("device health"), "{out}");
    assert!(out.contains("wear histogram"), "{out}");
    assert!(out.contains("skew"), "{out}");
    assert!(out.contains("remaining life"), "{out}");
    assert!(out.contains("doctor: OK"), "{out}");

    let json = cmd(&["doctor", img, "--format", "json"]).unwrap();
    let doc = share_core::telemetry::json::parse(&json).expect("doctor JSON parses");
    assert!(doc.get("wear_hist").and_then(|h| h.as_array()).is_some(), "{json}");
    assert!(doc.get("remaining_life").is_some(), "{json}");

    // A floor no healthy image satisfies: the report still prints, but the
    // run fails (non-zero exit from the binary).
    let e = cmd(&["doctor", img, "--free-floor", "100000"]).unwrap_err();
    assert!(e.contains("doctor: CRITICAL"), "{e}");
    assert!(e.contains("free_blocks"), "offending check missing: {e}");
    assert!(e.contains("device health"), "report must ride with the failure: {e}");

    assert!(cmd(&["doctor", img, "--format", "xml"]).unwrap_err().contains("bad --format"));
}

#[test]
fn snapshot_rejects_bad_arguments() {
    let dir = tmpdir();
    let img = dir.join("snapbad.nand");
    let img = img.to_str().unwrap();
    cmd(&["create", img, "16"]).unwrap();
    assert!(cmd(&["snapshot", img, "create", "x"]).is_err());
    assert!(cmd(&["snapshot", img, "clone", "missing", "0"]).unwrap_err().contains("missing"));
    assert!(cmd(&["snapshot", img, "drop", "missing"]).is_err());
    assert!(cmd(&["snapshot", img, "frobnicate"]).unwrap_err().contains("bad snapshot verb"));
}
