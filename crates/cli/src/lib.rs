//! # sharectl — a command-line tool for SHARE device images
//!
//! Persists the simulated SSD to a `.nand` image file (plus a small `.cfg`
//! sidecar), so the device survives between invocations:
//!
//! ```text
//! sharectl create disk.nand 64        # a 64 MiB SHARE device
//! sharectl write  disk.nand 0 --byte aa
//! sharectl share  disk.nand 100 0     # remap LPN 100 onto LPN 0's page
//! sharectl read   disk.nand 100
//! sharectl replay disk.nand trace.txt # run a block trace (W/R/T/F lines)
//! sharectl info   disk.nand
//! sharectl metrics disk.nand --trace trace.txt  # telemetry snapshot
//! ```
//!
//! All logic lives in [`run`], which returns the output text — `main` is a
//! thin wrapper, so the whole tool is unit-testable.

use share_core::telemetry::EpochObservation;
use share_core::{
    AlertSeverity, BlockDevice, Ftl, FtlConfig, Lpn, SharePair, SloConfig, TelemetryConfig,
    DEFAULT_ENDURANCE_CYCLES,
};
use share_workloads::{parse_trace, AccessPattern, TraceConfig, TraceGen, TraceOp};
use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// Tool errors (argument problems, I/O, device failures).
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError(format!("io: {e}"))
    }
}

impl From<share_core::FtlError> for CliError {
    fn from(e: share_core::FtlError) -> Self {
        CliError(format!("device: {e}"))
    }
}

type Result<T> = std::result::Result<T, CliError>;

fn usage() -> String {
    "sharectl — SHARE device images\n\
     usage:\n\
     \x20 sharectl create <img> <size-mb> [op-percent]\n\
     \x20 sharectl info   <img>\n\
     \x20 sharectl write  <img> <lpn> [--byte XX] [--count N]\n\
     \x20 sharectl read   <img> <lpn>\n\
     \x20 sharectl share  <img> <dest-lpn> <src-lpn> [--len N]\n\
     \x20 sharectl trim   <img> <lpn> [--len N]\n\
     \x20 sharectl replay <img> <trace-file>\n\
     \x20 sharectl metrics <img> [--trace <file>] [--format prom|json]\n\
     \x20\x20\x20\x20 (telemetry snapshot; with --trace, replays first — observation only,\n\
     \x20\x20\x20\x20 nothing is written back to the image)\n\
     \x20 sharectl trace  <img> [--workload sequential|uniform|zipfian|mixed]\n\
     \x20\x20\x20\x20 [--ops N] [--seed N] [--out trace.json] [--tree N]\n\
     \x20\x20\x20\x20 (run a traced workload: per-stream write-amplification table,\n\
     \x20\x20\x20\x20 optional Chrome trace_event JSON and span-tree dump —\n\
     \x20\x20\x20\x20 observation only, nothing is written back to the image)\n\
     \x20 sharectl monitor <img> [--workload sequential|uniform|zipfian|mixed] [--ops N]\n\
     \x20\x20\x20\x20 [--seed N] [--epoch-ms N] [--ring N] [--format table|json]\n\
     \x20\x20\x20\x20 [--write-p99-us N] [--read-p99-us N] [--gc-stall-ms N]\n\
     \x20\x20\x20\x20 [--free-floor N] [--skew-max X] [--life-floor X]\n\
     \x20\x20\x20\x20 (run a workload under the flight recorder: one row of counter\n\
     \x20\x20\x20\x20 deltas per epoch, SLO alerts at epoch boundaries — observation\n\
     \x20\x20\x20\x20 only, nothing is written back to the image)\n\
     \x20 sharectl doctor <img> [--endurance N] [--free-floor N] [--skew-max X]\n\
     \x20\x20\x20\x20 [--life-floor X] [--format text|json]\n\
     \x20\x20\x20\x20 (read-only health report: wear histogram, free-block headroom,\n\
     \x20\x20\x20\x20 lifetime WA, remaining life; exits non-zero on a critical breach)\n\
     \x20 sharectl snapshot <img> create <name> <start-lpn> <len>\n\
     \x20 sharectl snapshot <img> clone  <name> <dst-lpn> [--offset N] [--len N]\n\
     \x20 sharectl snapshot <img> drop   <name>\n\
     \x20 sharectl snapshot <img> ls\n\
     \x20\x20\x20\x20 (device-level snapshots: create freezes a page range with zero\n\
     \x20\x20\x20\x20 NAND programs, clone materializes a writable zero-copy image)\n\
     \x20 sharectl crashsweep [--workload ftl|queued|stream|gcpipe|snapshot|sqlite|innodb|all] [--trace <file>]\n\
     \x20\x20\x20\x20 [--seed N] [--stride N] [--mode torn-half|dropped-write|after-program|all]\n\
     \x20\x20\x20\x20 [--index N]   (with a single --mode: replay exactly one crash case)\n"
        .to_string()
}

fn cfg_path(img: &str) -> String {
    format!("{img}.cfg")
}

fn save_cfg(img: &str, cfg: &FtlConfig) -> Result<()> {
    let text = format!(
        "logical_pages={}\nlog_blocks={}\nrevmap_capacity={}\n",
        cfg.logical_pages, cfg.log_blocks, cfg.revmap_capacity
    );
    fs::write(cfg_path(img), text)?;
    Ok(())
}

fn load_device(img: &str) -> Result<Ftl> {
    load_device_with(img, TelemetryConfig::default(), SloConfig::default())
}

fn load_device_with(img: &str, telemetry: TelemetryConfig, slo: SloConfig) -> Result<Ftl> {
    let cfg_text = fs::read_to_string(cfg_path(img))
        .map_err(|_| CliError(format!("missing sidecar {} — not a sharectl image?", cfg_path(img))))?;
    let field = |name: &str| -> Result<u64> {
        cfg_text
            .lines()
            .find_map(|l| l.strip_prefix(&format!("{name}=")))
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| CliError(format!("sidecar missing {name}")))
    };
    let logical_pages = field("logical_pages")?;
    let log_blocks = field("log_blocks")? as u32;
    let revmap_capacity = field("revmap_capacity")? as usize;

    let bytes = fs::read(img)?;
    let nand = nand_sim::NandArray::load_image(&mut bytes.as_slice(), nand_sim::NandTiming::default())
        .map_err(|e| CliError(format!("bad image: {e}")))?;
    let g = nand.geometry();
    let mut cfg = FtlConfig::for_capacity_with(
        logical_pages * g.page_size as u64,
        0.10, // placeholder; the real geometry below overrides the layout
        g.page_size,
        g.pages_per_block,
        nand.timing(),
    );
    cfg.geometry = g;
    cfg.log_blocks = log_blocks;
    cfg.revmap_capacity = revmap_capacity;
    cfg.logical_pages = logical_pages;
    cfg.telemetry = telemetry;
    cfg.slo = slo;
    Ftl::open(cfg, nand).map_err(Into::into)
}

fn save_device(img: &str, mut dev: Ftl) -> Result<()> {
    dev.flush()?;
    let cfg = dev.config().clone();
    let nand = dev.into_nand();
    let mut bytes = Vec::new();
    nand.save_image(&mut bytes)?;
    fs::write(img, bytes)?;
    save_cfg(img, &cfg)
}

fn parse_u64(s: &str, what: &str) -> Result<u64> {
    s.parse().map_err(|_| CliError(format!("bad {what}: {s}")))
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(String::as_str)
}

/// Execute one command line (without the program name); returns the output.
pub fn run(args: &[String]) -> Result<String> {
    let mut out = String::new();
    match args.first().map(String::as_str) {
        Some("create") => {
            let img = args.get(1).ok_or_else(|| CliError(usage()))?;
            let mb = parse_u64(args.get(2).ok_or_else(|| CliError(usage()))?, "size")?;
            let op = args.get(3).map(|s| parse_u64(s, "op-percent")).transpose()?.unwrap_or(15);
            if Path::new(img).exists() {
                return Err(CliError(format!("{img} already exists")));
            }
            let cfg = FtlConfig::for_capacity(mb << 20, op as f64 / 100.0);
            let dev = Ftl::new(cfg);
            writeln!(
                out,
                "created {img}: {} MiB logical, {} physical blocks, {}% over-provisioning",
                mb,
                dev.config().geometry.blocks,
                op
            )
            .unwrap();
            save_device(img, dev)?;
        }
        Some("info") => {
            let img = args.get(1).ok_or_else(|| CliError(usage()))?;
            let dev = load_device(img)?;
            let cfg = dev.config();
            let s = dev.stats();
            let w = dev.wear_stats();
            writeln!(out, "image:            {img}").unwrap();
            writeln!(
                out,
                "geometry:         {} pages x {} B ({} blocks x {} pages)",
                cfg.geometry.total_pages(),
                cfg.geometry.page_size,
                cfg.geometry.blocks,
                cfg.geometry.pages_per_block
            )
            .unwrap();
            writeln!(out, "logical capacity: {} pages ({} MiB)", cfg.logical_pages, cfg.logical_bytes() >> 20)
                .unwrap();
            writeln!(out, "share batch:      {} pairs", dev.share_batch_limit()).unwrap();
            writeln!(out, "nand programs:    {}", s.nand.page_programs).unwrap();
            writeln!(out, "nand erases:      {}", s.nand.block_erases).unwrap();
            writeln!(out, "wear (min..max):  {}..{}", w.min_erases, w.max_erases).unwrap();
        }
        Some("write") => {
            let img = args.get(1).ok_or_else(|| CliError(usage()))?;
            let lpn = parse_u64(args.get(2).ok_or_else(|| CliError(usage()))?, "lpn")?;
            let byte = flag_value(args, "--byte")
                .map(|v| u8::from_str_radix(v, 16).map_err(|_| CliError(format!("bad byte: {v}"))))
                .transpose()?
                .unwrap_or(0xAB);
            let count = flag_value(args, "--count").map(|v| parse_u64(v, "count")).transpose()?.unwrap_or(1);
            let mut dev = load_device(img)?;
            let page = vec![byte; dev.page_size()];
            for i in 0..count {
                dev.write(Lpn(lpn + i), &page)?;
            }
            writeln!(out, "wrote {count} page(s) of 0x{byte:02x} at LPN {lpn}").unwrap();
            save_device(img, dev)?;
        }
        Some("read") => {
            let img = args.get(1).ok_or_else(|| CliError(usage()))?;
            let lpn = parse_u64(args.get(2).ok_or_else(|| CliError(usage()))?, "lpn")?;
            let mut dev = load_device(img)?;
            let mut buf = vec![0u8; dev.page_size()];
            dev.read(Lpn(lpn), &mut buf)?;
            write!(out, "LPN {lpn}:").unwrap();
            for (i, b) in buf.iter().take(32).enumerate() {
                if i % 16 == 0 {
                    write!(out, "\n  {i:04x}:").unwrap();
                }
                write!(out, " {b:02x}").unwrap();
            }
            writeln!(out, "\n  ... ({} bytes/page)", buf.len()).unwrap();
        }
        Some("share") => {
            let img = args.get(1).ok_or_else(|| CliError(usage()))?;
            let dest = parse_u64(args.get(2).ok_or_else(|| CliError(usage()))?, "dest-lpn")?;
            let src = parse_u64(args.get(3).ok_or_else(|| CliError(usage()))?, "src-lpn")?;
            let len = flag_value(args, "--len").map(|v| parse_u64(v, "len")).transpose()?.unwrap_or(1);
            let mut dev = load_device(img)?;
            dev.share(&SharePair::range(Lpn(dest), Lpn(src), len))?;
            writeln!(out, "shared {len} page(s): LPN {dest} <- LPN {src}").unwrap();
            save_device(img, dev)?;
        }
        Some("trim") => {
            let img = args.get(1).ok_or_else(|| CliError(usage()))?;
            let lpn = parse_u64(args.get(2).ok_or_else(|| CliError(usage()))?, "lpn")?;
            let len = flag_value(args, "--len").map(|v| parse_u64(v, "len")).transpose()?.unwrap_or(1);
            let mut dev = load_device(img)?;
            dev.trim(Lpn(lpn), len)?;
            writeln!(out, "trimmed {len} page(s) at LPN {lpn}").unwrap();
            save_device(img, dev)?;
        }
        Some("replay") => {
            let img = args.get(1).ok_or_else(|| CliError(usage()))?;
            let trace_file = args.get(2).ok_or_else(|| CliError(usage()))?;
            let text = fs::read_to_string(trace_file)?;
            let ops = parse_trace(&text);
            let mut dev = load_device(img)?;
            let before = dev.stats();
            let t0 = dev.clock().now_ns();
            let page = vec![0xCDu8; dev.page_size()];
            let mut buf = vec![0u8; dev.page_size()];
            for op in &ops {
                match *op {
                    TraceOp::Write { lpn } => dev.write(Lpn(lpn), &page)?,
                    TraceOp::Read { lpn } => dev.read(Lpn(lpn), &mut buf)?,
                    TraceOp::Trim { lpn, len } => dev.trim(Lpn(lpn), len)?,
                    TraceOp::Share { dest, src, len } => {
                        dev.share(&SharePair::range(Lpn(dest), Lpn(src), len))?
                    }
                    TraceOp::Flush => dev.flush()?,
                }
            }
            let d = dev.stats().delta_since(&before);
            let dt = dev.clock().now_ns() - t0;
            writeln!(out, "replayed {} ops in {:.3} simulated s", ops.len(), dt as f64 / 1e9).unwrap();
            writeln!(
                out,
                "host writes {}  reads {}  WAF {:.3}  GC events {}  copybacks {}",
                d.host_writes,
                d.host_reads,
                d.waf(),
                d.gc_events,
                d.copyback_pages
            )
            .unwrap();
            save_device(img, dev)?;
        }
        Some("metrics") => {
            let img = args.get(1).ok_or_else(|| CliError(usage()))?;
            let format = flag_value(args, "--format").unwrap_or("prom");
            if format != "prom" && format != "json" {
                return Err(CliError(format!("bad --format: {format} (want prom|json)")));
            }
            // Full telemetry (histograms + command ring) for this invocation
            // only — the toggle never touches the image or its sidecar.
            let mut dev = load_device_with(img, TelemetryConfig::full(), SloConfig::default())?;
            if let Some(trace_file) = flag_value(args, "--trace") {
                let text = fs::read_to_string(trace_file)?;
                let page = vec![0xCDu8; dev.page_size()];
                let mut buf = vec![0u8; dev.page_size()];
                for op in &parse_trace(&text) {
                    match *op {
                        TraceOp::Write { lpn } => dev.write(Lpn(lpn), &page)?,
                        TraceOp::Read { lpn } => dev.read(Lpn(lpn), &mut buf)?,
                        TraceOp::Trim { lpn, len } => dev.trim(Lpn(lpn), len)?,
                        TraceOp::Share { dest, src, len } => {
                            dev.share(&SharePair::range(Lpn(dest), Lpn(src), len))?
                        }
                        TraceOp::Flush => dev.flush()?,
                    }
                }
            }
            let snap = dev.telemetry_snapshot().expect("FTL always exposes telemetry");
            if format == "json" {
                out.push_str(&snap.to_json().render());
                out.push('\n');
            } else {
                out.push_str(&snap.to_prometheus());
            }
            // Observation only: nothing is written back to the image.
        }
        Some("snapshot") => {
            snapshot_cmd(args, &mut out)?;
        }
        Some("trace") => {
            trace_cmd(args, &mut out)?;
        }
        Some("monitor") => {
            monitor_cmd(args, &mut out)?;
        }
        Some("doctor") => {
            doctor_cmd(args, &mut out)?;
        }
        Some("crashsweep") => {
            crashsweep_cmd(args, &mut out)?;
        }
        _ => return Err(CliError(usage())),
    }
    Ok(out)
}

/// Device-level snapshot management. Mutating verbs (`create`, `clone`,
/// `drop`) persist the snapshot table into the FTL checkpoint before the
/// image is written back, so the snapshot survives the next load.
fn snapshot_cmd(args: &[String], out: &mut String) -> Result<()> {
    let img = args.get(1).ok_or_else(|| CliError(usage()))?;
    let verb = args.get(2).map(String::as_str).ok_or_else(|| CliError(usage()))?;
    match verb {
        "create" => {
            let name = args.get(3).ok_or_else(|| CliError(usage()))?;
            let start = parse_u64(args.get(4).ok_or_else(|| CliError(usage()))?, "start-lpn")?;
            let len = parse_u64(args.get(5).ok_or_else(|| CliError(usage()))?, "len")?;
            let mut dev = load_device(img)?;
            let before = dev.stats();
            let id = dev.snapshot_create(name, Lpn(start), len)?;
            let spent = dev.stats().delta_since(&before);
            let mapped = dev
                .snapshot_list()?
                .iter()
                .find(|s| s.id == id)
                .map(|s| s.mapped_pages)
                .unwrap_or(0);
            writeln!(
                out,
                "snapshot {name} (id {id}): froze {len} page(s) at LPN {start}, \
                 {mapped} mapped, {} NAND program(s)",
                spent.nand.page_programs
            )
            .unwrap();
            dev.snapshot_persist()?;
            save_device(img, dev)?;
        }
        "clone" => {
            let name = args.get(3).ok_or_else(|| CliError(usage()))?;
            let dst = parse_u64(args.get(4).ok_or_else(|| CliError(usage()))?, "dst-lpn")?;
            let offset =
                flag_value(args, "--offset").map(|v| parse_u64(v, "offset")).transpose()?.unwrap_or(0);
            let mut dev = load_device(img)?;
            let total = dev
                .snapshot_list()?
                .iter()
                .find(|s| &s.name == name)
                .map(|s| s.len)
                .ok_or_else(|| CliError(format!("no snapshot named {name}")))?;
            let len = match flag_value(args, "--len") {
                Some(v) => parse_u64(v, "len")?,
                None => total.saturating_sub(offset),
            };
            let mapped = dev.snapshot_clone(name, offset, Lpn(dst), len)?;
            writeln!(
                out,
                "cloned {len} page(s) of snapshot {name} (offset {offset}) to LPN {dst}: \
                 {mapped} mapped, rest holes"
            )
            .unwrap();
            dev.snapshot_persist()?;
            save_device(img, dev)?;
        }
        "drop" => {
            let name = args.get(3).ok_or_else(|| CliError(usage()))?;
            let mut dev = load_device(img)?;
            dev.snapshot_drop(name)?;
            writeln!(out, "dropped snapshot {name}").unwrap();
            dev.snapshot_persist()?;
            save_device(img, dev)?;
        }
        "ls" => {
            let dev = load_device(img)?;
            let list = dev.snapshot_list()?;
            if list.is_empty() {
                writeln!(out, "no snapshots").unwrap();
            } else {
                writeln!(
                    out,
                    "{:<4} {:<24} {:>12} {:>8} {:>8}",
                    "id", "name", "start", "len", "mapped"
                )
                .unwrap();
                for s in &list {
                    writeln!(
                        out,
                        "{:<4} {:<24} {:>12} {:>8} {:>8}",
                        s.id, s.name, s.start.0, s.len, s.mapped_pages
                    )
                    .unwrap();
                }
            }
        }
        other => return Err(CliError(format!("bad snapshot verb: {other}\n{}", usage()))),
    }
    Ok(())
}

/// Causal span tracing: run a synthetic workload against the image with
/// tracing enabled, print the per-stream write-amplification ledger
/// (a Figure-6-style breakdown), and optionally export the span tree as
/// Chrome `trace_event` JSON (`--out`) or a text tree (`--tree N`).
/// Observation only — nothing is written back to the image.
fn trace_cmd(args: &[String], out: &mut String) -> Result<()> {
    let img = args.get(1).ok_or_else(|| CliError(usage()))?;
    let workload = flag_value(args, "--workload").unwrap_or("zipfian");
    let ops = flag_value(args, "--ops").map(|v| parse_u64(v, "ops")).transpose()?.unwrap_or(2_000);
    let seed = flag_value(args, "--seed").map(|v| parse_u64(v, "seed")).transpose()?.unwrap_or(42);
    let pattern = match workload {
        "sequential" => AccessPattern::Sequential,
        "uniform" => AccessPattern::Uniform,
        "zipfian" => AccessPattern::Zipfian { theta: 0.99 },
        "mixed" => AccessPattern::Mixed { seq_fraction: 0.5 },
        other => {
            return Err(CliError(format!(
                "bad --workload: {other} (want sequential|uniform|zipfian|mixed)"
            )))
        }
    };
    let mut dev = load_device_with(img, TelemetryConfig::full(), SloConfig::default())?;
    let logical = dev.config().logical_pages;
    // Two host streams split by address: the low 3/4 reads as table/data
    // traffic, the top 1/4 as journal traffic — enough structure for the
    // blame ledger to attribute GC against distinct foreground streams.
    let data = dev.stream_intern("data");
    let journal = dev.stream_intern("journal");
    let stream_of = |lpn: u64| if lpn * 4 >= logical * 3 { journal } else { data };
    let gen = TraceGen::new(TraceConfig {
        pattern,
        logical_pages: logical,
        ops,
        write_fraction: 0.7,
        trim_every: 97,
        flush_every: 64,
        seed,
    });
    let before = dev.stats();
    let t0 = dev.clock().now_ns();
    let page = vec![0xCDu8; dev.page_size()];
    let mut buf = vec![0u8; dev.page_size()];
    let mut replayed = 0u64;
    for op in gen {
        match op {
            TraceOp::Write { lpn } => {
                dev.set_stream(stream_of(lpn));
                dev.write(Lpn(lpn), &page)?
            }
            TraceOp::Read { lpn } => {
                dev.set_stream(stream_of(lpn));
                dev.read(Lpn(lpn), &mut buf)?
            }
            TraceOp::Trim { lpn, len } => {
                dev.set_stream(stream_of(lpn));
                dev.trim(Lpn(lpn), len)?
            }
            TraceOp::Share { dest, src, len } => {
                dev.share(&SharePair::range(Lpn(dest), Lpn(src), len))?
            }
            TraceOp::Flush => dev.flush()?,
        }
        replayed += 1;
    }
    let d = dev.stats().delta_since(&before);
    let dt = dev.clock().now_ns() - t0;
    let spans = dev.tracer().span_count();
    writeln!(
        out,
        "traced {replayed} {workload} op(s) in {:.3} simulated s: {spans} spans recorded",
        dt as f64 / 1e9
    )
    .unwrap();
    writeln!(
        out,
        "host writes {}  reads {}  WAF {:.3}  GC events {}  copybacks {}",
        d.host_writes, d.host_reads, d.waf(), d.gc_events, d.copyback_pages
    )
    .unwrap();
    let snap = dev.telemetry_snapshot().expect("FTL always exposes telemetry");
    writeln!(out, "\nper-stream write-amplification ledger:").unwrap();
    writeln!(
        out,
        "{:<14} {:>10} {:>10} {:>10} {:>10} {:>8}",
        "stream", "fg_pages", "bg_gc", "bg_log", "bg_ckpt", "WA"
    )
    .unwrap();
    for w in &snap.wa {
        if w.fg_pages == 0 && w.bg_total() == 0 {
            continue;
        }
        let wa = match w.wa_factor() {
            Some(f) => format!("{f:.3}"),
            None => "-".into(),
        };
        writeln!(
            out,
            "{:<14} {:>10} {:>10} {:>10} {:>10} {:>8}",
            w.label, w.fg_pages, w.bg_gc, w.bg_log, w.bg_ckpt, wa
        )
        .unwrap();
    }
    if let Some(path) = flag_value(args, "--out") {
        let json = dev.tracer().chrome_json().expect("tracing was enabled");
        fs::write(path, json.render())?;
        writeln!(out, "\nchrome trace written to {path} (load in chrome://tracing or Perfetto)")
            .unwrap();
    }
    if let Some(n) = flag_value(args, "--tree") {
        let n = parse_u64(n, "tree")? as usize;
        writeln!(out, "\nspan tree (first {n} lines):").unwrap();
        for line in dev.tracer().text_tree().lines().take(n) {
            writeln!(out, "{line}").unwrap();
        }
    }
    // Observation only: nothing is written back to the image.
    Ok(())
}

fn parse_f64(s: &str, what: &str) -> Result<f64> {
    s.parse().map_err(|_| CliError(format!("bad {what}: {s}")))
}

fn parse_pattern(workload: &str) -> Result<AccessPattern> {
    Ok(match workload {
        "sequential" => AccessPattern::Sequential,
        "uniform" => AccessPattern::Uniform,
        "zipfian" => AccessPattern::Zipfian { theta: 0.99 },
        "mixed" => AccessPattern::Mixed { seq_fraction: 0.5 },
        other => {
            return Err(CliError(format!(
                "bad --workload: {other} (want sequential|uniform|zipfian|mixed)"
            )))
        }
    })
}

/// SLO threshold flags shared by `monitor` (defaults: no thresholds) and
/// `doctor` (defaults: conservative health floors).
fn slo_from_flags(args: &[String], defaults: SloConfig) -> Result<SloConfig> {
    let mut slo = defaults;
    if let Some(v) = flag_value(args, "--write-p99-us") {
        slo.write_p99_ceiling_ns = Some(parse_u64(v, "write-p99-us")? * 1_000);
    }
    if let Some(v) = flag_value(args, "--read-p99-us") {
        slo.read_p99_ceiling_ns = Some(parse_u64(v, "read-p99-us")? * 1_000);
    }
    if let Some(v) = flag_value(args, "--gc-stall-ms") {
        slo.gc_stall_budget_ns = Some(parse_u64(v, "gc-stall-ms")? * 1_000_000);
    }
    if let Some(v) = flag_value(args, "--free-floor") {
        slo.free_block_floor = Some(parse_u64(v, "free-floor")?);
    }
    if let Some(v) = flag_value(args, "--skew-max") {
        slo.wear_skew_max = Some(parse_f64(v, "skew-max")?);
    }
    if let Some(v) = flag_value(args, "--life-floor") {
        slo.remaining_life_floor = Some(parse_f64(v, "life-floor")?);
    }
    Ok(slo)
}

/// Longitudinal monitoring: run a synthetic workload with the flight
/// recorder sealing an epoch every `--epoch-ms` of *simulated* time, then
/// print one row of counter deltas per epoch plus any SLO alerts fired at
/// epoch boundaries. Observation only — nothing is written back.
fn monitor_cmd(args: &[String], out: &mut String) -> Result<()> {
    let img = args.get(1).ok_or_else(|| CliError(usage()))?;
    let workload = flag_value(args, "--workload").unwrap_or("zipfian");
    let pattern = parse_pattern(workload)?;
    let ops = flag_value(args, "--ops").map(|v| parse_u64(v, "ops")).transpose()?.unwrap_or(2_000);
    let seed = flag_value(args, "--seed").map(|v| parse_u64(v, "seed")).transpose()?.unwrap_or(42);
    let epoch_ms =
        flag_value(args, "--epoch-ms").map(|v| parse_u64(v, "epoch-ms")).transpose()?.unwrap_or(10);
    if epoch_ms == 0 {
        return Err(CliError("--epoch-ms must be at least 1".into()));
    }
    let format = flag_value(args, "--format").unwrap_or("table");
    if format != "table" && format != "json" {
        return Err(CliError(format!("bad --format: {format} (want table|json)")));
    }
    let slo = slo_from_flags(args, SloConfig::default())?;
    let mut telemetry = TelemetryConfig::monitoring(epoch_ms * 1_000_000);
    if let Some(v) = flag_value(args, "--ring") {
        telemetry.epoch_ring = parse_u64(v, "ring")? as usize;
    }

    let mut dev = load_device_with(img, telemetry, slo)?;
    let logical = dev.config().logical_pages;
    // Same two-stream address split as `trace`: low 3/4 data, top 1/4
    // journal, so the per-epoch WA rows attribute against real streams.
    let data = dev.stream_intern("data");
    let journal = dev.stream_intern("journal");
    let stream_of = |lpn: u64| if lpn * 4 >= logical * 3 { journal } else { data };
    let gen = TraceGen::new(TraceConfig {
        pattern,
        logical_pages: logical,
        ops,
        write_fraction: 0.7,
        trim_every: 97,
        flush_every: 64,
        seed,
    });
    let t0 = dev.clock().now_ns();
    let page = vec![0xCDu8; dev.page_size()];
    let mut buf = vec![0u8; dev.page_size()];
    let mut replayed = 0u64;
    for op in gen {
        match op {
            TraceOp::Write { lpn } => {
                dev.set_stream(stream_of(lpn));
                dev.write(Lpn(lpn), &page)?
            }
            TraceOp::Read { lpn } => {
                dev.set_stream(stream_of(lpn));
                dev.read(Lpn(lpn), &mut buf)?
            }
            TraceOp::Trim { lpn, len } => {
                dev.set_stream(stream_of(lpn));
                dev.trim(Lpn(lpn), len)?
            }
            TraceOp::Share { dest, src, len } => {
                dev.share(&SharePair::range(Lpn(dest), Lpn(src), len))?
            }
            TraceOp::Flush => dev.flush()?,
        }
        replayed += 1;
    }
    let snap = dev.monitor_snapshot().expect("monitoring telemetry is on");
    if format == "json" {
        out.push_str(&snap.to_json().render());
        out.push('\n');
        return Ok(());
    }

    let dt = dev.clock().now_ns() - t0;
    writeln!(
        out,
        "monitored {replayed} {workload} op(s) over {:.3} simulated s: \
         {} epoch(s) sealed ({} rolled off the {}-epoch ring)",
        dt as f64 / 1e9,
        snap.sealed,
        snap.dropped,
        snap.epochs.len().max(1)
    )
    .unwrap();
    writeln!(
        out,
        "{:>5} {:>9} {:>6} {:>6} {:>7} {:>7} {:>9} {:>5} {:>9} {:>9} {:>6}",
        "epoch", "t(ms)", "wr", "rd", "progs", "cb", "stall(us)", "free", "wp99(us)", "rp99(us)", "alert"
    )
    .unwrap();
    for e in &snap.epochs {
        let q = |h: &share_core::telemetry::Histogram| {
            if h.is_empty() { "-".to_string() } else { format!("{:.0}", h.quantile(0.99) as f64 / 1e3) }
        };
        writeln!(
            out,
            "{:>5} {:>9.1} {:>6} {:>6} {:>7} {:>7} {:>9.0} {:>5} {:>9} {:>9} {:>6}",
            e.epoch,
            e.end_ns as f64 / 1e6,
            e.stats.host_writes,
            e.stats.host_reads,
            e.stats.nand.page_programs,
            e.stats.copyback_pages,
            e.stats.gc_stall_ns as f64 / 1e3,
            e.free_blocks,
            q(&e.write_hist),
            q(&e.read_hist),
            e.alerts.len()
        )
        .unwrap();
    }
    // Per-unit busy-time shares over the retained window: the same series
    // the Chrome trace carries as `unit_epoch_busy_ns` metadata.
    let window_ns: u64 = snap.epochs.iter().map(|e| e.end_ns - e.start_ns).sum();
    if window_ns > 0 && !snap.unit_labels.is_empty() {
        write!(out, "unit busy: ").unwrap();
        for (i, label) in snap.unit_labels.iter().enumerate() {
            let busy: u64 = snap.epochs.iter().filter_map(|e| e.unit_busy_ns.get(i)).sum();
            write!(out, "{label} {:.0}%  ", busy as f64 * 100.0 / window_ns as f64).unwrap();
        }
        writeln!(out).unwrap();
    }
    let health = dev.health_report();
    writeln!(
        out,
        "health: wear {}..{} (skew {:.2}), free {}/{} blocks, WAF {:.3}, life {:.1}%",
        health.wear.min_erases,
        health.wear.max_erases,
        health.wear_skew,
        health.free_blocks,
        health.data_blocks,
        health.waf,
        health.remaining_life * 100.0
    )
    .unwrap();
    if snap.alerts.is_empty() {
        writeln!(out, "alerts: none").unwrap();
    } else {
        writeln!(out, "alerts ({}):", snap.alerts.len()).unwrap();
        for a in &snap.alerts {
            writeln!(
                out,
                "  {:>8} epoch {:>4} {}: {:.1} (threshold {:.1})",
                a.severity.name(),
                a.epoch,
                a.kind.name(),
                a.value,
                a.threshold
            )
            .unwrap();
        }
    }
    // Observation only: nothing is written back to the image.
    Ok(())
}

/// Read-only device health report ("SMART for the simulator"): wear
/// histogram and moments, free-block headroom, lifetime WA, and a
/// remaining-life estimate, checked against health floors. A critical
/// breach returns an error so the process exits non-zero.
fn doctor_cmd(args: &[String], out: &mut String) -> Result<()> {
    let img = args.get(1).ok_or_else(|| CliError(usage()))?;
    let endurance = flag_value(args, "--endurance")
        .map(|v| parse_u64(v, "endurance"))
        .transpose()?
        .unwrap_or(DEFAULT_ENDURANCE_CYCLES);
    let format = flag_value(args, "--format").unwrap_or("text");
    if format != "text" && format != "json" {
        return Err(CliError(format!("bad --format: {format} (want text|json)")));
    }
    // Health floors: free pool nearly exhausted, badly skewed wear, or
    // under 5 % life left. Each is overridable per invocation.
    let defaults = SloConfig {
        free_block_floor: Some(1),
        wear_skew_max: Some(8.0),
        remaining_life_floor: Some(0.05),
        ..SloConfig::default()
    };
    let slo = slo_from_flags(args, defaults)?;

    let dev = load_device(img)?;
    let report = dev.health_report_with(endurance);
    let obs = EpochObservation {
        epoch: 0,
        end_ns: dev.clock().now_ns(),
        write_p99_ns: None,
        read_p99_ns: None,
        gc_stall_delta_ns: 0,
        free_blocks: report.free_blocks,
        wear_skew: report.wear_skew,
        remaining_life: report.remaining_life,
    };
    let alerts = slo.evaluate(&obs);
    let critical = alerts.iter().filter(|a| a.severity == AlertSeverity::Critical).count();

    if format == "json" {
        let mut doc = report.to_json();
        if let share_core::telemetry::json::Json::Obj(fields) = &mut doc {
            fields.push((
                "alerts".into(),
                share_core::telemetry::json::Json::Arr(
                    alerts.iter().map(share_core::Alert::to_json).collect(),
                ),
            ));
        }
        out.push_str(&doc.render());
        out.push('\n');
    } else {
        writeln!(out, "device health: {img}").unwrap();
        writeln!(out, "  data blocks:    {} ({} free)", report.data_blocks, report.free_blocks)
            .unwrap();
        writeln!(
            out,
            "  host writes:    {} page(s), lifetime WAF {:.3}",
            report.host_writes, report.waf
        )
        .unwrap();
        writeln!(
            out,
            "  background:     {} copyback page(s), {} meta page(s)",
            report.copyback_pages, report.meta_page_writes
        )
        .unwrap();
        writeln!(
            out,
            "  wear:           {}..{} erases (mean {:.1}, stddev {:.1}, skew {:.2})",
            report.wear.min_erases,
            report.wear.max_erases,
            report.wear.mean_erases,
            report.wear.stddev_erases,
            report.wear_skew
        )
        .unwrap();
        writeln!(
            out,
            "  remaining life: {:.1}% (assuming {} rated P/E cycles)",
            report.remaining_life * 100.0,
            report.endurance_cycles
        )
        .unwrap();
        writeln!(out, "  wear histogram:").unwrap();
        let peak = report.wear_hist.iter().map(|b| b.blocks).max().unwrap_or(0).max(1);
        for b in &report.wear_hist {
            let bar = "#".repeat(((b.blocks * 40).div_ceil(peak)) as usize);
            writeln!(out, "    [{:>5}..{:>5}] {:<40} {}", b.lo, b.hi, bar, b.blocks).unwrap();
        }
        if alerts.is_empty() {
            writeln!(out, "alerts: none").unwrap();
        } else {
            writeln!(out, "alerts ({}):", alerts.len()).unwrap();
            for a in &alerts {
                writeln!(
                    out,
                    "  {:>8} {}: {:.2} (threshold {:.2})",
                    a.severity.name(),
                    a.kind.name(),
                    a.value,
                    a.threshold
                )
                .unwrap();
            }
        }
    }
    if critical > 0 {
        // Returned as the error so the exit status is non-zero; the report
        // rides along in the message.
        return Err(CliError(format!("{out}doctor: CRITICAL — {critical} critical alert(s)")));
    }
    if format != "json" {
        writeln!(out, "doctor: OK").unwrap();
    }
    Ok(())
}

/// Power-loss recovery sweep (see `crates/crashsweep`). Builds fresh
/// in-memory devices — no image file involved — and reports every oracle
/// violation as a reproducible `(workload, mode, crash_index)` triple.
/// With `--index` and a single `--mode` it replays exactly one case.
fn crashsweep_cmd(args: &[String], out: &mut String) -> Result<()> {
    use share_crashsweep::{
        sweep, CrashWorkload, FtlGcPipelineWorkload, FtlMixedWorkload, FtlQueuedWorkload,
        FtlSnapshotWorkload, FtlStreamWorkload, FtlTraceWorkload, InnodbShareWorkload,
        SqliteShareWorkload,
    };

    let which = flag_value(args, "--workload").unwrap_or("all");
    let seed = flag_value(args, "--seed").map(|v| parse_u64(v, "seed")).transpose()?.unwrap_or(42);
    let stride =
        flag_value(args, "--stride").map(|v| parse_u64(v, "stride")).transpose()?.unwrap_or(3);
    let mode_arg = flag_value(args, "--mode").unwrap_or("all");
    let modes: Vec<nand_sim::FaultMode> = if mode_arg == "all" {
        nand_sim::FaultMode::ALL.to_vec()
    } else {
        vec![nand_sim::FaultMode::from_label(mode_arg)
            .ok_or_else(|| CliError(format!("bad --mode: {mode_arg}")))?]
    };

    let mut workloads: Vec<Box<dyn CrashWorkload>> = Vec::new();
    if let Some(trace_file) = flag_value(args, "--trace") {
        let text = fs::read_to_string(trace_file)?;
        let ops = parse_trace(&text);
        let label = Path::new(trace_file)
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "trace".into());
        let max_lpn = ops
            .iter()
            .map(|op| match *op {
                TraceOp::Write { lpn } | TraceOp::Read { lpn } => lpn,
                TraceOp::Trim { lpn, len } => lpn + len.saturating_sub(1),
                TraceOp::Share { dest, src, len } => {
                    dest.max(src) + len.saturating_sub(1)
                }
                TraceOp::Flush => 0,
            })
            .max()
            .unwrap_or(0);
        workloads.push(Box::new(FtlTraceWorkload::new(&label, &ops, (max_lpn + 1).max(16))));
    } else {
        match which {
            "ftl" => workloads.push(Box::new(FtlMixedWorkload::new(seed, 300))),
            "queued" => workloads.push(Box::new(FtlQueuedWorkload::new(seed, 300, 4))),
            "stream" => workloads.push(Box::new(FtlStreamWorkload::new(seed, 300))),
            "gcpipe" => workloads.push(Box::new(FtlGcPipelineWorkload::new(seed, 600, 2))),
            "snapshot" => workloads.push(Box::new(FtlSnapshotWorkload::new(seed, 300))),
            "sqlite" => workloads.push(Box::new(SqliteShareWorkload::new(seed, 24, 10))),
            "innodb" => workloads.push(Box::new(InnodbShareWorkload::new(seed, 40, 60))),
            "all" => {
                workloads.push(Box::new(FtlMixedWorkload::new(seed, 300)));
                workloads.push(Box::new(SqliteShareWorkload::new(seed, 24, 10)));
                workloads.push(Box::new(InnodbShareWorkload::new(seed, 40, 60)));
                workloads.push(Box::new(FtlQueuedWorkload::new(seed, 300, 4)));
                workloads.push(Box::new(FtlStreamWorkload::new(seed, 300)));
                workloads.push(Box::new(FtlGcPipelineWorkload::new(seed, 600, 2)));
                workloads.push(Box::new(FtlSnapshotWorkload::new(seed, 300)));
            }
            other => return Err(CliError(format!("bad --workload: {other}"))),
        }
    }

    if let Some(index) = flag_value(args, "--index") {
        // Single-case reproduction of a reported triple.
        let index = parse_u64(index, "index")?;
        let [mode] = modes[..] else {
            return Err(CliError("--index needs a single --mode, not all".into()));
        };
        let [w] = &workloads[..] else {
            return Err(CliError("--index needs a single --workload".into()));
        };
        return match w.run_case(mode, index) {
            Ok(()) => {
                writeln!(
                    out,
                    "PASS (workload={}, mode={}, crash_index={index})",
                    w.name(),
                    mode.label()
                )
                .unwrap();
                Ok(())
            }
            Err(reason) => Err(CliError(format!(
                "FAIL (workload={}, mode={}, crash_index={index}): {reason}",
                w.name(),
                mode.label()
            ))),
        };
    }

    let mut violations = 0usize;
    for w in &workloads {
        let report = sweep(w.as_ref(), &modes, stride);
        writeln!(out, "{report}").unwrap();
        for f in &report.failures {
            writeln!(out, "  {f}").unwrap();
        }
        violations += report.failures.len();
    }
    if violations > 0 {
        return Err(CliError(format!(
            "{violations} crash case(s) violated the recovery oracle (triples above)"
        )));
    }
    Ok(())
}
