//! Thin entry point; all logic lives in the library (see `sharectl::run`).

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match sharectl::run(&args) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    }
}
