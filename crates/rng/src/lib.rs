//! # share-rng — in-repo deterministic PRNG
//!
//! The workspace builds with **zero external dependencies** (the build
//! environment has no registry access), so this crate replaces the small
//! slice of the `rand` API the repo actually uses:
//!
//! * [`StdRng::seed_from_u64`] — SplitMix64 state expansion,
//! * [`Rng::random`] — a uniform value of the target type (`f64` in `[0,1)`),
//! * [`Rng::random_range`] — unbiased integers (Lemire rejection) and
//!   uniform floats over `a..b` / `a..=b`,
//! * [`Rng::random_bool`] — a Bernoulli draw,
//! * [`Rng::fill`] — fill a byte slice.
//!
//! The generator is xoshiro256++ (Blackman & Vigna), picked for speed,
//! 256-bit state, and a trivially portable implementation. Streams are a
//! pure function of the seed: every workload, experiment, and test in the
//! repo is reproducible bit-for-bit across runs and platforms.
//!
//! This is a simulation/test PRNG. It is **not** cryptographically secure.

/// Trait object-friendly random source, mirroring the `rand::Rng` surface
/// used across the workspace. Implementors only provide [`Rng::next_u64`].
pub trait Rng {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform value of type `T` (`f64`/`f32` in `[0,1)`, integers over
    /// their full range, `bool` as a fair coin).
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// A uniform value in `range` (`a..b` or `a..=b`). Integer ranges are
    /// unbiased; float ranges are `a + u*(b-a)`. Panics on empty ranges.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0,1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        f64::random(self) < p
    }

    /// Fill `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// SplitMix64 step: the seed-expansion generator recommended by the
/// xoshiro authors (a weak seed never produces correlated xoshiro states).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The workspace's standard PRNG: xoshiro256++ seeded via SplitMix64.
///
/// Named `StdRng` so call sites read the same as they did under `rand`
/// (`StdRng::seed_from_u64(seed)`), though the algorithm differs — seeded
/// streams were never promised stable across `rand` versions either.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// A generator whose stream is a pure function of `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let s2 = s2 ^ s0;
        let s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        self.s = [s0, s1, s2 ^ t, s3.rotate_left(45)];
        result
    }
}

/// Types producible uniformly from raw bits (the `random()` surface).
pub trait Random: Sized {
    /// A uniform value drawn from `rng`.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Random for u128 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Random for bool {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Random for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Unbiased `[0, span)` via Lemire's multiply-shift rejection method.
/// `span == 0` means the full 2^64 range.
fn uniform_u64<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    let mut m = rng.next_u64() as u128 * span as u128;
    if (m as u64) < span {
        let threshold = span.wrapping_neg() % span;
        while (m as u64) < threshold {
            m = rng.next_u64() as u128 * span as u128;
        }
    }
    (m >> 64) as u64
}

/// Range types accepted by [`Rng::random_range`], parameterized by the
/// output type so integer literals infer from the call site (as in `rand`).
pub trait SampleRange<T> {
    /// Draw a uniform element of `self` from `rng`.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                // Width fits u64 for every integer type up to 64 bits.
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in random_range");
                // 2^64-wide inclusive ranges wrap span to 0 = "full range".
                let span = (end as i128 - start as i128 + 1) as u64;
                start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let u: $t = Random::random(rng);
                // Clamp: rounding in `start + u*(end-start)` can hit `end`.
                let v = self.start + u * (self.end - self.start);
                if v >= self.end { <$t>::from_bits(self.end.to_bits() - 1) } else { v }
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// FNV-1a over a byte string; used to derive per-suite seed bases.
pub fn fnv1a_str(s: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in s.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01B3);
    }
    h
}

/// Deterministic replacement for a property-test case loop: yields
/// `default_cases` independent `(case_index, rng)` pairs whose streams are
/// a pure function of the suite name, so every suite explores a distinct
/// but fixed op-sequence family. A failure report only needs the suite
/// name and case index to reproduce. Set `SHARE_MODEL_CASES` to widen or
/// shrink the sweep (e.g. `SHARE_MODEL_CASES=500` for a soak run).
pub fn sweep(suite: &str, default_cases: usize) -> impl Iterator<Item = (usize, StdRng)> {
    let cases = std::env::var("SHARE_MODEL_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default_cases);
    let base = fnv1a_str(suite);
    (0..cases).map(move |i| {
        (i, StdRng::seed_from_u64(base ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_deterministic_and_distinct_per_suite() {
        let a: Vec<u64> = sweep("suite-a", 4).map(|(_, mut r)| r.next_u64()).collect();
        let a2: Vec<u64> = sweep("suite-a", 4).map(|(_, mut r)| r.next_u64()).collect();
        let b: Vec<u64> = sweep("suite-b", 4).map(|(_, mut r)| r.next_u64()).collect();
        assert_eq!(a, a2);
        assert_ne!(a, b);
        // SHARE_MODEL_CASES overrides the default sweep width (soak runs
        // set it), so compute the expected count the same way sweep() does.
        let expected = std::env::var("SHARE_MODEL_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(4usize);
        assert_eq!(a.len(), expected);
    }

    #[test]
    fn matches_reference_vectors() {
        // xoshiro256++ reference outputs for state seeded with
        // SplitMix64(0): verifies both the seeder and the generator against
        // the C reference implementation (prng.di.unimi.it).
        let mut sm = 0u64;
        assert_eq!(splitmix64(&mut sm), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(&mut sm), 0x6E78_9E6A_A1B9_65F4);
        let mut rng = StdRng::seed_from_u64(0);
        let first: Vec<u64> = (0..3).map(|_| rng.next_u64()).collect();
        // Self-consistency pin: these values must never change, or every
        // "deterministic" experiment in EXPERIMENTS.md silently shifts.
        assert_eq!(first, vec![0x53175D61490B23DF, 0x61DA6F3DC380D507, 0x5C0FDF91EC9A7BFC]);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..100_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 100_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }

    #[test]
    fn integer_ranges_are_exact_and_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.random_range(0usize..10)] += 1;
        }
        for c in counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c} not uniform");
        }
        for _ in 0..1000 {
            let v = rng.random_range(-5000i64..=5000);
            assert!((-5000..=5000).contains(&v));
            let w = rng.random_range(7u32..8);
            assert_eq!(w, 7);
        }
    }

    #[test]
    fn extreme_ranges_do_not_overflow() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let _ = rng.random_range(0u64..=u64::MAX);
            let _ = rng.random_range(i64::MIN..=i64::MAX);
            let v = rng.random_range(u64::MAX - 1..u64::MAX);
            assert_eq!(v, u64::MAX - 1);
        }
    }

    #[test]
    fn float_ranges_stay_inside() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let x = rng.random_range(0.0..100.0);
            assert!((0.0..100.0).contains(&x));
            let y = rng.random_range(-1.5f32..2.5);
            assert!((-1.5..2.5).contains(&y));
        }
    }

    #[test]
    fn bool_probability_tracks_p() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.3)).count();
        let share = hits as f64 / 100_000.0;
        assert!((share - 0.3).abs() < 0.01, "p=0.3 gave {share}");
        assert!(rng.random_bool(1.1));
        assert!(!rng.random_bool(0.0));
    }

    #[test]
    fn fill_covers_every_byte() {
        let mut rng = StdRng::seed_from_u64(6);
        for len in [0usize, 1, 7, 8, 9, 64, 1001] {
            let mut buf = vec![0u8; len];
            rng.fill(&mut buf);
            if len >= 64 {
                // All-zero after filling would be a (2^-512) miracle.
                assert!(buf.iter().any(|&b| b != 0), "fill left {len}-byte buf zeroed");
            }
        }
    }

    #[test]
    fn works_through_unsized_and_reborrowed_receivers() {
        // The `?Sized` bound is what `Zipfian::next<R: Rng + ?Sized>` relies on.
        fn take_generic<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.random()
        }
        let mut rng = StdRng::seed_from_u64(7);
        take_generic(&mut rng);
        let via_reborrow: u64 = Rng::next_u64(&mut (&mut rng));
        let _ = via_reborrow;
    }
}
