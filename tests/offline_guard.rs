//! Guard: the workspace must stay buildable with zero registry access.
//!
//! Walks every manifest (root + `crates/*/Cargo.toml`) and fails if any
//! dependency section declares a non-path dependency — a registry version,
//! a git URL, anything `cargo build --offline` could not resolve from this
//! repo alone. `scripts/verify.sh` runs the whole suite offline, so a
//! violation fails twice: once here with a precise message, once at
//! resolution time.

use std::path::{Path, PathBuf};

fn manifests() -> Vec<PathBuf> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut out = vec![root.join("Cargo.toml")];
    let crates = root.join("crates");
    let mut entries: Vec<_> = std::fs::read_dir(&crates)
        .expect("crates/ directory")
        .map(|e| e.unwrap().path())
        .collect();
    entries.sort();
    for dir in entries {
        let m = dir.join("Cargo.toml");
        if m.is_file() {
            out.push(m);
        }
    }
    out
}

/// Is this `[section]` header one that declares dependencies?
fn is_dep_section(header: &str) -> bool {
    let h = header.trim_matches(['[', ']']);
    h == "workspace.dependencies"
        || h.split('.').last().map_or(false, |tail| {
            tail == "dependencies" || tail == "dev-dependencies" || tail == "build-dependencies"
        })
}

/// A dependency line is offline-safe if it resolves inside the repo:
/// `path = ...` directly, or `workspace = true` (the workspace table is
/// itself checked for path-ness by this same walk).
fn line_is_offline_safe(value: &str) -> bool {
    (value.contains("path") && value.contains('=')) || value.contains("workspace = true")
}

#[test]
fn no_registry_dependencies_anywhere() {
    let mut violations = Vec::new();
    for manifest in manifests() {
        let text = std::fs::read_to_string(&manifest).unwrap();
        let mut in_dep_section = false;
        // `[dependencies.foo]`-style table: the section itself names the
        // dependency; its body must contain a path/workspace key somewhere.
        let mut dep_table: Option<(String, usize, bool)> = None; // (name, line, safe)
        let close_table = |t: &mut Option<(String, usize, bool)>, v: &mut Vec<String>| {
            if let Some((name, lineno, safe)) = t.take() {
                if !safe {
                    v.push(format!(
                        "{}:{}: dependency table `{}` has no path/workspace key",
                        manifest.display(),
                        lineno,
                        name
                    ));
                }
            }
        };
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if line.starts_with('[') {
                close_table(&mut dep_table, &mut violations);
                in_dep_section = is_dep_section(line);
                let inner = line.trim_matches(['[', ']']);
                dep_table = inner
                    .split_once("dependencies.")
                    .map(|(_, name)| (name.to_string(), lineno + 1, false));
                continue;
            }
            if let Some(t) = &mut dep_table {
                if line_is_offline_safe(line) {
                    t.2 = true;
                }
                continue;
            }
            if !in_dep_section {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else { continue };
            let key = key.trim();
            // Dotted form `foo.workspace = true` / `foo.path = "..."`.
            if key.ends_with(".workspace") || key.ends_with(".path") {
                continue;
            }
            if !line_is_offline_safe(value) {
                violations.push(format!(
                    "{}:{}: `{}` is not a path dependency",
                    manifest.display(),
                    lineno + 1,
                    line
                ));
            }
        }
        close_table(&mut dep_table, &mut violations);
    }
    assert!(
        violations.is_empty(),
        "registry/git dependencies are banned (offline build policy, see README):\n{}",
        violations.join("\n")
    );
}

#[test]
fn workspace_dependency_table_is_all_paths() {
    // The `[workspace.dependencies]` table is what `workspace = true`
    // entries resolve through, so every entry there must carry a `path`.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(root.join("Cargo.toml")).unwrap();
    let mut in_table = false;
    for raw in text.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            in_table = line == "[workspace.dependencies]";
            continue;
        }
        if in_table {
            assert!(
                line.contains("path"),
                "[workspace.dependencies] entry without a path: `{line}`"
            );
        }
    }
}
