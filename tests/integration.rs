//! Workspace-level integration tests: the whole stack wired together
//! through the facade crate's re-exports.

use share_repro::core::{BlockDevice, Ftl, FtlConfig, Lpn, SharePair};
use share_repro::couch::{CouchConfig, CouchMode, CouchStore};
use share_repro::innodb::{standard_log_device, FlushMode, InnoDb, InnoDbConfig};
use share_repro::nand::NandTiming;
use share_repro::pg::{FpwMode, MiniPg, PgConfig};
use share_repro::sqlite::{JournalMode, MiniSqlite, SqliteConfig};
use share_repro::vfs::{Vfs, VfsOptions};
use share_repro::workloads::{LinkBench, LinkBenchConfig, Ycsb, YcsbConfig, YcsbWorkload};

fn ftl(mb: u64) -> Ftl {
    Ftl::new(FtlConfig::for_capacity_with(mb << 20, 0.3, 4096, 64, NandTiming::zero()))
}

#[test]
fn facade_reexports_wire_together() {
    let mut dev = ftl(8);
    let page = vec![9u8; dev.page_size()];
    dev.write(Lpn(1), &page).unwrap();
    dev.share(&[SharePair::new(Lpn(0), Lpn(1))]).unwrap();
    let mut buf = vec![0u8; dev.page_size()];
    dev.read(Lpn(0), &mut buf).unwrap();
    assert_eq!(buf, page);
}

#[test]
fn linkbench_stream_drives_innodb_end_to_end() {
    let dev = ftl(32);
    let log = standard_log_device(dev.clock().clone());
    let cfg = InnoDbConfig {
        mode: FlushMode::Share,
        pool_pages: 128,
        max_pages: 6_000,
        ..Default::default()
    };
    let mut db = InnoDb::create(dev, log, cfg).unwrap();
    for id in 0..500u64 {
        db.add_node(id, b"node").unwrap();
    }
    let mut lb = LinkBench::new(&LinkBenchConfig { initial_nodes: 500, ..Default::default() });
    for _ in 0..2_000 {
        let op = lb.next_op();
        use share_repro::workloads::LinkOpType::*;
        match op.op {
            GetNode => {
                db.get_node(op.id1).unwrap();
            }
            CountLink => {
                db.count_link(op.id1, op.link_type).unwrap();
            }
            MultigetLink => {
                db.multiget_link(op.id1, op.link_type, &[op.id2]).unwrap();
            }
            GetLinkList => {
                db.get_link_list(op.id1, op.link_type).unwrap();
            }
            AddNode => db.add_node(op.id1, b"n").unwrap(),
            UpdateNode => db.update_node(op.id1, b"n2").unwrap(),
            DeleteNode => {
                db.delete_node(op.id1).unwrap();
            }
            AddLink => db.add_link(op.id1, op.link_type, op.id2, b"l").unwrap(),
            DeleteLink => {
                db.delete_link(op.id1, op.link_type, op.id2).unwrap();
            }
            UpdateLink => db.update_link(op.id1, op.link_type, op.id2, b"l2").unwrap(),
        }
    }
    db.checkpoint().unwrap();
    assert!(db.data_device_stats().host_writes > 0);
    assert!(db.data_device_stats().share_commands > 0, "SHARE mode must issue shares");
}

#[test]
fn ycsb_stream_drives_couch_end_to_end() {
    let fs = Vfs::format(ftl(64), VfsOptions::default()).unwrap();
    let mut store = CouchStore::create(
        fs,
        "it.couch",
        CouchConfig { mode: CouchMode::Share, batch_size: 8, node_max_entries: 16, ..Default::default() },
    )
    .unwrap();
    for key in 0..1_000u64 {
        store.save(key, &vec![1u8; 1_000]).unwrap();
    }
    store.commit().unwrap();
    let mut gen = Ycsb::new(&YcsbConfig {
        workload: YcsbWorkload::F,
        record_count: 1_000,
        record_size: 1_000,
        seed: 1,
    });
    for _ in 0..2_000 {
        let op = gen.next_op();
        let _ = store.get(op.key()).unwrap();
        store.save(op.key(), &vec![2u8; 1_000]).unwrap();
    }
    store.commit().unwrap();
    assert!(store.stats().share_remaps > 0);
    let report = store.compact().unwrap();
    assert!(report.zero_copy);
    assert_eq!(store.doc_count(), 1_000);
}

#[test]
fn pg_runs_on_the_share_device() {
    let mut pg = MiniPg::create(
        ftl(96),
        PgConfig { mode: FpwMode::Share, checkpoint_txns: 200, ..Default::default() },
    )
    .unwrap();
    for i in 0..500u64 {
        pg.run_txn(i * 13 % 100_000, i % 10, 0, 5).unwrap();
    }
    assert_eq!(pg.stats().txns, 500);
    assert!(pg.device_stats().share_commands > 0);
}

#[test]
fn sqlite_share_journal_end_to_end() {
    // Mini-SQLite in SHARE journal mode on top of the full stack: commits
    // remap staged pages instead of double-writing, rollbacks discard, and
    // committed state survives a reopen cycle.
    let cfg = SqliteConfig { mode: JournalMode::Share, ..Default::default() };
    let mut db = MiniSqlite::create(ftl(24), cfg).unwrap();
    for key in 0..300u64 {
        db.put(key, &vec![(key % 251) as u8; 120]).unwrap();
    }
    db.commit().unwrap();
    // An abandoned transaction must leave no trace.
    db.put(7, &vec![0xEE; 64]).unwrap();
    db.delete(8).unwrap();
    db.rollback();
    assert_eq!(db.key_count(), 300);
    assert_eq!(db.get(7).unwrap().unwrap(), vec![7u8; 120]);
    // Overwrite storm, committed: SHARE commits must issue share commands.
    for key in 0..300u64 {
        db.put(key, &vec![(key % 13) as u8; 200]).unwrap();
    }
    db.commit().unwrap();
    assert!(db.stats().share_pages > 0, "SHARE journal must stage+remap pages");
    assert!(db.device_stats().share_commands > 0, "SHARE journal must reach the device");
    // Reopen: only committed state, byte-exact.
    let dev = db.into_device();
    let cfg = SqliteConfig { mode: JournalMode::Share, ..Default::default() };
    let mut db2 = MiniSqlite::open(dev, cfg).unwrap();
    assert_eq!(db2.key_count(), 300);
    for key in 0..300u64 {
        assert_eq!(db2.get(key).unwrap().unwrap(), vec![(key % 13) as u8; 200]);
    }
}

#[test]
fn two_engines_share_one_timeline() {
    // The paper's testbed: one experiment, several devices, one clock.
    let data = ftl(32);
    let clock = data.clock().clone();
    let log = standard_log_device(clock.clone());
    let mut db = InnoDb::create(
        data,
        log,
        InnoDbConfig { pool_pages: 64, max_pages: 2_000, ..Default::default() },
    )
    .unwrap();
    let t0 = clock.now_ns();
    for i in 0..100u64 {
        db.add_node(i, b"x").unwrap();
    }
    assert!(clock.now_ns() > t0, "engine activity must advance the shared clock");
}

#[test]
fn full_crash_cycle_through_every_layer() {
    let fcfg = FtlConfig::for_capacity_with(16 << 20, 0.3, 4096, 64, NandTiming::zero());
    let fs = Vfs::format(Ftl::new(fcfg.clone()), VfsOptions::default()).unwrap();
    let mut store = CouchStore::create(
        fs,
        "crash.couch",
        CouchConfig { mode: CouchMode::Share, batch_size: 4, node_max_entries: 16, ..Default::default() },
    )
    .unwrap();
    for key in 0..200u64 {
        store.save(key, &vec![7u8; 500]).unwrap();
    }
    store.commit().unwrap();
    // Crash mid-update-storm.
    store
        .fs_mut()
        .device_mut()
        .fault_handle()
        .arm_after_programs(300, share_repro::nand::FaultMode::TornHalf);
    'outer: for round in 0..50u64 {
        for key in 0..200u64 {
            if store.save(key, &vec![(round + 8) as u8; 500]).is_err() {
                break 'outer;
            }
        }
    }
    // Recover every layer bottom-up: NAND -> FTL -> VFS -> engine.
    let nand = store.into_fs().into_device().into_nand();
    let dev = Ftl::open(fcfg, nand).unwrap();
    let fs = Vfs::open(dev, VfsOptions::default()).unwrap();
    let mut store = CouchStore::open(fs, "crash.couch", CouchConfig::default()).unwrap();
    for key in 0..200u64 {
        let doc = store.get(key).unwrap().expect("doc present");
        assert!(doc.iter().all(|&b| b == doc[0]), "no torn documents");
    }
}
