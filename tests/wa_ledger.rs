//! Write-amplification ledger invariants, checked through the whole stack.
//!
//! The ledger blames every background NAND program (GC copyback, delta-log
//! flush, checkpoint) on the foreground stream whose invalidations caused
//! it. The blame is settled at the exact sites where `copyback_pages` and
//! `meta_page_writes` increment, so the per-stream rows must sum to those
//! device-wide counters *exactly* — no rounding residue, no lost pages —
//! regardless of which engine is driving the device.

use share_repro::core::{BlockDevice, Ftl, FtlConfig, OpClass, Snapshot, TelemetryConfig};
use share_repro::couch::{CouchConfig, CouchMode, CouchStore};
use share_repro::innodb::{standard_log_device, FlushMode, InnoDb, InnoDbConfig};
use share_repro::nand::NandTiming;
use share_repro::pg::{FpwMode, MiniPg, PgConfig};
use share_repro::sqlite::{JournalMode, MiniSqlite, SqliteConfig};
use share_repro::vfs::{Vfs, VfsOptions};

fn traced_ftl(mb: u64) -> Ftl {
    Ftl::new(
        FtlConfig::for_capacity_with(mb << 20, 0.3, 4096, 64, NandTiming::zero())
            .with_telemetry(TelemetryConfig::full()),
    )
}

/// Σ per-stream blamed background programs must equal the device-wide
/// counters exactly.
fn assert_ledger_sums(engine: &str, snap: &Snapshot, stats: &share_repro::core::DeviceStats) {
    let bg_gc: u64 = snap.wa.iter().map(|w| w.bg_gc).sum();
    let bg_meta: u64 = snap.wa.iter().map(|w| w.bg_log + w.bg_ckpt).sum();
    assert_eq!(
        bg_gc, stats.copyback_pages,
        "{engine}: blamed GC programs != device copyback_pages"
    );
    assert_eq!(
        bg_meta, stats.meta_page_writes,
        "{engine}: blamed log+ckpt programs != device meta_page_writes"
    );
}

#[test]
fn wa_ledger_sums_exactly_across_four_engines() {
    let mut total_copyback = 0u64;
    let mut total_meta = 0u64;

    // ---- InnoDB: load, overwrite storm, checkpoint (DWB on: the
    // write-heaviest flush protocol). -----------------------------------
    {
        let dev = traced_ftl(24);
        let log = standard_log_device(dev.clock().clone());
        let cfg = InnoDbConfig {
            mode: FlushMode::DwbOn,
            pool_pages: 64,
            max_pages: 4_000,
            ..Default::default()
        };
        let mut db = InnoDb::create(dev, log, cfg).unwrap();
        for round in 0..4u64 {
            for id in 0..400u64 {
                if round == 0 {
                    db.add_node(id, &[round as u8; 96]).unwrap();
                } else {
                    db.update_node(id, &[round as u8; 96]).unwrap();
                }
            }
            db.checkpoint().unwrap();
        }
        let stats = db.data_device_stats();
        let snap = db.fs_mut().device().telemetry_snapshot().unwrap();
        assert_ledger_sums("innodb", &snap, &stats);
        eprintln!("innodb: copyback={} meta={} host_writes={} gc_events={}", stats.copyback_pages, stats.meta_page_writes, stats.host_writes, stats.gc_events);
        total_copyback += stats.copyback_pages;
        total_meta += stats.meta_page_writes;
    }

    // ---- Couchbase: append-heavy saves, commit, compaction. ------------
    {
        let fs = Vfs::format(traced_ftl(16), VfsOptions::default()).unwrap();
        let ccfg = CouchConfig {
            mode: CouchMode::Share,
            batch_size: 8,
            node_max_entries: 16,
            ..Default::default()
        };
        let mut store = CouchStore::create(fs, "wa.couch", ccfg).unwrap();
        for round in 0..8u64 {
            for key in 0..400u64 {
                store.save(key, &vec![round as u8; 900]).unwrap();
            }
            store.commit().unwrap();
            // Compaction trims the old file: the invalidations that give
            // GC something to reclaim.
            if round % 3 == 2 {
                store.compact().unwrap();
            }
        }
        store.compact().unwrap();
        let stats = store.device_stats();
        let snap = store.fs_mut().device().telemetry_snapshot().unwrap();
        assert_ledger_sums("couch", &snap, &stats);
        eprintln!("couch: copyback={} meta={} host_writes={} gc_events={}", stats.copyback_pages, stats.meta_page_writes, stats.host_writes, stats.gc_events);
        total_copyback += stats.copyback_pages;
        total_meta += stats.meta_page_writes;
    }

    // ---- SQLite: overwrite storms through the SHARE journal. -----------
    {
        let cfg =
            SqliteConfig { mode: JournalMode::Share, max_pages: 1_024, ..Default::default() };
        let mut db = MiniSqlite::create(traced_ftl(13), cfg).unwrap();
        for round in 0..40u64 {
            // ~4 rows per page. The hot set re-dirties ~150 pages per
            // round, so the churn laps the physical space and GC runs.
            // Write-once cold keys are interleaved every ~2 hot pages:
            // commit order scatters them through every NAND block the
            // staging writes fill, so no sealed block ever goes fully
            // dead and greedy GC must relocate live pages (copyback > 0).
            for key in 0..600u64 {
                db.put(key, &vec![(round + key % 7) as u8; 1_000]).unwrap();
                if key % 9 == 8 {
                    let cold = 10_000 + round * 100 + key / 9;
                    db.put(cold, &[round as u8; 1_000]).unwrap();
                }
            }
            db.commit().unwrap();
        }
        let stats = db.device_stats();
        let snap = db.fs_mut().device().telemetry_snapshot().unwrap();
        assert_ledger_sums("sqlite", &snap, &stats);
        eprintln!("sqlite: copyback={} meta={} host_writes={} gc_events={}", stats.copyback_pages, stats.meta_page_writes, stats.host_writes, stats.gc_events);
        total_copyback += stats.copyback_pages;
        total_meta += stats.meta_page_writes;
    }

    // ---- Postgres: OLTP transactions plus periodic checkpoints. --------
    {
        let cfg = PgConfig { mode: FpwMode::Share, checkpoint_txns: 100, ..Default::default() };
        let mut pg = MiniPg::create(traced_ftl(48), cfg).unwrap();
        for i in 0..600u64 {
            pg.run_txn(i * 13 % 50_000, i % 10, 0, 5).unwrap();
        }
        pg.checkpoint().unwrap();
        let stats = pg.device_stats();
        let snap = pg.fs_mut().device().telemetry_snapshot().unwrap();
        assert_ledger_sums("pg", &snap, &stats);
        eprintln!("pg: copyback={} meta={} host_writes={} gc_events={}", stats.copyback_pages, stats.meta_page_writes, stats.host_writes, stats.gc_events);
        total_copyback += stats.copyback_pages;
        total_meta += stats.meta_page_writes;
    }

    // The invariant is vacuous if no background work ever happened; the
    // mixed workload must exercise both blame paths somewhere.
    assert!(total_copyback > 0, "no engine triggered GC — workload too small");
    assert!(total_meta > 0, "no engine wrote FTL metadata — workload too small");
}

#[test]
fn wa_ledger_sums_exactly_with_pipelined_relocation_in_flight() {
    // With pipelined GC a victim stays half-collected across foreground
    // commands, so the ledger is sampled *while* relocations are in
    // flight: blame is settled per budgeted step, not per victim, and
    // the per-stream rows must still sum to the device counters at every
    // intermediate snapshot — not just after jobs complete.
    use share_repro::core::Lpn;
    let pages: u64 = 1024;
    let mut dev = Ftl::new(
        FtlConfig::for_capacity_with(pages * 4096, 0.12, 4096, 32, NandTiming::zero())
            .with_telemetry(TelemetryConfig::full())
            .with_gc_budget(2, 2),
    );
    let data = dev.stream_intern("data");
    let journal = dev.stream_intern("journal");

    let mut samples_in_flight = 0u64;
    let mut last_deferrals = 0u64;
    for round in 0..8u64 {
        for i in 0..pages {
            // Mixed lifetimes in a permuted order: no sealed block goes
            // fully dead, so every victim carries live pages to relocate.
            let lpn = (i * 173 + round * 311) % pages;
            if round % (1 + lpn % 4) != 0 {
                continue;
            }
            dev.set_stream(if lpn % 4 == 0 { journal } else { data });
            dev.write(Lpn(lpn), &[(round + 1) as u8; 4096]).unwrap();
            if i % 96 == 95 {
                let stats = dev.stats();
                let snap = dev.telemetry_snapshot().unwrap();
                assert_ledger_sums("pipelined-ftl", &snap, &stats);
                if stats.gc_budget_deferrals > last_deferrals {
                    samples_in_flight += 1;
                }
                last_deferrals = stats.gc_budget_deferrals;
            }
        }
        dev.flush().unwrap();
    }
    let stats = dev.stats();
    let snap = dev.telemetry_snapshot().unwrap();
    assert_ledger_sums("pipelined-ftl", &snap, &stats);
    assert!(stats.copyback_pages > 0, "storm never forced a relocation");
    assert!(
        stats.gc_budget_deferrals > 0 && samples_in_flight > 0,
        "no snapshot was taken with a victim half-collected \
         (deferrals={}, in-flight samples={samples_in_flight})",
        stats.gc_budget_deferrals
    );
}

#[test]
fn wa_ledger_sums_exactly_with_snapshots_pinning_pages() {
    // Snapshots add a third kind of background traffic: GC relocating
    // pinned-only pages (dead in the live map, frozen in a snapshot) and
    // clone/drop deltas through the log. The blame ledger must keep
    // summing exactly to the device counters while a snapshot pins pages
    // across GC churn, while a clone CoW-materializes under its own
    // stream, and after the drop settles the unpinned garbage.
    use share_repro::core::{GcPolicy, Lpn};
    let pages: u64 = 1024;
    let mut cfg = FtlConfig::for_capacity_with(pages * 4096, 0.12, 4096, 32, NandTiming::zero())
        .with_telemetry(TelemetryConfig::full());
    // FIFO victims: blocks whose pages are only snapshot-pinned still
    // rotate through GC, forcing pinned relocations (greedy would park
    // them forever as "fully valid").
    cfg.gc_policy = GcPolicy::Fifo;
    let mut dev = Ftl::new(cfg);
    let data = dev.stream_intern("data");
    let cloner = dev.stream_intern("clone");

    dev.set_stream(data);
    // Permuted seed order scatters the to-be-frozen LPNs across blocks:
    // a block holding only frozen pages stays fully effective-valid
    // (live + pinned-dead) and would never be a victim, so each must
    // share its block with churnable neighbors to keep GC interested.
    for i in 0..pages {
        dev.write(Lpn((i * 389) % pages), &[7u8; 4096]).unwrap();
    }
    dev.snapshot_create("base", Lpn(0), 256).unwrap();

    for round in 0..8u64 {
        for i in 0..pages {
            let lpn = (i * 173 + round * 311) % pages;
            if round % (1 + lpn % 3) != 0 {
                continue;
            }
            dev.write(Lpn(lpn), &[(round + 2) as u8; 4096]).unwrap();
            if i % 128 == 127 {
                let stats = dev.stats();
                let snap = dev.telemetry_snapshot().unwrap();
                assert_ledger_sums("snapshot-ftl", &snap, &stats);
            }
        }
        if round == 3 {
            // Mid-churn zero-copy clone: its mapping deltas (and the CoW
            // garbage its dst overwrites leave behind) bill to `clone`.
            dev.set_stream(cloner);
            dev.snapshot_clone("base", 0, Lpn(512), 256).unwrap();
            dev.set_stream(data);
        }
        if round == 6 {
            dev.set_stream(cloner);
            dev.snapshot_drop("base").unwrap();
            dev.set_stream(data);
        }
        dev.flush().unwrap();
    }

    let stats = dev.stats();
    let snap = dev.telemetry_snapshot().unwrap();
    assert_ledger_sums("snapshot-ftl", &snap, &stats);
    assert!(stats.copyback_pages > 0, "storm never forced a relocation");
    assert!(
        stats.snapshot_pinned_relocations > 0,
        "no pinned-only page was ever relocated by GC (copyback={})",
        stats.copyback_pages
    );
    assert_eq!(stats.snapshot_clone_pages, 256);
    // The cloning stream owns real blame rows: its clone deltas flushed
    // through the log, and the garbage its drop unpinned fed GC.
    let clone_row = snap.wa.iter().find(|w| w.label == "clone").unwrap();
    assert!(
        clone_row.bg_log > 0,
        "clone/drop deltas produced no log blame for the clone stream"
    );
}

#[test]
fn dwb_batch_flush_events_carry_the_doublewrite_stream() {
    // Regression for batched-path attribution: the double-write buffer is
    // flushed with one `write_batch` command, and every sub-op of that
    // batch must inherit the file's stream — the command ring has to show
    // the flush as `doublewrite`, not as anonymous host traffic.
    let dev = traced_ftl(24);
    let log = standard_log_device(dev.clock().clone());
    let cfg = InnoDbConfig {
        mode: FlushMode::DwbOn,
        pool_pages: 32,
        max_pages: 4_000,
        ..Default::default()
    };
    let mut db = InnoDb::create(dev, log, cfg).unwrap();
    for id in 0..200u64 {
        db.add_node(id, &[id as u8; 96]).unwrap();
    }
    db.checkpoint().unwrap();
    assert!(db.stats().dwb_pages_written > 0, "checkpoint must flush through the DWB");

    let snap = db.fs_mut().device().telemetry_snapshot().unwrap();
    let label = |stream: u32| snap.streams[stream as usize].label.as_str();
    let dwb_batches: Vec<_> = snap
        .events
        .iter()
        .filter(|e| e.op == OpClass::WriteBatch && label(e.stream) == "doublewrite")
        .collect();
    assert!(
        !dwb_batches.is_empty(),
        "no write_batch command attributed to the doublewrite stream; ring streams: {:?}",
        snap.events.iter().map(|e| (e.op, label(e.stream))).collect::<Vec<_>>()
    );
    assert!(
        dwb_batches.iter().any(|e| e.pages > 1),
        "DWB flush should batch more than one page"
    );
    // The per-stream traffic table agrees with the ring.
    let dwb_row = snap.streams.iter().find(|s| s.label == "doublewrite").unwrap();
    assert!(dwb_row.writes.pages >= db.stats().dwb_pages_written);
}
