//! # share-repro — the SHARE paper reproduction, in one crate
//!
//! Facade over the workspace implementing *"SHARE Interface in Flash
//! Storage for Relational and NoSQL Databases"* (SIGMOD 2016). Each module
//! re-exports one crate of the stack, bottom-up:
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`nand`] | `nand-sim` | NAND flash array simulator (the medium) |
//! | [`core`] | `share-core` | the SHARE FTL — the paper's contribution |
//! | [`vfs`] | `share-vfs` | extent file system with the SHARE ioctl |
//! | [`innodb`] | `mini-innodb` | InnoDB-style engine (double-write vs SHARE) |
//! | [`couch`] | `mini-couch` | couchstore-style engine (wandering tree vs SHARE) |
//! | [`pg`] | `mini-pg` | PostgreSQL-style WAL engine (full_page_writes) |
//! | [`sqlite`] | `mini-sqlite` | SQLite-style pager (the paper's future work) |
//! | [`workloads`] | `share-workloads` | LinkBench / YCSB / pgbench / block traces |
//!
//! The experiment harness reproducing every table and figure lives in the
//! `share-bench` crate; see `EXPERIMENTS.md` at the repository root for
//! the paper-vs-measured record, and `examples/` for runnable tours.
//!
//! ```
//! use share_repro::core::{BlockDevice, Ftl, FtlConfig, Lpn, SharePair};
//!
//! let mut dev = Ftl::new(FtlConfig::for_capacity(16 << 20, 0.2));
//! let page = vec![1u8; dev.page_size()];
//! dev.write(Lpn(500), &page).unwrap();
//! dev.share(&[SharePair::new(Lpn(0), Lpn(500))]).unwrap();
//! assert_eq!(dev.refcount_of(Lpn(0)), 2); // two LPNs, one physical page
//! ```

pub use mini_couch as couch;
pub use mini_innodb as innodb;
pub use mini_pg as pg;
pub use mini_sqlite as sqlite;
pub use nand_sim as nand;
pub use share_core as core;
pub use share_vfs as vfs;
pub use share_workloads as workloads;
