#!/usr/bin/env bash
# Tier-1 verification, fully offline. This is the gate every PR must pass:
# a release build and the whole test suite, with cargo forbidden from
# touching any registry or network. The offline_guard integration test
# additionally fails if a non-path dependency sneaks into any manifest.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release --offline =="
cargo build --release --offline

echo "== cargo test -q --offline =="
cargo test -q --offline

# Crash-point smoke sweep: every NAND program boundary (stride 1) of an
# FTL-level and two engine-level workloads, times three fault modes, must
# recover cleanly. Any violation prints a reproducible
# (workload, mode, crash_index) triple and fails this script. The deep
# soak tier is the same sweep over larger workloads, gated on
# SHARE_CRASH_POINTS (see ROADMAP.md).
echo "== crash-point smoke sweep =="
./target/release/sharectl crashsweep --workload all --stride 1

# Bench smoke tier: a small multi-channel scenario (release binaries,
# seconds of wall time). bench_channels exits non-zero unless the
# 8-channel device at least doubles 1-channel batched write throughput
# and the scenario it records into BENCH_share.json re-reads as valid
# JSON with the expected shape.
echo "== bench smoke (multi-channel + BENCH_share.json sanity) =="
./target/release/bench_channels

# QD smoke tier: sweep submission-queue depth {1, 4, 16} on a 4-channel
# device and record p50/p99 submit->complete latency-under-load from the
# telemetry histograms into BENCH_share.json (qd_latency_smoke). Fails
# unless qd=16 at least doubles qd=1 write throughput, p99 grows
# monotonically with depth, and the recorded JSON re-reads cleanly.
echo "== qd smoke (queue-depth sweep + latency-under-load percentiles) =="
./target/release/bench_qd

# Aging smoke tier: age a 4-channel device with mixed data/wal/doublewrite/
# compact streams, placement off then on, and record both per-stream WA
# ledgers into BENCH_share.json (aging_placement). Fails unless GC ran in
# both runs and multi-streamed placement cuts the GC copyback blamed on
# the short-lived journal streams at least 2x.
echo "== aging smoke (multi-streamed placement on/off WA comparison) =="
./target/release/bench_aging

# GC pipeline smoke tier: age a 4-channel device to steady-state GC with
# a mixed-lifetime overwrite storm, synchronous collector vs pipelined
# background collector, and record foreground write p50/p99 plus
# gc_stall_ns into BENCH_share.json (gc_pipeline). Fails unless the
# pipeline cuts the measured-window gc_stall_ns at least 2x and actually
# parks victims mid-collection (gc_budget_deferrals > 0).
echo "== gc pipeline smoke (steady-state aged device, stall off/on) =="
./target/release/bench_gc

# Snapshot smoke tier: clone a 64 MiB aged mini-SQLite database through
# the device snapshot subsystem and record clone latency, copy-on-write
# WA and point-in-time read p50/p99 into BENCH_share.json
# (snapshot_clone). Fails unless the snapshot create programs zero NAND
# pages and the clone programs far fewer pages than it maps (zero-copy).
echo "== snapshot smoke (instant clone of an aged mini-SQLite DB) =="
./target/release/bench_snapshot

# Metrics smoke tier: run a short YCSB workload with full telemetry, dump
# both exporter formats (Prometheus text + JSON), re-parse the JSON dump,
# and assert the telemetry op counters equal the DeviceStats counters —
# the FTL's two bookkeeping paths must agree exactly. Dumps go to a temp
# dir so the repo root stays clean.
echo "== metrics smoke (telemetry vs DeviceStats) =="
METRICS_TMP="$(mktemp -d)"
trap 'rm -rf "$METRICS_TMP"' EXIT
SHARE_METRICS_DIR="$METRICS_TMP" ./target/release/metrics_smoke

# Trace smoke tier: run a short YCSB workload with span tracing off and
# on, assert the simulated results are bit-identical either way, export
# the span tree as Chrome trace_event JSON, re-parse it through
# telemetry::json, and check well-formedness (monotonic timestamps,
# balanced spans, every pid/tid announced by metadata, every parent
# resolvable, all four layers present). The tracing wall-clock overhead
# is recorded into BENCH_share.json as the trace_smoke scenario.
echo "== trace smoke (span tracer + Chrome export well-formedness) =="
SHARE_METRICS_DIR="$METRICS_TMP" ./target/release/trace_smoke

# Health smoke tier: age a 4-channel device with the flight recorder on,
# record the wear histogram, skew, remaining life and downsampled
# free-block/GC time series into BENCH_share.json (health_aging). Fails
# unless the device actually aged, the sealed epoch deltas sum exactly to
# the cumulative device counters, wear skew stays under the pinned bound,
# and zero critical SLO alerts fired.
echo "== health smoke (wear model + flight recorder + SLO engine) =="
./target/release/bench_health

# Baseline freshness gate (must run last, after every tier above has
# re-recorded its scenario at HEAD): fails if any verify-tier baseline in
# BENCH_share.json is missing or stamped with a different git revision
# than HEAD. SHARE_ALLOW_STALE=1 downgrades to a warning.
echo "== baseline freshness gate (BENCH_share.json recorded_rev) =="
./target/release/bench_stale_gate

echo "verify: OK"
