#!/usr/bin/env bash
# Tier-1 verification, fully offline. This is the gate every PR must pass:
# a release build and the whole test suite, with cargo forbidden from
# touching any registry or network. The offline_guard integration test
# additionally fails if a non-path dependency sneaks into any manifest.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release --offline =="
cargo build --release --offline

echo "== cargo test -q --offline =="
cargo test -q --offline

echo "verify: OK"
